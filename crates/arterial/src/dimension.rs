//! Arterial-dimension measurement (the Figure 3 experiment).

use ah_graph::Graph;

use crate::selection::{assign_levels, LevelAssignment, SelectionConfig};

/// Distribution of (pseudo-)arterial edge counts over the non-empty
/// (4×4)-cell regions of one grid resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolutionStats {
    /// Grid resolution `r`: the grid has `2^r × 2^r` cells (the paper's
    /// x-axis).
    pub r: u32,
    /// The hierarchy stage that produced this grid (`s = h + 2 − r`).
    pub level: u32,
    /// Number of non-empty regions measured.
    pub regions: usize,
    /// Mean arterial edges per region.
    pub mean: f64,
    /// 90% quantile.
    pub q90: u32,
    /// 99% quantile.
    pub q99: u32,
    /// Maximum.
    pub max: u32,
}

/// Runs the incremental construction and reduces its per-region
/// pseudo-arterial counts to the mean/90%/99%/max series of Figure 3,
/// one entry per grid resolution (finest first ⇒ descending `r`).
///
/// At the finest grid the overlay is the original network, so the counts
/// are exact arterial-edge counts (Definition 1); at coarser grids they are
/// the pseudo-arterial counts of the paper's own scalable construction.
pub fn measure_arterial_dimension(g: &Graph, cfg: &SelectionConfig) -> Vec<ResolutionStats> {
    let la = assign_levels(g, cfg);
    stats_from_assignment(&la)
}

/// Extracts the Figure 3 series from an existing [`LevelAssignment`]
/// (avoids re-running the construction when the caller needs both).
pub fn stats_from_assignment(la: &LevelAssignment) -> Vec<ResolutionStats> {
    let h = la.h();
    la.region_counts
        .iter()
        .enumerate()
        .map(|(idx, counts)| {
            let s = idx as u32 + 1;
            ResolutionStats {
                r: h + 2 - s,
                level: s,
                regions: counts.len(),
                mean: if counts.is_empty() {
                    0.0
                } else {
                    counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64
                },
                q90: quantile(counts, 0.90),
                q99: quantile(counts, 0.99),
                max: counts.last().copied().unwrap_or(0),
            }
        })
        .collect()
}

/// `p`-quantile of an ascending-sorted slice (nearest-rank definition).
fn quantile(sorted: &[u32], p: f64) -> u32 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_data::fixtures;

    #[test]
    fn quantile_nearest_rank() {
        let data = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(quantile(&data, 0.90), 9);
        assert_eq!(quantile(&data, 0.99), 10);
        assert_eq!(quantile(&data, 0.5), 5);
        assert_eq!(quantile(&[], 0.9), 0);
        assert_eq!(quantile(&[7], 0.9), 7);
    }

    #[test]
    fn stats_shape_on_lattice() {
        let g = fixtures::lattice(16, 16, 8);
        let stats = measure_arterial_dimension(&g, &Default::default());
        assert!(!stats.is_empty());
        // Finest grid first: descending r, ascending level.
        for w in stats.windows(2) {
            assert_eq!(w[0].r, w[1].r + 1);
            assert_eq!(w[0].level + 1, w[1].level);
        }
        for st in &stats {
            assert!(st.mean <= st.max as f64 + 1e-9);
            assert!(st.q90 <= st.q99);
            assert!(st.q99 <= st.max);
        }
    }

    #[test]
    fn bounded_dimension_on_road_like_network() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 32,
            height: 32,
            seed: 7,
            ..Default::default()
        });
        let stats = measure_arterial_dimension(&g, &Default::default());
        // The headline claim of Section 2: small arterial dimension at every
        // resolution. Generous bound — the paper's max is 97.
        for st in &stats {
            assert!(
                st.max <= 120,
                "resolution r={} has max {} arterial edges",
                st.r,
                st.max
            );
        }
    }
}
