//! Spanning paths, (pseudo-)arterial edges and hierarchy-level assignment —
//! the machinery of Sections 2 and 4.2 of the paper.
//!
//! The crate implements the *incremental* construction that makes AH
//! scalable (Section 4.2 / Appendix D):
//!
//! 1. Start from the original graph as an *overlay* ([`Overlay`]): arcs are
//!    original edges, later augmented by shortcut arcs, each tagged with the
//!    grid region that generated it (the *coverage* information).
//! 2. For each grid `R_1, …, R_h` (finest to coarsest), find the *spanning
//!    paths* of every non-empty sliding (4×4)-cell region via region-local
//!    Dijkstra searches from the region's *border nodes* (Definition 2),
//!    restricted by the paper's *border* and *coverage* conditions. Edges of
//!    those paths crossing a bisector are *pseudo-arterial edges*; their
//!    endpoints become the next level's cores.
//! 3. Contract everything that is not a core into shortcuts (per region, so
//!    coverage stays meaningful) and drop all nodes that are neither cores
//!    nor border nodes of the next grid.
//!
//! At level 1 the overlay *is* the original graph, so pseudo-arterial edges
//! coincide with the arterial edges of Definition 1; at coarser levels they
//! are the tractable stand-in the paper itself uses (each pseudo-arterial
//! edge corresponds to a path containing an arterial edge — Lemma 9/12).
//! The per-region counts collected along the way regenerate Figure 3, and
//! the resulting [`LevelAssignment`] feeds the FC and AH indices.
//!
//! ```
//! use ah_arterial::{assign_levels, SelectionConfig};
//!
//! let g = ah_data::fixtures::lattice(8, 8, 16);
//! let la = assign_levels(&g, &SelectionConfig::default());
//! assert_eq!(la.level.len(), 64);
//! // The through-roads of the lattice promote some nodes above level 0.
//! assert!(la.level.iter().any(|&l| l > 0));
//! ```

mod dimension;
mod local;
mod overlay;
mod selection;

pub use dimension::{measure_arterial_dimension, ResolutionStats};
pub use local::LocalSearch;
pub use overlay::{OArc, Overlay, Span};
pub use selection::{assign_levels, LevelAssignment, SelectionConfig};
