//! Region-local Dijkstra over the overlay graph.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Dist, NodeId, INFINITY, INVALID_NODE};
use ah_search::StampedVec;

use crate::overlay::{OArc, Overlay, Span};

/// Search direction over the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Forward,
    Backward,
}

/// A reusable Dijkstra specialized for the tiny, heavily-filtered searches
/// of level assignment: per-arc admission (coverage condition), per-node
/// expansion control (border/interior conditions), O(1) reset between runs.
#[derive(Debug)]
pub struct LocalSearch {
    dist: StampedVec<Dist>,
    parent: StampedVec<NodeId>,
    /// Span of the arc over which the node was reached (for path-extent
    /// bookkeeping in the shortcut phase).
    in_span: StampedVec<Span>,
    settled: StampedVec<bool>,
    settled_list: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalSearch {
    /// Creates an empty search; buffers grow on first use.
    pub fn new() -> Self {
        LocalSearch {
            dist: StampedVec::new(0, INFINITY),
            parent: StampedVec::new(0, INVALID_NODE),
            in_span: StampedVec::new(0, Span::ALWAYS),
            settled: StampedVec::new(0, false),
            settled_list: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Runs a constrained Dijkstra from `source`.
    ///
    /// * Every popped node is *settled* (recorded in settle order).
    /// * Arcs of a settled node are relaxed only if the node is the source
    ///   or `expand_from(node)` holds (this realizes "settle but do not
    ///   continue" semantics for region borders / type-(b) endpoints).
    /// * An individual arc is relaxed only if `arc_ok(tail, arc)` holds
    ///   (coverage condition, activity of the head, region membership …).
    pub fn run(
        &mut self,
        ov: &Overlay,
        source: NodeId,
        dir: Dir,
        mut expand_from: impl FnMut(NodeId) -> bool,
        mut arc_ok: impl FnMut(NodeId, &OArc) -> bool,
    ) {
        let n = ov.num_nodes();
        self.dist.ensure_len(n);
        self.parent.ensure_len(n);
        self.in_span.ensure_len(n);
        self.settled.ensure_len(n);
        self.dist.reset();
        self.parent.reset();
        self.in_span.reset();
        self.settled.reset();
        self.settled_list.clear();
        self.heap.clear();

        self.dist.set(source as usize, Dist::ZERO);
        self.heap.push(Reverse((Dist::ZERO, source)));

        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.settled.get(u as usize) {
                continue;
            }
            self.settled.set(u as usize, true);
            self.settled_list.push(u);
            if u != source && !expand_from(u) {
                continue;
            }
            let arcs = match dir {
                Dir::Forward => ov.out(u),
                Dir::Backward => ov.inn(u),
            };
            for a in arcs {
                if self.settled.get(a.to as usize) || !arc_ok(u, a) {
                    continue;
                }
                let nd = d.concat(a.dist);
                if nd < self.dist.get(a.to as usize) {
                    self.dist.set(a.to as usize, nd);
                    self.parent.set(a.to as usize, u);
                    self.in_span.set(a.to as usize, a.span);
                    self.heap.push(Reverse((nd, a.to)));
                }
            }
        }
    }

    /// Distance of `v` from the source of the last run.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist.get(v as usize)
    }

    /// True if `v` was settled in the last run.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled.get(v as usize)
    }

    /// Predecessor of `v` in the search tree (in traversal order: for a
    /// backward run the parent is the node *after* `v` on the forward
    /// path).
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent.get(v as usize);
        (p != INVALID_NODE).then_some(p)
    }

    /// Settled nodes in settle order (includes the source).
    pub fn settled_list(&self) -> &[NodeId] {
        &self.settled_list
    }

    /// Span of the arc through which `v` was reached ([`Span::ALWAYS`] for
    /// original edges and for the source itself).
    #[inline]
    pub fn in_span(&self, v: NodeId) -> Span {
        self.in_span.get(v as usize)
    }

    /// The tree walk from `v` back to the source:
    /// `v, parent(v), …, source`.
    pub fn walk_to_source(&self, v: NodeId) -> WalkToSource<'_> {
        WalkToSource {
            search: self,
            cur: Some(v),
        }
    }
}

/// Iterator over the parent chain of a settled node.
pub struct WalkToSource<'a> {
    search: &'a LocalSearch,
    cur: Option<NodeId>,
}

impl Iterator for WalkToSource<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let v = self.cur?;
        self.cur = self.search.parent(v);
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{GraphBuilder, Point};

    fn chain() -> Overlay {
        // 0 -1- 1 -1- 2 -1- 3 (bidirectional unit weights)
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        for i in 0..3u32 {
            b.add_bidirectional_edge(i, i + 1, 1);
        }
        Overlay::from_graph(&b.build())
    }

    #[test]
    fn unconstrained_run_is_plain_dijkstra() {
        let ov = chain();
        let mut ls = LocalSearch::new();
        ls.run(&ov, 0, Dir::Forward, |_| true, |_, _| true);
        assert_eq!(ls.dist(3).length, 3);
        let walk: Vec<_> = ls.walk_to_source(3).collect();
        assert_eq!(walk, vec![3, 2, 1, 0]);
        assert_eq!(ls.settled_list().len(), 4);
    }

    #[test]
    fn settle_without_expansion() {
        let ov = chain();
        let mut ls = LocalSearch::new();
        // Node 1 may be settled but not expanded: 2, 3 stay unreached.
        ls.run(&ov, 0, Dir::Forward, |v| v != 1, |_, _| true);
        assert!(ls.is_settled(1));
        assert!(!ls.is_settled(2));
        assert!(ls.dist(2).is_infinite());
    }

    #[test]
    fn arc_filter_blocks() {
        let ov = chain();
        let mut ls = LocalSearch::new();
        ls.run(&ov, 0, Dir::Forward, |_| true, |_, a| a.to != 2);
        assert!(ls.is_settled(1));
        assert!(!ls.is_settled(2));
    }

    #[test]
    fn backward_direction() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        let ov = Overlay::from_graph(&b.build());
        let mut ls = LocalSearch::new();
        ls.run(&ov, 2, Dir::Backward, |_| true, |_, _| true);
        assert_eq!(ls.dist(0).length, 5);
        // Parent chain in a backward run follows forward orientation.
        let walk: Vec<_> = ls.walk_to_source(0).collect();
        assert_eq!(walk, vec![0, 1, 2]);
    }

    #[test]
    fn reuse_resets_state() {
        let ov = chain();
        let mut ls = LocalSearch::new();
        ls.run(&ov, 0, Dir::Forward, |_| true, |_, _| true);
        ls.run(&ov, 3, Dir::Forward, |_| true, |_, _| true);
        assert_eq!(ls.dist(0).length, 3);
        assert_eq!(ls.dist(3), Dist::ZERO);
    }
}
