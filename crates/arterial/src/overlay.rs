//! The overlay graph: original edges plus coverage-tagged shortcuts.

use ah_graph::{Dist, Graph, NodeId};
use ah_grid::Region;

/// The rectangle of finest-grid (`R_1`) cells a shortcut's generating
/// region covers, half-open on both axes. Original edges carry
/// [`Span::ALWAYS`], which every region covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub x0: u32,
    pub y0: u32,
    pub x1: u32,
    pub y1: u32,
}

impl Span {
    /// The span of original edges: usable inside any region.
    pub const ALWAYS: Span = Span {
        x0: u32::MAX,
        y0: u32::MAX,
        x1: u32::MAX,
        y1: u32::MAX,
    };

    /// True for the original-edge sentinel.
    #[inline]
    pub fn is_always(&self) -> bool {
        self.x0 == u32::MAX
    }

    /// The `R_1` footprint of a (4×4)-cell region at `region.level`.
    pub fn of_region(region: Region) -> Span {
        let shift = region.level - 1;
        Span {
            x0: region.x << shift,
            y0: region.y << shift,
            x1: (region.x + 4) << shift,
            y1: (region.y + 4) << shift,
        }
    }

    /// True if a shortcut with span `self` may be traversed inside a region
    /// with span `region`: the generating region must be completely covered
    /// (paper's *coverage condition*), original edges always qualify.
    #[inline]
    pub fn covered_by(&self, region: &Span) -> bool {
        self.is_always()
            || (self.x0 >= region.x0
                && self.x1 <= region.x1
                && self.y0 >= region.y0
                && self.y1 <= region.y1)
    }

    /// True if `self` is usable wherever `other` is (for arc domination):
    /// any region covering `other` covers `self`.
    #[inline]
    fn usable_wherever(&self, other: &Span) -> bool {
        if self.is_always() {
            return true;
        }
        if other.is_always() {
            return false;
        }
        self.x0 >= other.x0 && self.x1 <= other.x1 && self.y0 >= other.y0 && self.y1 <= other.y1
    }

    /// The span of a single `R_1` cell.
    pub fn of_cell(x: u32, y: u32) -> Span {
        Span {
            x0: x,
            y0: y,
            x1: x + 1,
            y1: y + 1,
        }
    }

    /// Smallest span containing both operands. [`Span::ALWAYS`] acts as the
    /// neutral element (original edges occupy only their endpoint cells,
    /// which the caller adds separately).
    pub fn union(self, other: Span) -> Span {
        if self.is_always() {
            return other;
        }
        if other.is_always() {
            return self;
        }
        Span {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }
}

/// An overlay arc: endpoint, nuance-tagged length, and coverage span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OArc {
    /// Head for out-arcs, tail for in-arcs.
    pub to: NodeId,
    /// Length of the (possibly contracted) underlying path.
    pub dist: Dist,
    /// Coverage span (see [`Span`]).
    pub span: Span,
}

/// The dynamic overlay graph used during level assignment: the original
/// road network plus per-stage contraction shortcuts.
#[derive(Debug, Clone)]
pub struct Overlay {
    out: Vec<Vec<OArc>>,
    inn: Vec<Vec<OArc>>,
    shortcuts: usize,
}

impl Overlay {
    /// Initializes the overlay with exactly the original edges.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        for (tail, a) in g.edges() {
            let dist = Dist::new(a.weight as u64, a.nuance as u64);
            out[tail as usize].push(OArc {
                to: a.head,
                dist,
                span: Span::ALWAYS,
            });
            inn[a.head as usize].push(OArc {
                to: tail,
                dist,
                span: Span::ALWAYS,
            });
        }
        Overlay {
            out,
            inn,
            shortcuts: 0,
        }
    }

    /// Number of nodes (same id space as the source graph).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Total number of arcs currently stored (original + shortcuts).
    pub fn num_arcs(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Number of shortcut arcs added so far.
    pub fn num_shortcuts(&self) -> usize {
        self.shortcuts
    }

    /// Arcs leaving `v`.
    #[inline]
    pub fn out(&self, v: NodeId) -> &[OArc] {
        &self.out[v as usize]
    }

    /// Arcs entering `v` (each [`OArc::to`] is the tail).
    #[inline]
    pub fn inn(&self, v: NodeId) -> &[OArc] {
        &self.inn[v as usize]
    }

    /// Adds the shortcut `u → v` unless an existing arc *dominates* it
    /// (is at most as long and usable in at least as many regions).
    /// Symmetrically removes arcs the new shortcut dominates. Returns true
    /// if the arc was inserted.
    pub fn add_shortcut(&mut self, u: NodeId, v: NodeId, dist: Dist, span: Span) -> bool {
        debug_assert_ne!(u, v, "self-loop shortcut");
        let new = OArc { to: v, dist, span };
        let out_list = &mut self.out[u as usize];
        if out_list
            .iter()
            .any(|a| a.to == v && a.dist <= dist && a.span.usable_wherever(&span))
        {
            return false;
        }
        out_list.retain(|a| {
            !(a.to == v && dist <= a.dist && span.usable_wherever(&a.span))
        });
        out_list.push(new);
        let in_list = &mut self.inn[v as usize];
        in_list.retain(|a| {
            !(a.to == u && dist <= a.dist && span.usable_wherever(&a.span))
        });
        in_list.push(OArc {
            to: u,
            dist,
            span,
        });
        self.shortcuts += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{GraphBuilder, Point};

    fn span(x0: u32, y0: u32, x1: u32, y1: u32) -> Span {
        Span { x0, y0, x1, y1 }
    }

    #[test]
    fn region_span_scales_with_level() {
        let r1 = Region::new(1, 3, 5);
        assert_eq!(Span::of_region(r1), span(3, 5, 7, 9));
        let r3 = Region::new(3, 3, 5);
        assert_eq!(Span::of_region(r3), span(12, 20, 28, 36));
    }

    #[test]
    fn coverage_rules() {
        let region = span(0, 0, 8, 8);
        assert!(span(2, 2, 6, 6).covered_by(&region));
        assert!(span(0, 0, 8, 8).covered_by(&region));
        assert!(!span(2, 2, 9, 6).covered_by(&region));
        assert!(Span::ALWAYS.covered_by(&region));
    }

    #[test]
    fn from_graph_mirrors_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_edge(a, c, 7);
        let ov = Overlay::from_graph(&b.build());
        assert_eq!(ov.num_arcs(), 1);
        assert_eq!(ov.out(a)[0].to, c);
        assert_eq!(ov.out(a)[0].dist.length, 7);
        assert!(ov.out(a)[0].span.is_always());
        assert_eq!(ov.inn(c)[0].to, a);
    }

    #[test]
    fn shortcut_domination_by_original() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_edge(a, c, 3);
        let mut ov = Overlay::from_graph(&b.build());
        // Longer shortcut with a restricted span: dominated by the original
        // edge (shorter, usable anywhere).
        let added = ov.add_shortcut(a, c, Dist::new(5, 0), span(0, 0, 4, 4));
        assert!(!added);
        assert_eq!(ov.num_arcs(), 1);
    }

    #[test]
    fn shorter_shortcut_replaces_wider_equal_span() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        let g = b.build();
        let mut ov = Overlay::from_graph(&g);
        assert!(ov.add_shortcut(a, c, Dist::new(9, 0), span(0, 0, 4, 4)));
        // Same span, shorter: replaces.
        assert!(ov.add_shortcut(a, c, Dist::new(5, 0), span(0, 0, 4, 4)));
        assert_eq!(ov.out(a).len(), 1);
        assert_eq!(ov.out(a)[0].dist.length, 5);
        assert_eq!(ov.inn(c).len(), 1);
        assert_eq!(ov.inn(c)[0].dist.length, 5);
    }

    #[test]
    fn incomparable_spans_coexist() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        let g = b.build();
        let mut ov = Overlay::from_graph(&g);
        // Shorter arc but with a span that is NOT contained in the longer
        // arc's span: both must survive (the longer one may be usable in a
        // region where the shorter is not).
        assert!(ov.add_shortcut(a, c, Dist::new(5, 0), span(4, 0, 8, 4)));
        assert!(ov.add_shortcut(a, c, Dist::new(7, 0), span(0, 0, 4, 4)));
        assert_eq!(ov.out(a).len(), 2);
    }

    #[test]
    fn smaller_span_preferred_on_equal_length() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        let g = b.build();
        let mut ov = Overlay::from_graph(&g);
        assert!(ov.add_shortcut(a, c, Dist::new(5, 0), span(0, 0, 8, 8)));
        // Equal length, smaller span: usable in strictly more regions.
        assert!(ov.add_shortcut(a, c, Dist::new(5, 0), span(2, 2, 6, 6)));
        assert_eq!(ov.out(a).len(), 1);
        assert_eq!(ov.out(a)[0].span, span(2, 2, 6, 6));
    }
}
