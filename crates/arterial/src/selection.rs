//! Incremental hierarchy-level assignment (Section 4.2 / Appendix D).

use std::collections::HashSet;

use ah_graph::{Graph, NodeId};
use ah_grid::{Axis, Cell, GridHierarchy, Region};

use crate::local::{Dir, LocalSearch};
use crate::overlay::{OArc, Overlay, Span};

/// Tunables for [`assign_levels`].
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Upper bound on the number of grid levels `h` (the paper's planetary
    /// bound is 26).
    pub max_levels: u32,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig { max_levels: 26 }
    }
}

/// The output of level assignment: the node hierarchy levels plus the
/// per-stage pseudo-arterial evidence (used for ranking and for Figure 3).
#[derive(Debug, Clone)]
pub struct LevelAssignment {
    /// The grid hierarchy the levels were computed against.
    pub grid: GridHierarchy,
    /// Hierarchy level per node, `0 ..= h`.
    pub level: Vec<u8>,
    /// `pseudo_arterial[s-1]` = the distinct pseudo-arterial edges found at
    /// stage `s` (endpoints of these were promoted to level `s`). Oriented
    /// as forward edges of the overlay.
    pub pseudo_arterial: Vec<Vec<(NodeId, NodeId)>>,
    /// `region_counts[s-1]` = for every non-empty (4×4)-cell region of
    /// `R_s`, the number of distinct pseudo-arterial edges found in it
    /// (the Figure 3 measurements).
    pub region_counts: Vec<Vec<u32>>,
    /// Number of contraction shortcuts the overlay accumulated (an index
    /// construction cost metric).
    pub overlay_shortcuts: usize,
}

impl LevelAssignment {
    /// The number of grid levels `h`.
    pub fn h(&self) -> u32 {
        self.grid.levels()
    }

    /// Level of node `v`.
    #[inline]
    pub fn level_of(&self, v: NodeId) -> u8 {
        self.level[v as usize]
    }

    /// Histogram of node counts per level (`result[l]` = nodes at level
    /// `l`).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.h() as usize + 1];
        for &l in &self.level {
            hist[l as usize] += 1;
        }
        hist
    }
}

/// Internal per-run state shared by the selection and shortcut phases.
struct Stage<'a> {
    /// The original road network (Definition 2's border-node test runs on
    /// *original* edges — they are short, so border sets shrink
    /// geometrically with the cell size, which is what keeps the reduced
    /// graphs small).
    g: &'a Graph,
    /// `R_1` cell per node (coarser cells derived by shifting).
    r1: &'a [Cell],
    s: u32,
}

impl Stage<'_> {
    #[inline]
    fn cell(&self, v: NodeId) -> Cell {
        let c = self.r1[v as usize];
        let sh = self.s - 1;
        Cell {
            x: c.x >> sh,
            y: c.y >> sh,
        }
    }

    #[inline]
    fn cell_at(&self, v: NodeId, lvl: u32) -> Cell {
        let c = self.r1[v as usize];
        let sh = lvl - 1;
        Cell {
            x: c.x >> sh,
            y: c.y >> sh,
        }
    }

    /// Border-node test (Definition 2) for `v` against region `b` at this
    /// stage's grid, evaluated on original edges.
    fn is_border_of(&self, b: &Region, v: NodeId) -> bool {
        self.is_border_of_at(b, v, self.s)
    }

    /// Border test for `v` against a region of an arbitrary grid level
    /// (used for the next-stage retention set).
    fn is_border_of_at(&self, b: &Region, v: NodeId, lvl: u32) -> bool {
        let cv = self.cell_at(v, lvl);
        if !b.contains_cell(cv) || b.in_center_2x2(cv) {
            return false;
        }
        let crosses = |to: NodeId| b.edge_crosses_strip_boundary(cv, self.cell_at(to, lvl));
        self.g.out_edges(v).iter().any(|a| crosses(a.head))
            || self.g.in_edges(v).iter().any(|a| crosses(a.head))
    }
}

/// Assigns hierarchy levels to every node of `g` with the paper's
/// incremental reduction (Section 4.2), collecting the pseudo-arterial
/// evidence along the way.
pub fn assign_levels(g: &Graph, cfg: &SelectionConfig) -> LevelAssignment {
    let n = g.num_nodes();
    let bb = g.bounding_box();
    if n == 0 || bb.is_empty() {
        let grid = GridHierarchy::fit(
            ah_graph::BoundingBox::of([ah_graph::Point::new(0, 0), ah_graph::Point::new(1, 1)]),
            1,
        );
        return LevelAssignment {
            grid,
            level: vec![0; n],
            pseudo_arterial: Vec::new(),
            region_counts: Vec::new(),
            overlay_shortcuts: 0,
        };
    }

    let grid = GridHierarchy::fit_to_points(g.coords(), cfg.max_levels);
    let h = grid.levels();
    let r1: Vec<Cell> = (0..n as NodeId).map(|v| grid.cell_of(1, g.coord(v))).collect();

    let mut ov = Overlay::from_graph(g);
    let mut level = vec![0u8; n];
    let mut active = vec![true; n];
    let mut ls = LocalSearch::new();

    let mut pseudo_arterial: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(h as usize);
    let mut region_counts: Vec<Vec<u32>> = Vec::with_capacity(h as usize);

    let trace = std::env::var_os("AH_TRACE_SELECT").is_some();
    for s in 1..=h {
        let stage_t0 = std::time::Instant::now();
        let stage = Stage { g, r1: &r1, s };
        let regions = non_empty_regions(&grid, s, &r1, &active);
        let buckets = CellBuckets::build(s, &r1, &active);

        // ---- selection: pseudo-arterial edges of every region -----------
        let mut stage_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut counts = Vec::with_capacity(regions.len());
        for &b in &regions {
            let bspan = Span::of_region(b);
            let mut region_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
            for u in buckets.members(&b) {
                if !stage.is_border_of(&b, u) {
                    continue;
                }
                for dir in [Dir::Forward, Dir::Backward] {
                    // Interiors: any active node inside B. The paper
                    // restricts interiors to previous-level cores; we keep
                    // retained border nodes traversable as well, which
                    // finds a superset of the paper's spanning paths (safe
                    // for Lemma 3) and lets the shortcut phase decompose
                    // paths at retained nodes instead of building
                    // all-pairs cliques.
                    ls.run(
                        &ov,
                        u,
                        dir,
                        |v| active[v as usize] && b.contains_cell(stage.cell(v)),
                        |_, a: &OArc| {
                            active[a.to as usize] && a.span.covered_by(&bspan)
                        },
                    );
                    collect_spanning_crossings(&ls, &stage, &b, u, dir, &mut region_edges);
                }
            }
            counts.push(region_edges.len() as u32);
            stage_edges.extend(region_edges.iter().copied());
        }
        counts.sort_unstable();
        region_counts.push(counts);
        let select_elapsed = stage_t0.elapsed();

        // ---- promote cores ----------------------------------------------
        for &(a, b) in &stage_edges {
            level[a as usize] = s as u8;
            level[b as usize] = s as u8;
        }
        let mut edges: Vec<(NodeId, NodeId)> = stage_edges.into_iter().collect();
        edges.sort_unstable();
        pseudo_arterial.push(edges);

        // ---- shortcuts + reduction for the next stage --------------------
        if s == h {
            break;
        }
        let border_next = compute_border_next(&grid, s + 1, &r1, &active, &stage);
        let cur = s as u8;
        for &b in &regions {
            let bspan = Span::of_region(b);
            // Shortcut endpoints: the nodes the next stage retains (its
            // cores and the next grid's border nodes). Restricting to the
            // retained set keeps the overlay linear in n.
            let eligible = |v: NodeId| {
                active[v as usize] && (level[v as usize] == cur || border_next[v as usize])
            };
            let members: Vec<NodeId> = buckets.members(&b).filter(|&v| eligible(v)).collect();
            for &u in &members {
                // Interiors: nodes the reduction is about to drop. The
                // search stops at retained nodes, so shortcuts only bridge
                // maximal removed segments (paths through other retained
                // nodes decompose there) — this keeps the overlay linear.
                ls.run(
                    &ov,
                    u,
                    Dir::Forward,
                    |v| {
                        active[v as usize]
                            && !(level[v as usize] == cur || border_next[v as usize])
                            && b.contains_cell(stage.cell(v))
                    },
                    |_, a: &OArc| {
                        active[a.to as usize]
                            && a.span.covered_by(&bspan)
                            && b.contains_cell(stage.cell(a.to))
                    },
                );
                // Snapshot targets first: add_shortcut mutates the overlay.
                // Each shortcut is tagged with the bounding box of its
                // *actual underlying path* (node cells plus the spans of
                // any contracted sub-arcs): the tightest correct coverage
                // footprint, and identical no matter which sliding window
                // discovered the pair — so overlapping windows dedup to a
                // single arc.
                let targets: Vec<(NodeId, ah_graph::Dist, Span)> = ls
                    .settled_list()
                    .iter()
                    .copied()
                    .filter(|&v| v != u && ls.parent(v) != Some(u) && eligible(v))
                    .map(|v| {
                        let mut span = Span::of_cell(r1[v as usize].x, r1[v as usize].y);
                        let mut cur_node = v;
                        while cur_node != u {
                            span = span.union(ls.in_span(cur_node));
                            let p = ls.parent(cur_node).expect("chain reaches source");
                            span = span.union(Span::of_cell(
                                r1[p as usize].x,
                                r1[p as usize].y,
                            ));
                            cur_node = p;
                        }
                        (v, ls.dist(v), span)
                    })
                    .collect();
                for (v, d, span) in targets {
                    ov.add_shortcut(u, v, d, span);
                }
            }
        }
        for v in 0..n {
            active[v] = active[v] && (level[v] == cur || border_next[v]);
        }
        if trace {
            eprintln!(
                "stage {s}/{h}: regions={} active={} cores={} shortcuts_total={} \
                 select={select_elapsed:?} total={:?}",
                regions.len(),
                active.iter().filter(|&&a| a).count(),
                level.iter().filter(|&&l| l == s as u8).count(),
                ov.num_shortcuts(),
                stage_t0.elapsed(),
            );
        }
    }

    LevelAssignment {
        grid,
        level,
        pseudo_arterial,
        region_counts,
        overlay_shortcuts: ov.num_shortcuts(),
    }
}

/// Walks every settled spanning-path endpoint of the last search and
/// records the bisector-crossing arcs (pseudo-arterial edges), oriented as
/// forward edges.
#[allow(clippy::too_many_arguments)]
fn collect_spanning_crossings(
    ls: &LocalSearch,
    stage: &Stage<'_>,
    b: &Region,
    u: NodeId,
    dir: Dir,
    out: &mut HashSet<(NodeId, NodeId)>,
) {
    let cu = stage.cell(u);
    for &t in ls.settled_list() {
        if t == u {
            continue;
        }
        let ct = stage.cell(t);
        let t_in = b.contains_cell(ct);
        // Target eligibility: border of B (inside) or any retained node
        // reached through one crossing arc (outside, type-(b)).
        if t_in && !stage.is_border_of(b, t) {
            continue;
        }
        // Orient endpoint cells in forward path order.
        let (from_cell, to_cell) = match dir {
            Dir::Forward => (cu, ct),
            Dir::Backward => (ct, cu),
        };
        for axis in Axis::BOTH {
            if !b.valid_spanning_endpoints(axis, from_cell, to_cell) {
                continue;
            }
            // Walk the parent chain and record the first crossing arc.
            let chain: Vec<NodeId> = ls.walk_to_source(t).collect();
            for w in chain.windows(2) {
                // Forward run: parent precedes child on the path, so the
                // forward edge is (w[1] → w[0]); backward run: (w[0] → w[1]).
                let (tail, head) = match dir {
                    Dir::Forward => (w[1], w[0]),
                    Dir::Backward => (w[0], w[1]),
                };
                if b.edge_crosses_bisector(axis, stage.cell(tail), stage.cell(head)) {
                    out.insert((tail, head));
                    break;
                }
            }
        }
    }
}

/// All sliding (4×4)-cell regions of `R_s` containing at least one active
/// node, deduplicated and sorted.
fn non_empty_regions(
    grid: &GridHierarchy,
    s: u32,
    r1: &[Cell],
    active: &[bool],
) -> Vec<Region> {
    let sh = s - 1;
    let mut cells: Vec<Cell> = active
        .iter()
        .enumerate()
        .filter(|&(_, &a)| a)
        .map(|(v, _)| {
            let c = r1[v];
            Cell {
                x: c.x >> sh,
                y: c.y >> sh,
            }
        })
        .collect();
    cells.sort_unstable();
    cells.dedup();
    let mut regions: Vec<Region> = cells
        .iter()
        .flat_map(|&c| grid.regions_containing_cell(s, c))
        .collect();
    regions.sort_unstable();
    regions.dedup();
    regions
}

/// Active nodes bucketed by their `R_s` cell, so region membership is a
/// 16-cell lookup instead of a node scan.
struct CellBuckets {
    map: std::collections::HashMap<(u32, u32), Vec<NodeId>>,
}

impl CellBuckets {
    fn build(s: u32, r1: &[Cell], active: &[bool]) -> Self {
        let sh = s - 1;
        let mut map: std::collections::HashMap<(u32, u32), Vec<NodeId>> =
            std::collections::HashMap::new();
        for v in 0..r1.len() {
            if !active[v] {
                continue;
            }
            let c = r1[v];
            map.entry((c.x >> sh, c.y >> sh))
                .or_default()
                .push(v as NodeId);
        }
        CellBuckets { map }
    }

    /// Nodes whose cell lies inside the (4×4)-cell region `b`.
    fn members(&self, b: &Region) -> impl Iterator<Item = NodeId> + '_ {
        let (bx, by) = (b.x, b.y);
        (0..16u32).flat_map(move |i| {
            let cell = (bx + i % 4, by + i / 4);
            self.map.get(&cell).into_iter().flatten().copied()
        })
    }
}

/// Marks every active node that is a border node of some region of
/// `R_next` (the retention rule for the next stage's reduced graph).
fn compute_border_next(
    grid: &GridHierarchy,
    next: u32,
    r1: &[Cell],
    active: &[bool],
    stage: &Stage<'_>,
) -> Vec<bool> {
    let n = r1.len();
    let mut border = vec![false; n];
    let sh = next - 1;
    for v in 0..n as NodeId {
        if !active[v as usize] {
            continue;
        }
        let c = r1[v as usize];
        let cv = Cell {
            x: c.x >> sh,
            y: c.y >> sh,
        };
        for b in grid.regions_containing_cell(next, cv) {
            if stage.is_border_of_at(&b, v, next) {
                border[v as usize] = true;
                break;
            }
        }
    }
    border
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_data::fixtures;
    use ah_search::{dijkstra_path, DijkstraDriver, SearchOptions};

    /// Empirical check of Lemma 3 / Statement 4: for far-apart pairs (no
    /// (3×3)-cell region of `R_j` covers both), the canonical shortest path
    /// must contain a node at level ≥ j (an interior one when the path has
    /// several edges).
    fn check_lemma3(g: &ah_graph::Graph, la: &LevelAssignment, pairs: &[(NodeId, NodeId)]) {
        for &(s, t) in pairs {
            let Some(path) = dijkstra_path(g, s, t) else {
                continue;
            };
            let Some(j) = la
                .grid
                .separation_level(g.coord(s), g.coord(t))
            else {
                continue;
            };
            let max_level = path.nodes.iter().map(|&v| la.level_of(v) as u32).max().unwrap();
            assert!(
                max_level >= j,
                "pair ({s},{t}): separation level {j} but max path level {max_level}; \
                 path = {:?}, levels = {:?}",
                path.nodes,
                path.nodes.iter().map(|&v| la.level_of(v)).collect::<Vec<_>>()
            );
            if path.num_edges() >= 2 {
                let interior_max = path.nodes[1..path.nodes.len() - 1]
                    .iter()
                    .map(|&v| la.level_of(v) as u32)
                    .max()
                    .unwrap();
                assert!(
                    interior_max >= j,
                    "pair ({s},{t}): no interior node at level ≥ {j}"
                );
            }
        }
    }

    fn all_distant_pairs(g: &ah_graph::Graph, stride: usize) -> Vec<(NodeId, NodeId)> {
        let n = g.num_nodes() as NodeId;
        let mut pairs = Vec::new();
        for s in (0..n).step_by(stride) {
            for t in (0..n).step_by(stride) {
                if s != t {
                    pairs.push((s, t));
                }
            }
        }
        pairs
    }

    #[test]
    fn levels_on_line_fixture() {
        let g = fixtures::line(64, 10);
        let la = assign_levels(&g, &SelectionConfig::default());
        assert!(la.h() >= 3);
        // A line is a single "highway": every node can legitimately end up
        // arterial, so we only check that cores exist and Lemma 3 holds.
        assert!(
            la.level.iter().any(|&l| l > 0),
            "a 64-node line must produce cores"
        );
        check_lemma3(&g, &la, &all_distant_pairs(&g, 5));
    }

    #[test]
    fn levels_on_lattice_fixture() {
        let g = fixtures::lattice(16, 16, 8);
        let la = assign_levels(&g, &SelectionConfig::default());
        check_lemma3(&g, &la, &all_distant_pairs(&g, 13));
    }

    #[test]
    fn levels_on_figure1_fixture() {
        let g = fixtures::figure1_like();
        let la = assign_levels(&g, &SelectionConfig::default());
        check_lemma3(&g, &la, &all_distant_pairs(&g, 1));
    }

    #[test]
    fn levels_on_small_road_network() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 24,
            height: 24,
            seed: 42,
            ..Default::default()
        });
        let la = assign_levels(&g, &SelectionConfig::default());
        check_lemma3(&g, &la, &all_distant_pairs(&g, 29));
        // The hierarchy must discriminate: the top level holds a small
        // fraction of the network (Lemma 4's density bound in spirit).
        let hist = la.level_histogram();
        let top = *hist.last().unwrap();
        assert!(
            top * 8 < g.num_nodes(),
            "top level too crowded: {hist:?}"
        );
    }

    #[test]
    fn levels_on_random_geometric() {
        let g = ah_data::random_geometric(120, 800, 140, 5);
        let la = assign_levels(&g, &SelectionConfig::default());
        check_lemma3(&g, &la, &all_distant_pairs(&g, 7));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = ah_graph::GraphBuilder::new().build();
        let la = assign_levels(&empty, &SelectionConfig::default());
        assert!(la.level.is_empty());

        let single = fixtures::line(1, 1);
        let la1 = assign_levels(&single, &SelectionConfig::default());
        assert_eq!(la1.level, vec![0]);
    }

    #[test]
    fn region_counts_are_recorded_per_stage() {
        let g = fixtures::lattice(16, 16, 8);
        let la = assign_levels(&g, &SelectionConfig::default());
        assert_eq!(la.region_counts.len(), la.h() as usize);
        // Stage 1 has many non-empty regions on a 16×16 lattice.
        assert!(!la.region_counts[0].is_empty());
        // Counts are sorted for quantile extraction.
        for counts in &la.region_counts {
            assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn pseudo_arterial_endpoints_have_matching_levels() {
        let g = fixtures::lattice(12, 12, 16);
        let la = assign_levels(&g, &SelectionConfig::default());
        for (idx, edges) in la.pseudo_arterial.iter().enumerate() {
            let s = (idx + 1) as u8;
            for &(a, b) in edges {
                assert!(la.level_of(a) >= s, "endpoint {a} below stage {s}");
                assert!(la.level_of(b) >= s);
            }
        }
    }

    #[test]
    fn deterministic_assignment() {
        let g = fixtures::lattice(10, 10, 8);
        let a = assign_levels(&g, &SelectionConfig::default());
        let b = assign_levels(&g, &SelectionConfig::default());
        assert_eq!(a.level, b.level);
        assert_eq!(a.pseudo_arterial, b.pseudo_arterial);
    }

    /// The query-time pruning also needs a *directed* refinement of the
    /// Lemma 3 check on one-way networks; exercise a network with one-way
    /// streets.
    #[test]
    fn lemma3_with_one_way_streets() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 16,
            height: 16,
            one_way: 0.3,
            seed: 9,
            ..Default::default()
        });
        let la = assign_levels(&g, &SelectionConfig::default());
        check_lemma3(&g, &la, &all_distant_pairs(&g, 17));
    }

    #[test]
    fn max_levels_cap_respected() {
        let g = fixtures::lattice(16, 16, 64);
        let la = assign_levels(&g, &SelectionConfig { max_levels: 3 });
        assert_eq!(la.h(), 3);
        assert!(la.level.iter().all(|&l| l <= 3));
    }

    // Silence unused-import warning for DijkstraDriver/SearchOptions which
    // document the intended debugging workflow.
    #[allow(dead_code)]
    fn _unused(d: &mut DijkstraDriver, g: &ah_graph::Graph) {
        d.run(g, 0, &SearchOptions::default(), |_| true);
    }
}
