//! Criterion micro-benchmarks for index construction (a slice of
//! Figure 10b on the S0 dataset).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_build(c: &mut Criterion) {
    let spec = ah_bench::REGISTRY[0]; // S0 ≈ 1K nodes
    let g = spec.build();

    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    group.bench_function("AH", |b| {
        b.iter(|| ah_core::AhIndex::build(&g, &Default::default()).num_nodes())
    });
    group.bench_function("CH", |b| {
        b.iter(|| ah_ch::ChIndex::build(&g).num_shortcuts())
    });
    group.bench_function("FC", |b| {
        b.iter(|| ah_fc::FcIndex::build(&g).num_shortcuts())
    });
    group.bench_function("SILC", |b| {
        b.iter(|| ah_silc::SilcIndex::build_parallel(&g, 2).total_cells())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(10));
    targets = bench_build
}
criterion_main!(benches);
