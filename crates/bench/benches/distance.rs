//! Criterion micro-benchmarks for distance queries (a statistically
//! rigorous slice of Figure 8 on the S1 dataset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_distance(c: &mut Criterion) {
    let spec = ah_bench::REGISTRY[1]; // S1 ≈ 2K nodes
    let g = spec.build();
    let sets = ah_workload::generate_query_sets(&g, 64, 7);
    let ah = ah_core::AhIndex::build(&g, &Default::default());
    let ch = ah_ch::ChIndex::build(&g);

    let mut group = c.benchmark_group("distance");
    for set in sets.iter().filter(|s| !s.pairs.is_empty()).step_by(3) {
        let pairs = &set.pairs;
        let mut ahq = ah_core::AhQuery::new();
        group.bench_with_input(BenchmarkId::new("AH", format!("Q{}", set.index)), pairs, |b, pairs| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                ahq.distance(&ah, s, t)
            });
        });
        let mut chq = ah_ch::ChQuery::new();
        group.bench_with_input(BenchmarkId::new("CH", format!("Q{}", set.index)), pairs, |b, pairs| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                chq.distance(&ch, s, t)
            });
        });
        let mut bd = ah_search::BidirectionalDijkstra::new();
        group.bench_with_input(
            BenchmarkId::new("BiDijkstra", format!("Q{}", set.index)),
            pairs,
            |b, pairs| {
                let mut i = 0;
                b.iter(|| {
                    let (s, t) = pairs[i % pairs.len()];
                    i += 1;
                    bd.distance(&g, s, t)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_distance
}
criterion_main!(benches);
