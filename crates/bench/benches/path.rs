//! Criterion micro-benchmarks for shortest-path queries (a slice of
//! Figure 9 on the S1 dataset).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_path(c: &mut Criterion) {
    let spec = ah_bench::REGISTRY[1];
    let g = spec.build();
    let sets = ah_workload::generate_query_sets(&g, 64, 7);
    let ah = ah_core::AhIndex::build(&g, &Default::default());
    let ch = ah_ch::ChIndex::build(&g);
    let silc = ah_silc::SilcIndex::build_parallel(&g, 2);

    let mut group = c.benchmark_group("path");
    let Some(set) = sets.iter().rev().find(|s| !s.pairs.is_empty()) else {
        return;
    };
    let pairs = &set.pairs;
    let label = format!("Q{}", set.index);

    let mut ahq = ah_core::AhQuery::new();
    group.bench_with_input(BenchmarkId::new("AH", &label), pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            ahq.path(&ah, s, t).map(|p| p.nodes.len())
        });
    });
    let mut chq = ah_ch::ChQuery::new();
    group.bench_with_input(BenchmarkId::new("CH", &label), pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            chq.path(&ch, s, t).map(|p| p.nodes.len())
        });
    });
    let mut sq = ah_silc::SilcQuery::new();
    group.bench_with_input(BenchmarkId::new("SILC", &label), pairs, |b, pairs| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            sq.path(&g, &silc, s, t).map(|p| p.nodes.len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_path
}
criterion_main!(benches);
