//! Criterion micro-benchmarks for the substrates: Dijkstra engine, grid
//! predicates, generator, level assignment and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_substrate(c: &mut Criterion) {
    let spec = ah_bench::REGISTRY[0];
    let g = spec.build();
    let n = g.num_nodes() as u32;

    c.bench_function("dijkstra_sssp_S0", |b| {
        let mut d = ah_search::DijkstraDriver::new();
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 101) % n;
            d.run(&g, s, &ah_search::SearchOptions::default(), |_| true);
            d.settled_order().len()
        });
    });

    c.bench_function("grid_proximity_predicate", |b| {
        let grid = ah_grid::GridHierarchy::fit_to_points(g.coords(), 26);
        let coords = g.coords();
        let lvl = (grid.levels() / 2).max(1);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let p = coords[i % coords.len()];
            let q = coords[(i * 31) % coords.len()];
            grid.same_3x3_region(lvl, p, q)
        });
    });

    c.bench_function("generate_S0", |b| {
        b.iter(|| {
            ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
                width: 32,
                height: 32,
                seed: 1,
                ..Default::default()
            })
            .num_edges()
        });
    });

    c.bench_function("assign_levels_S0", |b| {
        b.iter(|| ah_arterial::assign_levels(&g, &Default::default()).overlay_shortcuts);
    });

    c.bench_function("query_set_generation_S0", |b| {
        b.iter(|| ah_workload::generate_query_sets(&g, 16, 3).len());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_substrate
}
criterion_main!(benches);
