//! **Ablation study** of the design choices DESIGN.md calls out:
//!
//! * proximity constraint on/off (query time),
//! * elevating edges on/off (build: index size; query: long-range time),
//! * vertex-cover in-level ranking + downgrading vs arbitrary order
//!   (index size and query time),
//! * stall-on-demand on/off.
//!
//! Every variant remains exact (this binary asserts agreement on a sample
//! of queries); the table shows what each ingredient buys.

use ah_bench::{load_dataset, HarnessArgs, time_once, time_query_set};
use ah_core::{AhIndex, AhQuery, BuildConfig, QueryConfig};

fn main() {
    let mut args = HarnessArgs::parse();
    if std::env::args().len() == 1 {
        args.through = 3; // ablations default to S0..S3
    }
    for spec in args.datasets() {
        let ds = load_dataset(spec, args.pairs, args.seed);
        let g = &ds.graph;
        let n = g.num_nodes();
        eprintln!("[ablation] {} (n = {n}) …", spec.name);
        let long = ds.query_sets.iter().rev().find(|s| !s.pairs.is_empty());
        let Some(set) = long else { continue };

        println!("\n{} (n = {n}), query set Q{} ({} pairs)", spec.name, set.index, set.pairs.len());
        println!("variant\tbuild_s\tindex_MB\tquery_us");

        let build_variants: [(&str, BuildConfig); 3] = [
            ("full AH", BuildConfig::default()),
            (
                "no elevating edges",
                BuildConfig {
                    elevating_edges: false,
                    ..Default::default()
                },
            ),
            (
                "arbitrary in-level order",
                BuildConfig {
                    vertex_cover_rank: false,
                    downgrade_non_cover: false,
                    ..Default::default()
                },
            ),
        ];

        let mut reference: Option<Vec<Option<u64>>> = None;
        for (name, bc) in &build_variants {
            let (idx, secs) = time_once(|| AhIndex::build(g, bc));
            let mb = idx.size_bytes() as f64 / (1024.0 * 1024.0);
            let query_variants: [(&str, QueryConfig); 4] = [
                ("all constraints", QueryConfig::default()),
                (
                    "no proximity",
                    QueryConfig {
                        proximity: false,
                        ..Default::default()
                    },
                ),
                (
                    "no elevating",
                    QueryConfig {
                        elevating: false,
                        ..Default::default()
                    },
                ),
                (
                    "no stalling",
                    QueryConfig {
                        stall_on_demand: false,
                        ..Default::default()
                    },
                ),
            ];
            for (qname, qc) in &query_variants {
                let mut q = AhQuery::with_config(*qc);
                let us = time_query_set(&set.pairs, |s, t| q.distance(&idx, s, t).unwrap_or(0));
                println!("{name} + {qname}\t{secs:.2}\t{mb:.2}\t{us:.2}");
                // Exactness guard: all variants agree.
                let answers: Vec<Option<u64>> = set
                    .pairs
                    .iter()
                    .take(50)
                    .map(|&(s, t)| q.distance(&idx, s, t))
                    .collect();
                match &reference {
                    None => reference = Some(answers),
                    Some(r) => assert_eq!(r, &answers, "variant {name}+{qname} diverged"),
                }
            }
        }
    }
    println!("\nall ablation variants returned identical distances ✓");
}
