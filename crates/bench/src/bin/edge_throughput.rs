//! **Open-loop load generator** for the `serve_edge` HTTP edge: N
//! connections, target-QPS pacing, latency histograms over the wire —
//! the measurement half of the ROADMAP's open-service story.
//!
//! Unlike `serve_throughput` (closed-loop: the feeder blocks when the
//! pool falls behind), each connection here has an independent *writer*
//! that sends requests on schedule regardless of whether responses have
//! come back, and a *reader* that consumes pipelined responses and
//! attributes each one's wire latency to its send time. Under overload
//! the latency therefore grows and the edge's `429`s appear — which is
//! the behaviour being measured, not an error.
//!
//! Phases (all optional except the main run):
//!
//! 1. **Main run** — `--requests` distance queries spread round-robin
//!    over `--connections`, paced to an aggregate `--qps` target (0 =
//!    unpaced, i.e. as fast as the sockets accept).
//! 2. **Burst** (`--burst N`) — one fresh connection pipelines N
//!    requests in a single write; with a queue smaller than N the edge
//!    must answer the excess with `429` while every accepted request
//!    still completes. Counts are reported.
//! 3. **Scrape** — `GET /metrics`, parsing the admission counters so
//!    the report can cross-check client-observed `429`s against the
//!    server's own `ah_queue_rejected_total`, plus the per-stage
//!    `ah_stage_duration_seconds` sums/counts into the JSON's
//!    `"server_stages"` key (`null` when the server isn't tracing),
//!    the `ah_query_*` cost families summed per field into
//!    `"server_cost"`, and `GET /debug/slo` embedded verbatim under
//!    `"slo"`.
//! 4. **Scenarios** (`--scenarios N`) — N mixed scenario requests
//!    (`/v1/via`, `/v1/knn`, `POST /v1/matrix`) on one synchronous
//!    connection, drawn from `TrafficSchedule::mixed`. With
//!    `--check-index` every scenario answer is asserted **bit-equal**
//!    to a direct `ScenarioEngine` run on the snapshot's graph over
//!    the POI wire contract (see `docs/SCENARIOS.md`).
//! 5. **Shutdown** (`--shutdown`) — `GET /admin/shutdown` (needs
//!    `serve_edge --allow-shutdown`), proving graceful drain over the
//!    wire.
//!
//! `--check-index SNAPSHOT` loads the graph + AH index the server was
//! started from, regenerates the paper's Q1–Q10 interactive traffic mix
//! (`--pairs`, `--seed` must match nothing — the *snapshot* pins the
//! network), and verifies every HTTP answer is **bit-equal** to a
//! direct `AhQuery` on the same pair.
//!
//! Results go to stdout and `BENCH_edge.json` (override with the
//! `EDGE_BENCH_OUT` environment variable).

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ah_core::AhQuery;
use ah_net::blocking;
use ah_search::ScenarioEngine;
use ah_server::{LatencyHistogram, PoiSet, COST_FIELD_NAMES, POI_CATEGORIES};
use ah_store::Snapshot;
use ah_workload::{ScenarioOp, TrafficSchedule};

struct Args {
    addr: String,
    connections: usize,
    requests: usize,
    qps: f64,
    burst: usize,
    check_index: Option<String>,
    pairs: usize,
    seed: u64,
    scenarios: usize,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        addr: "127.0.0.1:8080".to_string(),
        connections: 4,
        requests: 2000,
        qps: 0.0,
        burst: 0,
        check_index: None,
        pairs: 200,
        seed: 0xF16,
        scenarios: 0,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => a.addr = it.next().expect("--addr needs host:port"),
            "--connections" => {
                a.connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--connections needs a positive number")
            }
            "--requests" => {
                a.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests needs a number")
            }
            "--qps" => {
                a.qps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--qps needs a number (0 = unpaced)")
            }
            "--burst" => {
                a.burst = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--burst needs a number")
            }
            "--check-index" => a.check_index = Some(it.next().expect("--check-index PATH")),
            "--pairs" => {
                a.pairs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs needs a number")
            }
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--scenarios" => {
                a.scenarios = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scenarios needs a number of mixed scenario requests (0 disables)")
            }
            "--shutdown" => a.shutdown = true,
            other => panic!(
                "unknown argument {other} (try --addr HOST:PORT | --connections N | \
                 --requests N | --qps N | --burst N | --check-index PATH | --pairs N | \
                 --seed N | --scenarios N | --shutdown)"
            ),
        }
    }
    a
}

/// Client-side status tally (shared across reader threads).
#[derive(Default)]
struct StatusCounts {
    ok: AtomicU64,
    rejected: AtomicU64,
    other: AtomicU64,
    mismatches: AtomicU64,
}

fn main() {
    let args = parse_args();

    // Discover the served network.
    let health = blocking::Client::connect(args.addr.as_str())
        .and_then(|mut c| c.get("/healthz"))
        .unwrap_or_else(|e| panic!("cannot reach {}: {e}", args.addr));
    assert_eq!(health.status, 200, "healthz failed: {}", health.text());
    let nodes: u64 = health
        .text()
        .split("\"nodes\":")
        .nth(1)
        .and_then(|s| {
            let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
            s[..end].parse().ok()
        })
        .expect("healthz reports nodes");
    eprintln!("[edge_throughput] {} serves {nodes} nodes", args.addr);

    // Build the request stream: the paper's interactive Q1–Q10 mix when
    // identity-checking against a snapshot, uniform random pairs
    // otherwise.
    let mut expected: Option<Vec<Option<u64>>> = None;
    let mut checked_graph: Option<ah_graph::Graph> = None;
    let stream: Vec<(u32, u32)> = match &args.check_index {
        Some(path) => {
            eprintln!("[edge_throughput] loading {path} for identity checking …");
            let snap = Snapshot::load(path).unwrap_or_else(|e| panic!("{path}: {e}"));
            let g = snap.graph.expect("snapshot has a graph section");
            let ah = snap.ah.expect("snapshot has an AH section");
            assert_eq!(g.num_nodes() as u64, nodes, "snapshot serves a different network");
            let sets = ah_workload::generate_query_sets(&g, args.pairs, args.seed);
            let stream =
                TrafficSchedule::interactive(args.requests, 0.25, args.seed).generate(&sets);
            let mut q = AhQuery::new();
            expected = Some(
                stream
                    .iter()
                    .map(|&(s, t)| q.distance(&ah, s, t))
                    .collect(),
            );
            checked_graph = Some(g);
            stream
        }
        None => {
            // Deterministic uniform pairs via an LCG, no index needed.
            let mut x = args.seed | 1;
            (0..args.requests)
                .map(|_| {
                    let mut next = || {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        (x >> 33) % nodes.max(1)
                    };
                    (next() as u32, next() as u32)
                })
                .collect()
        }
    };

    // ---------------------------------------------------------- main run
    let hist = LatencyHistogram::new();
    let counts = StatusCounts::default();
    let per_conn_interval = if args.qps > 0.0 {
        Duration::from_secs_f64(args.connections as f64 / args.qps)
    } else {
        Duration::ZERO
    };
    let started = Instant::now();
    std::thread::scope(|scope| {
        for conn_id in 0..args.connections {
            let my: Vec<(u32, u32)> = stream
                .iter()
                .copied()
                .skip(conn_id)
                .step_by(args.connections)
                .collect();
            let my_expected: Option<Vec<Option<u64>>> = expected.as_ref().map(|e| {
                e.iter()
                    .copied()
                    .skip(conn_id)
                    .step_by(args.connections)
                    .collect()
            });
            let hist = &hist;
            let counts = &counts;
            let addr = args.addr.as_str();
            scope.spawn(move || {
                let mut reader = blocking::Client::connect(addr).expect("connect");
                let mut writer = reader.stream().try_clone().expect("socket clone");
                let (tx, rx) = mpsc::channel::<Instant>();
                let n = my.len();
                std::thread::scope(|inner| {
                    // Open-loop writer: sends on schedule, never waits
                    // for responses.
                    inner.spawn(move || {
                        let t0 = Instant::now();
                        for (i, (s, t)) in my.into_iter().enumerate() {
                            if !per_conn_interval.is_zero() {
                                let due = t0 + per_conn_interval * i as u32;
                                if let Some(wait) = due.checked_duration_since(Instant::now())
                                {
                                    std::thread::sleep(wait);
                                }
                            }
                            let req = format!(
                                "GET /v1/distance?src={s}&dst={t} HTTP/1.1\r\nHost: b\r\n\r\n"
                            );
                            tx.send(Instant::now()).unwrap();
                            writer.write_all(req.as_bytes()).expect("paced write");
                        }
                    });
                    // Reader: responses come back in send order per
                    // connection (the edge writes in pipeline order).
                    inner.spawn(move || {
                        for i in 0..n {
                            let sent_at = rx.recv().expect("send time");
                            let resp = reader.recv().expect("response read failed");
                            hist.record_ns(sent_at.elapsed().as_nanos() as u64);
                            match resp.status {
                                200 => {
                                    counts.ok.fetch_add(1, Ordering::Relaxed);
                                    if let Some(exp) = &my_expected {
                                        if resp.distance() != exp[i] {
                                            counts
                                                .mismatches
                                                .fetch_add(1, Ordering::Relaxed);
                                            eprintln!(
                                                "[edge_throughput] MISMATCH: got {:?} want {:?} ({})",
                                                resp.distance(),
                                                exp[i],
                                                resp.text(),
                                            );
                                        }
                                    }
                                }
                                429 => {
                                    counts.rejected.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {
                                    counts.other.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                });
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let ok = counts.ok.load(Ordering::Relaxed);
    let rejected_429 = counts.rejected.load(Ordering::Relaxed);
    let other = counts.other.load(Ordering::Relaxed);
    let mismatches = counts.mismatches.load(Ordering::Relaxed);
    assert_eq!(
        ok + rejected_429 + other,
        stream.len() as u64,
        "every request must be answered"
    );
    if expected.is_some() {
        assert_eq!(mismatches, 0, "HTTP answers diverged from direct AhQuery");
        assert_eq!(other, 0, "unexpected non-200/429 during identity run");
    }

    let qps = if wall_secs > 0.0 {
        stream.len() as f64 / wall_secs
    } else {
        0.0
    };
    println!(
        "main run: {} requests over {} connections in {wall_secs:.3}s → {qps:.0} qps \
         (200: {ok}, 429: {rejected_429}, other: {other}{})",
        stream.len(),
        args.connections,
        if expected.is_some() {
            ", identity verified"
        } else {
            ""
        },
    );
    println!(
        "latency: mean {:.1}us p50 {:.1}us p95 {:.1}us p99 {:.1}us",
        hist.mean_ns() / 1e3,
        hist.quantile_ns(0.50) / 1e3,
        hist.quantile_ns(0.95) / 1e3,
        hist.quantile_ns(0.99) / 1e3,
    );

    // --------------------------------------------------------- scenarios
    // Mixed via/knn/matrix traffic on one synchronous connection; with
    // a checked index every answer is asserted bit-equal to a direct
    // ScenarioEngine run over the POI wire contract.
    let scenarios_json = if args.scenarios == 0 {
        "null".to_string()
    } else {
        let pois = PoiSet::default_for(nodes as usize);
        let mut engine = ScenarioEngine::new();
        let ops: Vec<ScenarioOp> = match &checked_graph {
            Some(g) => {
                let sets = ah_workload::generate_query_sets(g, args.pairs, args.seed);
                let ops = TrafficSchedule::mixed(args.scenarios, 0.25, args.seed)
                    .generate_mixed(&sets, POI_CATEGORIES, 8);
                assert!(!ops.is_empty(), "scenario stream generation produced no ops");
                ops
            }
            None => {
                // No snapshot: deterministic uniform scenario ops, the
                // LCG counterpart of the unchecked main run.
                let mut x = (args.seed ^ 0x5CE) | 1;
                let mut next = move || {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((x >> 33) % nodes.max(1)) as u32
                };
                (0..args.scenarios)
                    .map(|i| {
                        let (s, t) = (next(), next());
                        let cat = (i as u32) % POI_CATEGORIES;
                        match i % 3 {
                            0 => ScenarioOp::Via { s, t, cat },
                            1 => ScenarioOp::Knn { s, cat, k: 1 + (i as u32 % 6) },
                            _ => ScenarioOp::Matrix {
                                sources: vec![s],
                                targets: vec![t],
                            },
                        }
                    })
                    .collect()
            }
        };
        let mut c = blocking::Client::connect(args.addr.as_str()).expect("connect");
        let (mut n_point, mut n_via, mut n_knn, mut n_matrix) = (0u64, 0u64, 0u64, 0u64);
        let mut scen_mismatches = 0u64;
        let mut check = |ok: bool, what: &str, body: &str| {
            if !ok {
                scen_mismatches += 1;
                eprintln!("[edge_throughput] SCENARIO MISMATCH ({what}): {body}");
            }
        };
        let t0 = Instant::now();
        for op in &ops {
            match op {
                ScenarioOp::Distance { s, t } | ScenarioOp::Path { s, t } => {
                    let endpoint = if matches!(op, ScenarioOp::Path { .. }) {
                        "path"
                    } else {
                        "distance"
                    };
                    let resp = c
                        .get(&format!("/v1/{endpoint}?src={s}&dst={t}"))
                        .expect("scenario response");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    n_point += 1;
                    if let Some(g) = &checked_graph {
                        let want = engine.one_to_many(g, *s, &[*t])[0];
                        check(resp.distance() == want, endpoint, &resp.text());
                    }
                }
                ScenarioOp::Via { s, t, cat } => {
                    let resp = c
                        .get(&format!("/v1/via?src={s}&dst={t}&cat={cat}"))
                        .expect("scenario response");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    n_via += 1;
                    if let Some(g) = &checked_graph {
                        // Everything but the cache_hit flag (repeats of
                        // a pair legitimately flip it).
                        let prefix = match engine.via(g, *s, *t, pois.category(*cat)) {
                            Some(a) => format!(
                                "{{\"src\":{s},\"dst\":{t},\"cat\":{cat},\"poi\":{},\"total\":{},\"to_poi\":{},\"from_poi\":{},",
                                a.poi, a.total, a.to_poi, a.from_poi
                            ),
                            None => format!(
                                "{{\"src\":{s},\"dst\":{t},\"cat\":{cat},\"poi\":null,\"total\":null,\"to_poi\":null,\"from_poi\":null,"
                            ),
                        };
                        check(resp.text().starts_with(&prefix), "via", &resp.text());
                    }
                }
                ScenarioOp::Knn { s, cat, k } => {
                    let resp = c
                        .get(&format!("/v1/knn?src={s}&cat={cat}&k={k}"))
                        .expect("scenario response");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    n_knn += 1;
                    if let Some(g) = &checked_graph {
                        let results: Vec<String> = engine
                            .knn(g, *s, pois.category(*cat), *k as usize)
                            .iter()
                            .map(|&(p, d)| format!("{{\"poi\":{p},\"distance\":{d}}}"))
                            .collect();
                        let want = format!(
                            "{{\"src\":{s},\"cat\":{cat},\"k\":{k},\"results\":[{}]}}",
                            results.join(",")
                        );
                        check(resp.text() == want, "knn", &resp.text());
                    }
                }
                ScenarioOp::Matrix { sources, targets } => {
                    let body = format!(
                        "{{\"sources\":[{}],\"targets\":[{}]}}",
                        sources.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
                        targets.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
                    );
                    let resp = c
                        .post_json("/v1/matrix", body.as_bytes())
                        .expect("scenario response");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    n_matrix += 1;
                    if let Some(g) = &checked_graph {
                        let rows: Vec<String> = engine
                            .matrix(g, sources, targets)
                            .iter()
                            .map(|row| {
                                let cells: Vec<String> = row
                                    .iter()
                                    .map(|c| c.map_or("null".to_string(), |d| d.to_string()))
                                    .collect();
                                format!("[{}]", cells.join(","))
                            })
                            .collect();
                        let want = format!(
                            "{{\"rows\":{},\"cols\":{},\"distances\":[{}]}}",
                            sources.len(),
                            targets.len(),
                            rows.join(",")
                        );
                        check(resp.text() == want, "matrix", &resp.text());
                    }
                }
            }
        }
        let scen_wall = t0.elapsed().as_secs_f64();
        if checked_graph.is_some() {
            assert_eq!(
                scen_mismatches, 0,
                "scenario answers diverged from the ScenarioEngine oracle"
            );
        }
        println!(
            "scenarios: {} ops ({n_point} point, {n_via} via, {n_knn} knn, {n_matrix} matrix) \
             in {scen_wall:.3}s{}",
            ops.len(),
            if checked_graph.is_some() {
                ", oracle verified"
            } else {
                ""
            },
        );
        format!(
            "{{\"ops\":{},\"point\":{n_point},\"via\":{n_via},\"knn\":{n_knn},\
             \"matrix\":{n_matrix},\"qps\":{:.1},\"verified\":{},\"mismatches\":{scen_mismatches}}}",
            ops.len(),
            ops.len() as f64 / scen_wall.max(1e-9),
            checked_graph.is_some(),
        )
    };

    // ------------------------------------------------------------- burst
    let burst_json = if args.burst > 0 {
        let mut c = blocking::Client::connect(args.addr.as_str()).expect("connect");
        let mut raw = String::new();
        for i in 0..args.burst {
            let s = (i as u64 % nodes) as u32;
            let t = ((i as u64 * 7 + 1) % nodes) as u32;
            raw.push_str(&format!(
                "GET /v1/distance?src={s}&dst={t} HTTP/1.1\r\nHost: b\r\n\r\n"
            ));
        }
        c.send(raw.as_bytes()).expect("burst write");
        let (mut accepted, mut shed, mut burst_other) = (0u64, 0u64, 0u64);
        for _ in 0..args.burst {
            match c.recv().expect("burst response").status {
                200 => accepted += 1,
                429 => shed += 1,
                _ => burst_other += 1,
            }
        }
        println!(
            "burst: {} pipelined → {accepted} accepted, {shed} shed with 429, {burst_other} other",
            args.burst
        );
        format!(
            "{{\"size\":{},\"accepted\":{accepted},\"rejected\":{shed},\"other\":{burst_other}}}",
            args.burst
        )
    } else {
        "null".to_string()
    };

    // ------------------------------------------------------------ scrape
    let scrape_resp = blocking::Client::connect(args.addr.as_str())
        .and_then(|mut c| c.get("/metrics"))
        .expect("/metrics scrape failed");
    assert_eq!(scrape_resp.status, 200, "/metrics scrape failed");
    let metrics_text = scrape_resp.text();
    let scrape = |name: &str| -> u64 {
        metrics_text
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let server_rejected = scrape("ah_queue_rejected_total");
    let server_high_water = scrape("ah_queue_high_water");
    let server_queries = scrape("ah_server_queries_total");
    println!(
        "server metrics: {server_queries} queries served, queue high-water {server_high_water}, \
         rejected {server_rejected}"
    );

    // Per-stage breakdown from the tracer's histogram series: the
    // `_sum`/`_count` of each `ah_stage_duration_seconds{stage=…}`
    // family, as the server itself exported them.
    let stage_series = |suffix: &str| -> Vec<(String, f64)> {
        let prefix = format!("ah_stage_duration_seconds{suffix}{{");
        metrics_text
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .filter_map(|l| {
                let stage = l.split("stage=\"").nth(1)?.split('"').next()?.to_string();
                let value = l.split_whitespace().last()?.parse().ok()?;
                Some((stage, value))
            })
            .collect()
    };
    let stage_sums = stage_series("_sum");
    let stage_counts = stage_series("_count");
    let server_stages_json = if stage_sums.is_empty() {
        "null".to_string()
    } else {
        let body = stage_sums
            .iter()
            .map(|(stage, sum)| {
                let count = stage_counts
                    .iter()
                    .find(|(s, _)| s == stage)
                    .map_or(0.0, |&(_, c)| c);
                format!("\"{stage}\":{{\"count\":{count:.0},\"sum_seconds\":{sum:.6}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        println!("server stage breakdown (sampled spans): {body}");
        format!("{{{body}}}")
    };

    // Per-query algorithmic cost families (`ah_query_*`): each field is
    // one counter family with a `kind` label per series; sum the series
    // so the report carries the run's total per field.
    let cost_total = |field: &str| -> u64 {
        let labelled = format!("ah_query_{field}{{");
        let bare = format!("ah_query_{field} ");
        metrics_text
            .lines()
            .filter(|l| l.starts_with(&labelled) || l.starts_with(&bare))
            .filter_map(|l| l.split_whitespace().last()?.parse::<u64>().ok())
            .sum()
    };
    let server_cost_json = {
        let body = COST_FIELD_NAMES
            .iter()
            .map(|name| format!("\"{name}\":{}", cost_total(name)))
            .collect::<Vec<_>>()
            .join(",");
        println!("server cost totals: {body}");
        format!("{{{body}}}")
    };

    // The SLO evaluation as the server reports it — windows, burn
    // rates, readiness — embedded verbatim (it is already JSON).
    let slo_json = blocking::Client::connect(args.addr.as_str())
        .and_then(|mut c| c.get("/debug/slo"))
        .map(|resp| {
            assert_eq!(resp.status, 200, "/debug/slo scrape failed");
            resp.text()
        })
        .expect("/debug/slo scrape failed");

    // --------------------------------------------------------- shutdown
    let mut clean_shutdown = false;
    if args.shutdown {
        let mut c = blocking::Client::connect(args.addr.as_str()).expect("connect");
        let resp = c.get("/admin/shutdown").expect("shutdown request");
        assert_eq!(
            resp.status, 200,
            "shutdown endpoint (serve_edge --allow-shutdown?)"
        );
        // The drain must end in a clean EOF (FIN after the flushed
        // response) — a reset or read error means connections were
        // aborted, not drained.
        clean_shutdown = match c.read_eof() {
            Ok(clean) => clean,
            Err(e) => {
                eprintln!("[edge_throughput] drain ended in error, not EOF: {e}");
                false
            }
        };
        if clean_shutdown {
            println!("server drained and closed cleanly");
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"edge_throughput\",\n",
            "  \"addr\": \"{}\",\n",
            "  \"connections\": {},\n",
            "  \"requests\": {},\n",
            "  \"target_qps\": {},\n",
            "  \"achieved_qps\": {:.1},\n",
            "  \"wall_secs\": {:.6},\n",
            "  \"latency_us\": {{\"mean\":{:.3},\"p50\":{:.3},\"p95\":{:.3},\"p99\":{:.3}}},\n",
            "  \"responses\": {{\"200\":{},\"429\":{},\"other\":{}}},\n",
            "  \"identity_checked\": {},\n",
            "  \"identity_mismatches\": {},\n",
            "  \"scenarios\": {},\n",
            "  \"burst\": {},\n",
            "  \"server\": {{\"queries\":{},\"queue_high_water\":{},\"rejected\":{}}},\n",
            "  \"server_stages\": {},\n",
            "  \"server_cost\": {},\n",
            "  \"slo\": {},\n",
            "  \"clean_shutdown\": {}\n",
            "}}\n"
        ),
        args.addr,
        args.connections,
        stream.len(),
        args.qps,
        qps,
        wall_secs,
        hist.mean_ns() / 1e3,
        hist.quantile_ns(0.50) / 1e3,
        hist.quantile_ns(0.95) / 1e3,
        hist.quantile_ns(0.99) / 1e3,
        ok,
        rejected_429,
        other,
        expected.is_some(),
        mismatches,
        scenarios_json,
        burst_json,
        server_queries,
        server_high_water,
        server_rejected,
        server_stages_json,
        server_cost_json,
        slo_json.trim(),
        clean_shutdown,
    );
    let out = std::env::var("EDGE_BENCH_OUT").unwrap_or_else(|_| "BENCH_edge.json".into());
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("wrote {out}");
}
