//! **Figure 10**: index space (a) and preprocessing time (b) vs `n`.
//!
//! Builds AH, CH and (on feasible sizes) SILC for every selected dataset
//! and reports index bytes and wall-clock construction seconds. Shapes to
//! compare with the paper: SILC grows super-linearly in both space and
//! time and falls off the chart early; AH grows linearly with a moderate
//! constant; CH is cheapest in both dimensions.

use ah_bench::{load_dataset, print_records, record, silc_feasible, time_once, HarnessArgs};
use ah_ch::ChIndex;
use ah_core::AhIndex;
use ah_silc::SilcIndex;

fn main() {
    let args = HarnessArgs::parse();
    let mut records = Vec::new();
    println!("dataset\tn\tAH MB\tAH s\tCH MB\tCH s\tSILC MB\tSILC s");
    for spec in args.datasets() {
        let ds = load_dataset(spec, 0, args.seed);
        let g = &ds.graph;
        let n = g.num_nodes();
        eprintln!("[fig10] {} (n = {n}) …", spec.name);
        let (ah, ah_secs) = time_once(|| AhIndex::build(g, &Default::default()));
        let ah_mb = ah.size_bytes() as f64 / (1024.0 * 1024.0);
        drop(ah);
        let (ch, ch_secs) = time_once(|| ChIndex::build(g));
        let ch_mb = ch.size_bytes() as f64 / (1024.0 * 1024.0);
        drop(ch);
        let silc = silc_feasible(n).then(|| time_once(|| SilcIndex::build_parallel(g, 2)));
        let silc_cols = match &silc {
            Some((idx, secs)) => {
                let mb = idx.size_bytes() as f64 / (1024.0 * 1024.0);
                records.push(record(spec, n, "SILC", 0, mb, "MB"));
                records.push(record(spec, n, "SILC", 0, *secs, "s"));
                format!("{mb:.2}\t{secs:.2}")
            }
            None => "-\t-".to_string(),
        };
        println!(
            "{}\t{}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{}",
            spec.name, n, ah_mb, ah_secs, ch_mb, ch_secs, silc_cols
        );
        records.push(record(spec, n, "AH", 0, ah_mb, "MB"));
        records.push(record(spec, n, "AH", 0, ah_secs, "s"));
        records.push(record(spec, n, "CH", 0, ch_mb, "MB"));
        records.push(record(spec, n, "CH", 0, ch_secs, "s"));
    }
    print_records("Figure 10: space overhead and preprocessing time", &records);
}
