//! **Figure 3**: arterial dimensions of road networks.
//!
//! For each dataset, imposes every grid resolution `R_1..R_h` and reports
//! the mean / 90% / 99% / max number of (pseudo-)arterial edges per
//! non-empty (4×4)-cell region — the empirical basis of Assumption 1.
//! The paper's series run over resolutions `r ∈ [3, 17]` on eight US
//! networks; shapes to compare: flat-ish curves, max below ~100, mean
//! below ~22.

use ah_arterial::measure_arterial_dimension;
use ah_bench::{load_dataset, print_records, record, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let mut records = Vec::new();
    for spec in args.datasets() {
        let ds = load_dataset(spec, 0, args.seed);
        let n = ds.graph.num_nodes();
        eprintln!("[fig3] {} (n = {n}) …", spec.name);
        let stats = measure_arterial_dimension(&ds.graph, &Default::default());
        println!("\n{} (n = {n}): arterial edges per (4x4)-cell region", spec.name);
        println!("r\tregions\tmean\tq90\tq99\tmax");
        for st in &stats {
            println!(
                "{}\t{}\t{:.2}\t{}\t{}\t{}",
                st.r, st.regions, st.mean, st.q90, st.q99, st.max
            );
            for (metric, value) in [
                ("mean", st.mean),
                ("q90", st.q90 as f64),
                ("q99", st.q99 as f64),
                ("max", st.max as f64),
            ] {
                records.push(record(
                    spec,
                    n,
                    &format!("arterial-{metric}"),
                    st.r,
                    value,
                    "edges/region",
                ));
            }
        }
    }
    print_records("Figure 3: arterial dimension vs grid resolution", &records);
}
