//! **Figure 8**: distance-query efficiency vs query set.
//!
//! For each dataset and each query set `Q1..Q10` (distance-stratified
//! pairs), reports the average time per *distance* query for AH, CH, SILC
//! (small datasets only) and plain Dijkstra. Shapes to compare with the
//! paper: AH flattest and fastest on long-range sets (Q8–Q10, where it
//! beats CH by ≥ 50%), Dijkstra worst everywhere and exploding with
//! distance; SILC between CH and Dijkstra, only measurable on small inputs.

use ah_bench::{
    load_dataset, obtain_indices, print_records, record, silc_feasible, time_query_set,
    HarnessArgs,
};
use ah_core::AhQuery;
use ah_ch::ChQuery;
use ah_silc::{SilcIndex, SilcQuery};

fn main() {
    let args = HarnessArgs::parse();
    let mut records = Vec::new();
    for spec in args.datasets() {
        let ds = load_dataset(spec, args.pairs, args.seed);
        let g = &ds.graph;
        let n = g.num_nodes();
        eprintln!("[fig8] {} (n = {n}): obtaining indices …", spec.name);
        let idx = obtain_indices(&args, spec, g, "fig8");
        let (ah, ch, ah_secs) = (idx.ah, idx.ch, idx.ah_secs);
        let silc = silc_feasible(n).then(|| SilcIndex::build_parallel(g, 2));
        eprintln!("[fig8] {}: AH ready in {ah_secs:.1}s; running queries …", spec.name);

        let mut ahq = AhQuery::new();
        let mut chq = ChQuery::new();
        let mut silcq = SilcQuery::new();
        let mut dijkstra = ah_search::DijkstraDriver::new();

        println!("\n{} (n = {n}): distance query time (us/query)", spec.name);
        println!("set\tpairs\tAH\tCH\tSILC\tDijkstra");
        for set in &ds.query_sets {
            if set.pairs.is_empty() {
                println!("Q{}\t0\t-\t-\t-\t-", set.index);
                continue;
            }
            let ah_us = time_query_set(&set.pairs, |s, t| ahq.distance(&ah, s, t).unwrap_or(0));
            let ch_us = time_query_set(&set.pairs, |s, t| chq.distance(&ch, s, t).unwrap_or(0));
            let silc_us = silc.as_ref().map(|idx| {
                time_query_set(&set.pairs, |s, t| silcq.distance(g, idx, s, t).unwrap_or(0))
            });
            let dij_us = time_query_set(&set.pairs, |s, t| {
                use ah_search::{SearchOptions, SearchOutcome};
                match dijkstra.run(
                    g,
                    s,
                    &SearchOptions {
                        target: Some(t),
                        ..Default::default()
                    },
                    |_| true,
                ) {
                    SearchOutcome::TargetReached(d) => d.length,
                    _ => 0,
                }
            });
            println!(
                "Q{}\t{}\t{:.1}\t{:.1}\t{}\t{:.1}",
                set.index,
                set.pairs.len(),
                ah_us,
                ch_us,
                silc_us.map_or("-".into(), |v| format!("{v:.1}")),
                dij_us
            );
            records.push(record(spec, n, "AH", set.index, ah_us, "us/query"));
            records.push(record(spec, n, "CH", set.index, ch_us, "us/query"));
            if let Some(v) = silc_us {
                records.push(record(spec, n, "SILC", set.index, v, "us/query"));
            }
            records.push(record(spec, n, "Dijkstra", set.index, dij_us, "us/query"));
        }
    }
    print_records("Figure 8: distance queries", &records);
}
