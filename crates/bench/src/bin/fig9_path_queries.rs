//! **Figure 9**: shortest-path-query efficiency vs query set.
//!
//! Same setup as Figure 8, but every query retrieves the full path.
//! Shapes to compare with the paper: every hierarchical method pays the
//! O(k) unpacking surcharge over its distance time (so Q10 costs more than
//! in Figure 8); SILC and Dijkstra match their Figure 8 numbers since they
//! compute paths anyway; AH stays fastest overall.

use ah_bench::{
    load_dataset, obtain_indices, print_records, record, silc_feasible, time_query_set,
    HarnessArgs,
};
use ah_core::AhQuery;
use ah_ch::ChQuery;
use ah_silc::{SilcIndex, SilcQuery};

fn main() {
    let args = HarnessArgs::parse();
    let mut records = Vec::new();
    for spec in args.datasets() {
        let ds = load_dataset(spec, args.pairs, args.seed);
        let g = &ds.graph;
        let n = g.num_nodes();
        eprintln!("[fig9] {} (n = {n}): obtaining indices …", spec.name);
        let idx = obtain_indices(&args, spec, g, "fig9");
        let (ah, ch) = (idx.ah, idx.ch);
        let silc = silc_feasible(n).then(|| SilcIndex::build_parallel(g, 2));

        let mut ahq = AhQuery::new();
        let mut chq = ChQuery::new();
        let mut silcq = SilcQuery::new();

        println!("\n{} (n = {n}): shortest path query time (us/query)", spec.name);
        println!("set\tpairs\tAH\tCH\tSILC\tDijkstra");
        for set in &ds.query_sets {
            if set.pairs.is_empty() {
                println!("Q{}\t0\t-\t-\t-\t-", set.index);
                continue;
            }
            let ah_us = time_query_set(&set.pairs, |s, t| {
                ahq.path(&ah, s, t).map_or(0, |p| p.nodes.len() as u64)
            });
            let ch_us = time_query_set(&set.pairs, |s, t| {
                chq.path(&ch, s, t).map_or(0, |p| p.nodes.len() as u64)
            });
            let silc_us = silc.as_ref().map(|idx| {
                time_query_set(&set.pairs, |s, t| {
                    silcq.path(g, idx, s, t).map_or(0, |p| p.nodes.len() as u64)
                })
            });
            let dij_us = time_query_set(&set.pairs, |s, t| {
                ah_search::dijkstra_path(g, s, t).map_or(0, |p| p.nodes.len() as u64)
            });
            println!(
                "Q{}\t{}\t{:.1}\t{:.1}\t{}\t{:.1}",
                set.index,
                set.pairs.len(),
                ah_us,
                ch_us,
                silc_us.map_or("-".into(), |v| format!("{v:.1}")),
                dij_us
            );
            records.push(record(spec, n, "AH", set.index, ah_us, "us/query"));
            records.push(record(spec, n, "CH", set.index, ch_us, "us/query"));
            if let Some(v) = silc_us {
                records.push(record(spec, n, "SILC", set.index, v, "us/query"));
            }
            records.push(record(spec, n, "Dijkstra", set.index, dij_us, "us/query"));
        }
    }
    print_records("Figure 9: shortest path queries", &records);
}
