//! Cut a weight delta against a dataset's road network and persist it
//! for the live-reload pipeline — the producer side of
//! `serve_edge --allow-reload`.
//!
//! ```sh
//! # a snapshot of the base network (what serve_edge serves)
//! cargo run --release -p ah_bench --bin serve_edge -- \
//!     --through S1 --save-index idx.snap
//! # a delta against it: 8 re-weights/closures, plus the fully rebuilt
//! # patched snapshot for post-swap identity checking
//! cargo run --release -p ah_bench --bin make_delta -- \
//!     --through S1 --changes 8 --out delta.snap --patched patched.snap
//! # serve, then swap under load:
//! #   curl -X POST 'http://…/admin/reload-delta?path=delta.snap'
//! # and verify: edge_throughput --check-index patched.snap
//! ```
//!
//! `--rounds N` chains N churn rounds (each cut against the previous
//! round's patched graph) and composes them into the single delta the
//! file carries — the shape a batched feed of traffic updates takes.
//! `--closures F` sets the fraction of changes that close the road
//! outright. The plan is deterministic in `--seed`.

use ah_bench::HarnessArgs;
use ah_core::AhIndex;
use ah_store::{Snapshot, SnapshotContents};
use ah_workload::WeightChurn;

struct DeltaArgs {
    harness: HarnessArgs,
    rounds: usize,
    changes: usize,
    closures: f64,
    seed: u64,
    out: String,
    patched: Option<String>,
}

fn parse_args() -> DeltaArgs {
    let mut a = DeltaArgs {
        harness: HarnessArgs {
            through: 1,
            ..Default::default()
        },
        rounds: 1,
        changes: 8,
        closures: 0.2,
        seed: 7,
        out: "delta.snap".to_string(),
        patched: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if a.harness.accept(&arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--rounds" => {
                a.rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--rounds needs a positive number");
            }
            "--changes" => {
                a.changes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--changes needs a positive number");
            }
            "--closures" => {
                a.closures = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--closures needs a fraction 0.0..=1.0");
            }
            "--seed" => {
                a.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => a.out = it.next().expect("--out needs a path"),
            "--patched" => a.patched = Some(it.next().expect("--patched needs a path")),
            other => panic!(
                "unknown argument {other} (try --through SN | --rounds N | --changes N | \
                 --closures F | --seed N | --out PATH | --patched PATH)"
            ),
        }
    }
    a
}

fn main() {
    let args = parse_args();
    let spec = *args.harness.datasets().last().expect("registry non-empty");

    eprintln!("[make_delta] building {} road network …", spec.name);
    let g = spec.build();

    let churn = WeightChurn {
        rounds: args.rounds,
        changes_per_round: args.changes,
        closure_fraction: args.closures,
        seed: args.seed,
    };
    let plan = churn.plan(&g, 0);
    assert!(!plan.rounds.is_empty(), "churn produced no rounds");
    let delta = plan
        .rounds
        .iter()
        .skip(1)
        .fold(plan.rounds[0].delta.clone(), |acc, r| acc.compose(&r.delta));
    let patched = delta.apply(&g).expect("composed delta applies to base");
    assert_eq!(
        patched.graph.content_id(),
        plan.final_graph.content_id(),
        "composed delta must equal the chained rounds"
    );

    let bytes = Snapshot::write(&args.out, SnapshotContents::new().graph(&g).delta(&delta))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!(
        "[make_delta] {}: {} changes ({} closures, {} nodes touched) → {} ({bytes} bytes)",
        spec.name,
        delta.len(),
        plan.closures(),
        patched.touched.len(),
        args.out,
    );

    let mut patched_bytes = 0;
    if let Some(path) = &args.patched {
        eprintln!("[make_delta] rebuilding patched index from scratch …");
        let idx = AhIndex::build(&patched.graph, &Default::default());
        patched_bytes = Snapshot::write(
            path,
            SnapshotContents::new().graph(&patched.graph).ah(&idx),
        )
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[make_delta] patched snapshot → {path} ({patched_bytes} bytes)");
    }

    println!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"make_delta\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"base_id\": \"{:#018x}\",\n",
            "  \"patched_id\": \"{:#018x}\",\n",
            "  \"rounds\": {},\n",
            "  \"changes\": {},\n",
            "  \"closures\": {},\n",
            "  \"touched_nodes\": {},\n",
            "  \"delta_file\": \"{}\",\n",
            "  \"delta_bytes\": {},\n",
            "  \"patched_bytes\": {}\n",
            "}}"
        ),
        spec.name,
        delta.base_id(),
        patched.graph.content_id(),
        args.rounds,
        delta.len(),
        plan.closures(),
        patched.touched.len(),
        args.out,
        bytes,
        patched_bytes,
    );
}
