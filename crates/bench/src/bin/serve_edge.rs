//! **The open service**: load (or build) an index and serve it over
//! HTTP on a real socket — the ROADMAP's "closed-loop harness → open
//! service" step, wiring `ah_net::EdgeServer` in front of
//! `ah_server::Server::serve_queue`.
//!
//! ```sh
//! # one-time: persist the indexes (serve_throughput does it too)
//! cargo run --release -p ah_bench --bin serve_edge -- \
//!     --through S1 --save-index idx.snap
//! # serve restarts skip the build entirely
//! cargo run --release -p ah_bench --bin serve_edge -- \
//!     --through S1 --load-index idx.snap --addr 127.0.0.1:8080 --workers 4
//! # then:  curl 'http://127.0.0.1:8080/v1/distance?src=17&dst=910'
//! ```
//!
//! `--backend labels` serves distances from the hub-labeling index
//! (`ah_labels`; built from the CH order, or loaded from the snapshot's
//! `labels` section when present) with `/v1/path` delegated to AH —
//! answers stay bit-equal to the default AH backend. `--shards K`
//! serves through the region-sharded index
//! (`ah_shard::ShardedQuery` composition — answers stay bit-equal to
//! the global AH index). `--queue N` sets the admission window: bursts
//! beyond it are answered `429 Too Many Requests` with a `Retry-After`
//! hint (see `docs/EDGE.md`). `--slow-us N` injects a per-query delay
//! (fault injection for overload rehearsal — this is what the CI smoke
//! uses to make 429s deterministic). `--allow-shutdown` exposes
//! `GET /admin/shutdown` for supervised drains. `--allow-reload`
//! (AH backend, unsharded) arms `POST /admin/reload-delta?path=…`: the
//! delta snapshot at `path` (see `make_delta`) is applied to the live
//! graph and the rebuilt index is published atomically mid-traffic —
//! 202 on acceptance, 409 on a stale or concurrent reload, zero
//! downtime, with `ah_reload_*` metrics in `/metrics` and a `reload`
//! block in the exit report. `--trace-sample N`
//! samples one request in N into the span ring behind
//! `GET /debug/traces` (default 64; 0 disables tracing), and
//! `--slow-query-us N` turns on the slow-query log for sampled spans
//! at or above that total (see `docs/OBSERVABILITY.md`).
//! `--slo-p99-us N` / `--slo-error-pct P` arm the SLO policy behind
//! `GET /readyz` (degrades 200→503 with a JSON reason while the
//! fast-window burn rate or p99 violates the objective, recovers as
//! the window slides) and `GET /debug/slo` (both windows, burn rates,
//! the policy); without either flag `/readyz` always answers 200.
//!
//! On shutdown the bin prints a JSON report (edge counters, admission
//! stats, serving latency quantiles, and the tracer's per-stage
//! latency breakdown) to stdout and, when the `EDGE_SERVE_OUT`
//! environment variable is set, to that file.

use std::sync::Arc;
use std::time::Duration;

use ah_bench::{obtain_indices, snapshot_path, HarnessArgs};
use ah_net::{EdgeConfig, EdgeServer, ReloadHandler};
use ah_server::{
    now_ns, AhBackend, DelayBackend, DeltaReloader, DistanceBackend, LabelBackend, Server,
    ServerConfig, ShardedBackend, SloPolicy, SnapshotBackend, SnapshotServer, TraceConfig,
};

struct EdgeArgs {
    harness: HarnessArgs,
    addr: String,
    workers: usize,
    queue: usize,
    max_conns: usize,
    slow_us: u64,
    retry_after: u32,
    allow_shutdown: bool,
    allow_reload: bool,
    backend: String,
    trace_sample: u64,
    slow_query_us: u64,
    slo_p99_us: u64,
    slo_error_pct: f64,
}

impl EdgeArgs {
    /// The SLO policy the edge's `/readyz` and `/debug/slo` evaluate;
    /// inactive (always ready) unless at least one objective flag was
    /// given.
    fn slo_policy(&self) -> SloPolicy {
        SloPolicy {
            p99_target_ns: self.slo_p99_us.saturating_mul(1000),
            error_budget: self.slo_error_pct / 100.0,
            ..Default::default()
        }
    }
}

fn parse_args() -> EdgeArgs {
    let mut a = EdgeArgs {
        harness: HarnessArgs {
            through: 1, // S1 by default: builds in seconds, realistic enough
            ..Default::default()
        },
        addr: "127.0.0.1:8080".to_string(),
        workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
        queue: 1024,
        max_conns: 1024,
        slow_us: 0,
        retry_after: 1,
        allow_shutdown: false,
        allow_reload: false,
        backend: "ah".to_string(),
        trace_sample: 64,
        slow_query_us: 0,
        slo_p99_us: 0,
        slo_error_pct: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        // Dataset/index selection is the shared harness vocabulary
        // (--through, --shards, --save-index, --load-index, …).
        if a.harness.accept(&arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--addr" => a.addr = it.next().expect("--addr needs host:port"),
            "--workers" => {
                a.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--workers needs a positive number");
            }
            "--queue" => {
                a.queue = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queue needs a number");
            }
            "--max-conns" => {
                a.max_conns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-conns needs a number");
            }
            "--slow-us" => {
                a.slow_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slow-us needs microseconds");
            }
            "--retry-after" => {
                a.retry_after = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--retry-after needs seconds");
            }
            "--allow-shutdown" => a.allow_shutdown = true,
            "--allow-reload" => a.allow_reload = true,
            "--trace-sample" => {
                a.trace_sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace-sample needs a number (0 disables tracing)");
            }
            "--slow-query-us" => {
                a.slow_query_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slow-query-us needs microseconds");
            }
            "--slo-p99-us" => {
                a.slo_p99_us = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--slo-p99-us needs microseconds (0 disables the latency objective)");
            }
            "--slo-error-pct" => {
                a.slo_error_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&p: &f64| (0.0..=100.0).contains(&p))
                    .expect("--slo-error-pct needs a percentage in [0, 100]");
            }
            "--backend" => {
                a.backend = it.next().expect("--backend needs ah|labels");
                assert!(
                    matches!(a.backend.as_str(), "ah" | "labels"),
                    "--backend must be ah or labels (got {})",
                    a.backend
                );
            }
            other => panic!(
                "unknown argument {other} (try --through SN | --shards K | \
                 --backend ah|labels | --load-index PATH | --save-index PATH | \
                 --addr HOST:PORT | --workers N | --queue N | --max-conns N | \
                 --slow-us N | --retry-after N | --allow-shutdown | --allow-reload | \
                 --trace-sample N | --slow-query-us N | --slo-p99-us N | \
                 --slo-error-pct P)"
            ),
        }
    }
    assert!(
        !(a.backend == "labels" && a.harness.shards > 0),
        "--backend labels and --shards are mutually exclusive"
    );
    assert!(
        !(a.allow_reload && (a.backend != "ah" || a.harness.shards > 0)),
        "--allow-reload rebuilds the plain AH index; combine it with the \
         default backend (no --backend labels, no --shards)"
    );
    // The labels backend needs the labeling obtained alongside AH.
    a.harness.labels |= a.backend == "labels";
    a
}

fn main() {
    let args = parse_args();
    let spec = *args.harness.datasets().last().expect("registry non-empty");

    eprintln!("[edge] building {} road network …", spec.name);
    let g = spec.build();
    let idx = obtain_indices(&args.harness, &spec, &g, "edge");
    if let (Some(base), None) = (&args.harness.save_index, &args.harness.load_index) {
        eprintln!(
            "[edge] snapshot saved; restart with --load-index {} to skip the build",
            snapshot_path(base, spec.name).display()
        );
    }

    let server = Server::new(ServerConfig {
        workers: args.workers,
        trace: TraceConfig {
            sample_every: args.trace_sample,
            slow_threshold_ns: args.slow_query_us.saturating_mul(1000),
            ..Default::default()
        },
        ..Default::default()
    });
    // The serving engine and the published index live together in a
    // SnapshotServer so `--allow-reload` can swap the index under live
    // traffic; without the flag it is just a holder.
    let ah = Arc::clone(&idx.ah);
    let snap = Arc::new(SnapshotServer::with_server(Arc::clone(&ah), server));
    let server = snap.server();
    let reloader = args
        .allow_reload
        .then(|| Arc::new(DeltaReloader::new(Arc::clone(&snap), g.clone(), Default::default())));
    if let Some(r) = &reloader {
        r.register_into(server.registry(), &[]);
    }

    // Pick the backend: hub labels under --backend labels, sharded
    // composition when requested, the swap-following snapshot backend
    // under --allow-reload, global AH otherwise; optionally slowed for
    // overload rehearsal.
    let ah_backend = AhBackend::new(&ah);
    let snapshot_backend = SnapshotBackend::new(&snap);
    let sharded = idx.sharded.clone();
    let sharded_backend = sharded.as_deref().map(ShardedBackend::new);
    let labels = idx.labels.clone();
    let label_backend = (args.backend == "labels").then(|| {
        LabelBackend::new(labels.as_deref().expect("labels obtained for --backend labels"), &ah)
    });
    let inner: &dyn DistanceBackend = match (&label_backend, &sharded_backend) {
        (Some(b), _) => b,
        (None, Some(b)) => b,
        (None, None) if args.allow_reload => &snapshot_backend,
        (None, None) => &ah_backend,
    };
    let delayed;
    let backend: &dyn DistanceBackend = if args.slow_us > 0 {
        delayed = DelayBackend::new(inner, Duration::from_micros(args.slow_us));
        &delayed
    } else {
        inner
    };
    let edge = EdgeServer::bind(
        args.addr.as_str(),
        EdgeConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            max_connections: args.max_conns,
            retry_after_secs: args.retry_after,
            allow_shutdown: args.allow_shutdown,
            slo: args.slo_policy(),
            ..Default::default()
        },
    )
    .unwrap_or_else(|e| panic!("cannot bind {}: {e}", args.addr));
    let addr = edge.local_addr().expect("local_addr");
    println!(
        "serve_edge listening on {addr} ({}, {} nodes, {} workers, queue {}{}{})",
        backend.name(),
        backend.num_nodes(),
        args.workers,
        args.queue,
        if args.slow_us > 0 {
            format!(", +{}us/query", args.slow_us)
        } else {
            String::new()
        },
        if args.allow_shutdown {
            ", admin shutdown on"
        } else {
            ""
        },
    );
    if args.allow_reload {
        println!("admin reload on: POST /admin/reload-delta?path=DELTA.snap");
    }

    let handler: Option<&dyn ReloadHandler> =
        reloader.as_ref().map(|r| r as &dyn ReloadHandler);
    let report = edge
        .serve_with_admin(server, backend, handler)
        .expect("edge event loop");

    let snapshot = server.metrics().snapshot(0.0);
    let responses = report
        .responses_by_status
        .iter()
        .map(|(s, n)| format!("\"{s}\":{n}"))
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serve_edge\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"backend\": \"{}\",\n",
            "  \"addr\": \"{}\",\n",
            "  \"poller\": \"{}\",\n",
            "  \"workers\": {},\n",
            "  \"queue_capacity\": {},\n",
            "  \"index_loaded\": {},\n",
            "  \"connections\": {},\n",
            "  \"shed_connections\": {},\n",
            "  \"timeouts\": {},\n",
            "  \"bytes_in\": {},\n",
            "  \"bytes_out\": {},\n",
            "  \"rejected\": {},\n",
            "  \"queue_high_water\": {},\n",
            "  \"responses\": {{{}}},\n",
            "  \"reload\": {{\"enabled\":{},\"swaps\":{},\"failures\":{},\"generation\":{}}},\n",
            "  \"serving\": {},\n",
            "  \"slo\": {},\n",
            "  \"trace\": {{\"sample_every\":{},\"spans_finished\":{},\"slow\":{}}},\n",
            "  \"stage_breakdown\": {}\n",
            "}}\n"
        ),
        spec.name,
        backend.name(),
        addr,
        report.poller,
        args.workers,
        args.queue,
        idx.loaded,
        report.connections,
        report.shed_connections,
        report.timeouts,
        report.bytes_in,
        report.bytes_out,
        report.rejected,
        report.queue_high_water,
        responses,
        args.allow_reload,
        reloader.as_ref().map_or(0, |r| r.swaps()),
        reloader.as_ref().map_or(0, |r| r.failures()),
        snap.generation(),
        snapshot.to_json(),
        args.slo_policy()
            .evaluate(server.slo_windows(), now_ns())
            .to_json(),
        args.trace_sample,
        server.tracer().spans_finished(),
        server.tracer().slow_finished(),
        server.tracer().stage_breakdown_json(),
    );
    println!("serve_edge drained cleanly; report:\n{json}");
    if let Ok(path) = std::env::var("EDGE_SERVE_OUT") {
        std::fs::write(&path, &json).expect("write EDGE_SERVE_OUT");
        println!("wrote {path}");
    }
}
