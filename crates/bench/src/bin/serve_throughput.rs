//! **Serving benchmark**: concurrent query throughput vs worker count.
//!
//! Where the figure binaries measure one query at a time, this harness
//! drives the `ah_server` worker pool with an interleaved, cache-friendly
//! request stream over the paper's Q1–Q10 sets and reports aggregate QPS
//! and latency quantiles:
//!
//! * a *thread sweep* of the AH backend (1, 2, 4, … up to `--threads`,
//!   each from a cold cache, same stream), and
//! * a *backend comparison* (AH vs CH vs bidirectional Dijkstra vs hub
//!   labels) at the full thread count. Every comparison row carries the
//!   backend's direct single-session `query_ns` on the same mix plus
//!   per-scenario costs on the POI wire contract's default set —
//!   `via_ns`, `knn_ns` and `matrix8x8_ns` (see `docs/SCENARIOS.md`) —
//!   and the `labels` row additionally reports label shape and build
//!   cost (`avg_label_entries`, `bytes_per_node`, `build_secs`). Every
//!   row also carries `cost_per_query` — the run's drained algorithmic
//!   cost (nodes settled, edges relaxed, label entries merged, …)
//!   averaged per request, the paper's search-space axis next to the
//!   wall-clock one.
//!
//! Results go to stdout and, machine-readably, to `BENCH_server.json`
//! (override the path with the `SERVE_BENCH_OUT` environment variable) so
//! CI can archive the serving-perf trajectory. JSON is hand-rolled
//! because the workspace's serde is an offline stub.
//!
//! `--save-index PATH` persists the built indexes as an `ah_store`
//! snapshot (see `docs/FORMAT.md`); a later run with `--load-index PATH`
//! reloads them and skips the build entirely — the JSON then reports
//! `index_loaded: true` with a near-zero `ah_build_secs`.
//!
//! `--trace-sample N` sets the span sampling rate for every measured
//! server (default 64; 0 disables tracing). Unless disabled, the bin
//! also runs a tracing-overhead A/B — the same AH stream with sampling
//! off versus 1-in-N — and records it under the JSON's
//! `"trace_overhead"` key together with the traced run's per-stage
//! latency breakdown (`"stage_breakdown"`). `--assert-trace-overhead`
//! turns the measurement into a hard gate: the bin panics if tracing
//! costs 5% QPS or more (see `docs/OBSERVABILITY.md`). A second A/B
//! measures cost accounting the same way — per-request drain gated off
//! versus fully enabled, under `"cost_overhead"` — and
//! `--assert-cost-overhead` gates it at 2%.
//!
//! `--shards K` additionally builds (or loads) a region-sharded index
//! (`ah_shard`) and serves the same stream through a `ShardedServer` —
//! per-shard worker pools, cross-shard composition — asserting the
//! answers bit-equal the unsharded AH run and recording per-shard and
//! cross-shard stats under the JSON's `"sharded"` key (`null` when
//! disabled). See `docs/SHARDING.md`.
//!
//! ```sh
//! cargo run --release -p ah_bench --bin serve_throughput -- \
//!     --through S2 --pairs 100 --threads 4 --save-index idx.snap
//! cargo run --release -p ah_bench --bin serve_throughput -- \
//!     --through S2 --pairs 100 --threads 4 --load-index idx.snap
//! ```

use std::sync::Arc;

use ah_bench::{load_dataset, obtain_indices, time_once, time_query_set, HarnessArgs};
use ah_server::{
    AhBackend, ChBackend, CostCounters, DeltaReloader, DijkstraBackend, DistanceBackend,
    LabelBackend, PoiSet, Request, RunReport, Server, ServerConfig, ShardedRunReport,
    ShardedServer, ShardedServerConfig, SnapshotServer, TraceConfig, COST_FIELD_NAMES,
    POI_CATEGORIES,
};
use ah_shard::ShardConfig;
use ah_workload::{TrafficSchedule, WeightChurn};

/// Locality knob for the generated traffic (fraction of repeated pairs).
const REPEAT_FRACTION: f64 = 0.25;

/// One measured configuration, rendered into the JSON report.
struct Row {
    backend: &'static str,
    threads: usize,
    report: RunReport,
    /// Total algorithmic cost drained during the reported run (summed
    /// over kinds) — the source of the comparison rows' `cost_per_query`.
    cost: CostCounters,
    /// Extra JSON fields (each starting with a comma), appended after
    /// the snapshot — the backend comparison uses this for `query_ns`
    /// and the labels row's shape/build stats.
    extra: String,
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"threads\":{},\"snapshot\":{}{}}}",
            self.backend,
            self.threads,
            self.report.snapshot.to_json(),
            self.extra
        )
    }
}

/// 1, 2, 4, … capped at `max`, with `max` itself always included.
fn thread_sweep(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut t = 1;
    while t < max {
        v.push(t);
        t *= 2;
    }
    v.push(max.max(1));
    v.dedup();
    v
}

/// Measured runs per configuration; the fastest is reported (the standard
/// way to strip scheduler noise from a throughput measurement).
const REPS: usize = 3;

/// Direct single-session per-query cost of the three scenario kernels
/// (via, knn, matrix) on the backend, in nanoseconds — the
/// scenario-level counterpart of the comparison rows' `query_ns`. Via
/// and knn are timed per query over `sample`; matrix per 8×8 table
/// over windows of it.
fn scenario_times(
    backend: &dyn DistanceBackend,
    pois: &PoiSet,
    sample: &[(u32, u32)],
) -> (f64, f64, f64) {
    let mut session = backend.make_session();
    let per_call = |elapsed: std::time::Duration, calls: usize| {
        elapsed.as_nanos() as f64 / calls.max(1) as f64
    };
    let t0 = std::time::Instant::now();
    for (i, &(s, t)) in sample.iter().enumerate() {
        let cat = (i as u32) % POI_CATEGORIES;
        std::hint::black_box(session.via(s, t, pois.category(cat)));
    }
    let via_ns = per_call(t0.elapsed(), sample.len());
    let t0 = std::time::Instant::now();
    for (i, &(s, _)) in sample.iter().enumerate() {
        let cat = (i as u32) % POI_CATEGORIES;
        std::hint::black_box(session.knn(s, pois.category(cat), 1 + i % 8));
    }
    let knn_ns = per_call(t0.elapsed(), sample.len());
    let windows: Vec<(Vec<u32>, Vec<u32>)> = sample
        .chunks(8)
        .map(|w| (w.iter().map(|p| p.0).collect(), w.iter().map(|p| p.1).collect()))
        .collect();
    let t0 = std::time::Instant::now();
    for (sources, targets) in &windows {
        std::hint::black_box(session.matrix(sources, targets));
    }
    let matrix_ns = per_call(t0.elapsed(), windows.len());
    (via_ns, knn_ns, matrix_ns)
}

fn run_one(
    backend: &dyn DistanceBackend,
    threads: usize,
    requests: &[Request],
    trace_sample: u64,
) -> Row {
    let (report, server) = (0..REPS)
        .map(|_| {
            // A fresh server per rep: every measurement starts cache-cold.
            let server = Server::new(ServerConfig {
                workers: threads,
                trace: TraceConfig {
                    sample_every: trace_sample,
                    ..Default::default()
                },
                ..Default::default()
            });
            let report = server.run(backend, requests);
            (report, server)
        })
        .max_by(|a, b| a.0.snapshot.qps.total_cmp(&b.0.snapshot.qps))
        .expect("REPS >= 1");
    Row {
        backend: backend.name(),
        threads,
        report,
        // Fresh server per rep, so the lifetime total is exactly the
        // reported run's total.
        cost: server.metrics().cost.total(),
        extra: String::new(),
    }
}

/// `{"settled_nodes":12.3, …}` — the run's total algorithmic cost
/// averaged per query, in the canonical cost-field order.
fn cost_per_query_json(total: &CostCounters, queries: usize) -> String {
    let per = |v: u64| v as f64 / queries.max(1) as f64;
    let fields = total
        .as_array()
        .iter()
        .zip(COST_FIELD_NAMES)
        .map(|(&v, name)| format!("\"{name}\":{:.2}", per(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{fields}}}")
}

/// Renders the sharded run (per-lane stats + cross-shard mix) as the
/// JSON `"sharded"` object.
fn sharded_to_json(
    sh: &ah_shard::ShardedIndex,
    report: &ShardedRunReport,
    workers_per_shard: usize,
    build_secs: f64,
) -> String {
    let stats = sh.stats();
    let lanes = report
        .lanes
        .iter()
        .map(|l| {
            format!(
                "{{\"shard\":{},\"requests\":{},\"snapshot\":{}}}",
                l.shard,
                l.requests,
                l.snapshot.to_json()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n      ");
    format!(
        concat!(
            "{{\n",
            "    \"shards\": {},\n",
            "    \"workers_per_shard\": {},\n",
            "    \"borders\": {},\n",
            "    \"certified\": {},\n",
            "    \"reentry_pairs\": {},\n",
            "    \"build_secs\": {:.3},\n",
            "    \"same_shard\": {},\n",
            "    \"cross_shard\": {},\n",
            "    \"cross_shard_fraction\": {:.4},\n",
            "    \"qps\": {:.1},\n",
            "    \"wall_secs\": {:.6},\n",
            "    \"lanes\": [\n      {}\n    ]\n",
            "  }}"
        ),
        stats.shards,
        workers_per_shard,
        stats.borders,
        stats.certified,
        stats.reentry_pairs,
        build_secs,
        report.same_shard,
        report.cross_shard,
        report.cross_shard_fraction(),
        report.qps(),
        report.wall_secs,
        lanes,
    )
}

fn print_row(r: &Row) {
    let s = &r.report.snapshot;
    println!(
        "{}\t{}\t{:.0}\t{:.1}\t{:.1}\t{:.1}\t{:.2}",
        r.backend, r.threads, s.qps, s.p50_us, s.p95_us, s.p99_us, s.cache_hit_rate
    );
}

fn main() {
    let mut args = HarnessArgs::default();
    let mut trace_sample: u64 = 64;
    let mut assert_trace_overhead = false;
    let mut assert_cost_overhead = false;
    let mut churn_rounds: usize = 2;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if args.accept(&arg, &mut it) {
            continue;
        }
        match arg.as_str() {
            "--trace-sample" => {
                trace_sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--trace-sample needs a number (0 disables tracing)");
            }
            "--assert-trace-overhead" => assert_trace_overhead = true,
            "--assert-cost-overhead" => assert_cost_overhead = true,
            "--churn" => {
                churn_rounds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--churn needs a number of reload rounds (0 disables)");
            }
            other => panic!(
                "unknown argument {other} (try --through S9 | --pairs N | --seed N | \
                 --threads N | --shards K | --labels | --save-index PATH | \
                 --load-index PATH | --trace-sample N | --assert-trace-overhead | \
                 --assert-cost-overhead | --churn N)"
            ),
        }
    }
    // The backend comparison always includes hub labels.
    args.labels = true;
    let spec = *args.datasets().last().expect("registry is non-empty");
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());

    eprintln!("[serve] loading {} and generating workload …", spec.name);
    let ds = load_dataset(&spec, args.pairs, args.seed);
    let n = ds.graph.num_nodes();
    let total_requests = (args.pairs * 20).max(200);
    let stream = TrafficSchedule::interactive(total_requests, REPEAT_FRACTION, args.seed)
        .generate(&ds.query_sets);
    assert!(!stream.is_empty(), "workload generation produced no requests");
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();
    // Scenario kernels are timed on a small distinct-pair sample of the
    // same mix, against the POI wire contract's default set.
    let pois = PoiSet::default_for(n);
    let scenario_sample: Vec<(u32, u32)> = {
        let mut sample = stream.clone();
        sample.sort_unstable();
        sample.dedup();
        sample.truncate(48);
        sample
    };

    eprintln!("[serve] {}: obtaining AH + CH indices …", spec.name);
    let idx = obtain_indices(&args, &spec, &ds.graph, "serve");
    let (ah, ch, ah_secs, ch_secs) = (idx.ah, idx.ch, idx.ah_secs, idx.ch_secs);
    let sharded = idx.sharded.clone();
    eprintln!(
        "[serve] ready (AH {ah_secs:.1}s, CH {ch_secs:.1}s, loaded: {}); serving {} requests …",
        idx.loaded,
        requests.len()
    );

    let labels = idx
        .labels
        .clone()
        .expect("serve_throughput always obtains labels");
    let ah_backend = AhBackend::new(&ah);
    let ch_backend = ChBackend::new(&ch);
    let dij_backend = DijkstraBackend::new(&ds.graph);
    let labels_backend = LabelBackend::new(&labels, &ah);

    println!(
        "\n{} (n = {n}): serving throughput, {} requests, repeat fraction {REPEAT_FRACTION}",
        spec.name,
        requests.len()
    );
    println!("backend\tthreads\tqps\tp50_us\tp95_us\tp99_us\thit_rate");

    // Unrecorded warmup so the first sweep point doesn't pay the
    // process's cold caches and allocator.
    let _ = run_one(&ah_backend, args.threads, &requests, trace_sample);

    // Thread sweep on the AH backend, cold cache each time.
    let mut sweep_rows = Vec::new();
    for &t in &thread_sweep(args.threads) {
        let row = run_one(&ah_backend, t, &requests, trace_sample);
        print_row(&row);
        sweep_rows.push(row);
    }
    let qps_1 = sweep_rows.first().map_or(0.0, |r| r.report.snapshot.qps);
    let qps_max = sweep_rows.last().map_or(0.0, |r| r.report.snapshot.qps);
    let speedup = if qps_1 > 0.0 { qps_max / qps_1 } else { 0.0 };

    // Backend comparison at full width. Each row also records the
    // direct single-session per-query cost on the same mix (no pool, no
    // cache), which is what "label query path vs AH distance path"
    // means at the engine level.
    let mut backend_rows = Vec::new();
    for backend in [
        &ah_backend as &dyn DistanceBackend,
        &ch_backend,
        &dij_backend,
        &labels_backend,
    ] {
        let mut row = run_one(backend, args.threads, &requests, trace_sample);
        let mut session = backend.make_session();
        let query_ns =
            time_query_set(&stream, |s, t| session.distance(s, t).unwrap_or(0)) * 1e3;
        drop(session);
        let (via_ns, knn_ns, matrix_ns) = scenario_times(backend, &pois, &scenario_sample);
        row.extra = format!(
            ",\"query_ns\":{query_ns:.1},\"via_ns\":{via_ns:.1},\"knn_ns\":{knn_ns:.1},\
             \"matrix8x8_ns\":{matrix_ns:.1},\"cost_per_query\":{}",
            cost_per_query_json(&row.cost, requests.len())
        );
        if backend.name() == "labels" {
            let st = labels.stats();
            row.extra.push_str(&format!(
                ",\"avg_label_entries\":{:.2},\"bytes_per_node\":{:.1},\"build_secs\":{:.3}",
                st.avg_label_entries,
                st.bytes as f64 / st.num_nodes.max(1) as f64,
                idx.labels_secs
            ));
        }
        print_row(&row);
        backend_rows.push(row);
    }

    // Sanity: every backend must serve identical distances, pair by pair
    // (responses are sorted by request id).
    let ah_responses = &backend_rows[0].report.responses;
    for row in &backend_rows[1..] {
        for (a, b) in ah_responses.iter().zip(&row.report.responses) {
            assert_eq!(
                (a.id, a.distance),
                (b.id, b.distance),
                "{} disagrees with AH on request {}",
                row.backend,
                a.id
            );
        }
    }
    println!(
        "\nspeedup {}→{} workers: {speedup:.2}x (hardware parallelism: {hardware})",
        sweep_rows.first().map_or(1, |r| r.threads),
        sweep_rows.last().map_or(1, |r| r.threads),
    );
    if hardware == 1 {
        eprintln!("[serve] WARNING: single-core machine — thread scaling cannot exceed 1x here");
    }

    // Tracing overhead A/B: the same AH stream at full width with
    // sampling off versus 1-in-`trace_sample`, best-of-REPS on both
    // sides. The traced side also yields the per-stage latency
    // breakdown that goes into the JSON report.
    let (trace_overhead_json, stage_breakdown_json) = if trace_sample == 0 {
        ("null".to_string(), "null".to_string())
    } else {
        let qps_off = run_one(&ah_backend, args.threads, &requests, 0)
            .report
            .snapshot
            .qps;
        let (traced_report, traced_server) = (0..REPS)
            .map(|_| {
                let server = Server::new(ServerConfig {
                    workers: args.threads,
                    trace: TraceConfig {
                        sample_every: trace_sample,
                        ..Default::default()
                    },
                    ..Default::default()
                });
                let report = server.run(&ah_backend, &requests);
                (report, server)
            })
            .max_by(|a, b| a.0.snapshot.qps.total_cmp(&b.0.snapshot.qps))
            .expect("REPS >= 1");
        let qps_on = traced_report.snapshot.qps;
        let overhead_pct = if qps_off > 0.0 {
            100.0 * (qps_off - qps_on) / qps_off
        } else {
            0.0
        };
        println!(
            "\ntracing overhead (1-in-{trace_sample}): {:.0} qps off, {:.0} qps on \
             ({overhead_pct:+.2}%, {} spans)",
            qps_off,
            qps_on,
            traced_server.tracer().spans_finished(),
        );
        if assert_trace_overhead {
            assert!(
                overhead_pct < 5.0,
                "tracing at 1-in-{trace_sample} costs {overhead_pct:.2}% QPS (budget: 5%)"
            );
        }
        (
            format!(
                "{{\"sample_every\":{trace_sample},\"qps_off\":{qps_off:.1},\
                 \"qps_on\":{qps_on:.1},\"overhead_pct\":{overhead_pct:.3},\
                 \"asserted\":{assert_trace_overhead}}}"
            ),
            traced_server.tracer().stage_breakdown_json(),
        )
    };

    // Cost-accounting overhead A/B: the same AH stream with the
    // per-request cost drain gated off (the kernels' plain counters
    // still run — "compiled in but unsampled") versus fully enabled.
    // Tracing is off on both sides so the measurement isolates the
    // cost path: one `take_cost` drain plus a handful of relaxed
    // atomic adds per request.
    let cost_overhead_json = {
        let run_once = |cost_accounting: bool| {
            let server = Server::new(ServerConfig {
                workers: args.threads,
                trace: TraceConfig {
                    sample_every: 0,
                    ..Default::default()
                },
                cost_accounting,
                ..Default::default()
            });
            server.run(&ah_backend, &requests).snapshot.qps
        };
        // Interleave the A/B reps (and discard one warmup run) so slow
        // drift — thermal, cache state — lands on both sides equally,
        // and alternate which side leads each pair so periodic
        // interference (cgroup throttling) cannot systematically tax
        // one side; back-to-back best-of-N would attribute all drift to
        // whichever side ran second.
        let _ = run_once(false);
        let mut qps_off = 0.0f64;
        let mut qps_on = 0.0f64;
        for rep in 0..REPS {
            for &side in if rep % 2 == 0 { &[false, true] } else { &[true, false] } {
                if side {
                    qps_on = qps_on.max(run_once(true));
                } else {
                    qps_off = qps_off.max(run_once(false));
                }
            }
        }
        let overhead_pct = if qps_off > 0.0 {
            100.0 * (qps_off - qps_on) / qps_off
        } else {
            0.0
        };
        println!(
            "\ncost-accounting overhead: {qps_off:.0} qps unsampled, {qps_on:.0} qps enabled \
             ({overhead_pct:+.2}%)"
        );
        if assert_cost_overhead {
            assert!(
                overhead_pct < 2.0,
                "cost accounting costs {overhead_pct:.2}% QPS (budget: 2%)"
            );
        }
        format!(
            "{{\"qps_off\":{qps_off:.1},\"qps_on\":{qps_on:.1},\
             \"overhead_pct\":{overhead_pct:.3},\"asserted\":{assert_cost_overhead}}}"
        )
    };

    // Sharded serving (--shards K): same stream, routed by region key
    // to per-shard pools; answers must stay bit-equal to unsharded AH.
    let sharded_json = match &sharded {
        None => "null".to_string(),
        Some(sh) => {
            let k = sh.num_shards();
            let workers_per_shard = (args.threads / k).max(1);
            let report = (0..REPS)
                .map(|_| {
                    // Fresh pools per rep: cold caches, like run_one.
                    let server = ShardedServer::new(
                        sh.clone(),
                        ShardedServerConfig::with_workers_per_shard(workers_per_shard),
                    );
                    server.run(&requests)
                })
                .max_by(|a, b| a.qps().total_cmp(&b.qps()))
                .expect("REPS >= 1");

            for (a, b) in ah_responses.iter().zip(&report.responses) {
                assert_eq!(
                    (a.id, a.distance),
                    (b.id, b.distance),
                    "sharded serving disagrees with AH on request {}",
                    a.id
                );
            }

            let stats = sh.stats();
            println!(
                "\nsharded serving: {k} shards × {workers_per_shard} workers, \
                 {} borders (certified: {}), {:.1}% cross-shard",
                stats.borders,
                stats.certified,
                100.0 * report.cross_shard_fraction()
            );
            println!("shard\trequests\tqps\tp50_us\tp99_us\thit_rate");
            for lane in &report.lanes {
                let s = &lane.snapshot;
                println!(
                    "{}\t{}\t{:.0}\t{:.1}\t{:.1}\t{:.2}",
                    lane.shard, lane.requests, s.qps, s.p50_us, s.p99_us, s.cache_hit_rate
                );
            }
            println!(
                "total\t{}\t{:.0}\t(unsharded AH at {} workers: {:.0} qps)",
                report.responses.len(),
                report.qps(),
                args.threads,
                backend_rows[0].report.snapshot.qps
            );
            sharded_to_json(sh, &report, workers_per_shard, idx.sharded_secs)
        }
    };

    // Live-update churn (--churn N): serve the same stream through a
    // swap-capable SnapshotServer, firing a delta reload at each planned
    // offset — the closed-loop rehearsal of `serve_edge --allow-reload`.
    // Mid-churn answers come from whichever generation is live;
    // post-churn answers are verified bit-equal to Dijkstra on the
    // plan's final graph.
    let reload_json = if churn_rounds == 0 {
        "null".to_string()
    } else {
        let plan = WeightChurn::interactive(churn_rounds, 8, args.seed)
            .plan(&ds.graph, requests.len());
        let snap = Arc::new(SnapshotServer::with_server(
            Arc::clone(&ah),
            Server::new(ServerConfig {
                workers: args.threads,
                ..Default::default()
            }),
        ));
        let reloader =
            DeltaReloader::new(Arc::clone(&snap), ds.graph.clone(), Default::default());
        let mut swap_secs: Vec<f64> = Vec::new();
        let mut staleness_secs: Vec<f64> = Vec::new();
        let mut served = 0usize;
        for round in &plan.rounds {
            let _ = snap.run(&requests[served..round.at]);
            served = round.at;
            let (out, secs) =
                time_once(|| reloader.reload(round.delta.clone()).expect("churn delta applies"));
            swap_secs.push(secs);
            staleness_secs.push(out.staleness_secs);
        }
        let tail_report = snap.run(&requests[served..]);
        let mut verified = 0usize;
        for resp in tail_report.responses.iter().take(50) {
            let (s, t) = stream[resp.id as usize];
            let want = ah_search::dijkstra_distance(&plan.final_graph, s, t).map(|d| d.length);
            assert_eq!(
                resp.distance, want,
                "post-churn answer for ({s}, {t}) diverges from the final graph"
            );
            verified += 1;
        }
        println!(
            "\nlive reload churn: {} rounds × {} changes ({} closures), \
             swaps {:?} s, {} post-churn answers verified",
            plan.rounds.len(),
            plan.rounds.first().map_or(0, |r| r.delta.len()),
            plan.closures(),
            swap_secs.iter().map(|s| (s * 1e3).round() / 1e3).collect::<Vec<_>>(),
            verified,
        );
        // Staggered per-shard refresh on the same churn, composed into
        // one delta: untouched lanes keep their index by pointer.
        let sharded_refresh = match &sharded {
            None => "null".to_string(),
            Some(sh) => {
                let composed = plan
                    .rounds
                    .iter()
                    .skip(1)
                    .fold(plan.rounds[0].delta.clone(), |acc, r| acc.compose(&r.delta));
                let cfg = ShardConfig {
                    shards: args.shards,
                    ..Default::default()
                };
                let server = ShardedServer::new(
                    sh.clone(),
                    ShardedServerConfig::with_workers_per_shard(
                        (args.threads / args.shards.max(1)).max(1),
                    ),
                );
                let (_, report) = server
                    .reload_delta(&ds.graph, &composed, &cfg)
                    .expect("composed churn delta applies to the sharded base");
                println!(
                    "sharded refresh: {} lanes rebuilt, {} reused, certified {}, {:.3} s",
                    report.rebuilt_shards.len(),
                    report.reused_shards,
                    report.certified,
                    report.wall_secs
                );
                format!(
                    "{{\"rebuilt_shards\":{:?},\"reused_shards\":{},\"certified\":{},\
                     \"wall_secs\":{:.4}}}",
                    report.rebuilt_shards,
                    report.reused_shards,
                    report.certified,
                    report.wall_secs
                )
            }
        };
        format!(
            "{{\"rounds\":{},\"changes_per_round\":8,\"closures\":{},\"generation\":{},\
             \"swap_secs\":{:?},\"staleness_secs\":{:?},\"verified_post_churn\":{},\
             \"sharded_refresh\":{}}}",
            plan.rounds.len(),
            plan.closures(),
            snap.generation(),
            swap_secs,
            staleness_secs,
            verified,
            sharded_refresh,
        )
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"serve_throughput\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"nodes\": {},\n",
            "  \"requests\": {},\n",
            "  \"repeat_fraction\": {},\n",
            "  \"seed\": {},\n",
            "  \"hardware_parallelism\": {},\n",
            "  \"index_loaded\": {},\n",
            "  \"ah_build_secs\": {:.3},\n",
            "  \"ch_build_secs\": {:.3},\n",
            "  \"thread_sweep\": [\n    {}\n  ],\n",
            "  \"backend_comparison\": [\n    {}\n  ],\n",
            "  \"speedup_1_to_max_workers\": {:.3},\n",
            "  \"trace_overhead\": {},\n",
            "  \"cost_overhead\": {},\n",
            "  \"stage_breakdown\": {},\n",
            "  \"sharded\": {},\n",
            "  \"reload\": {}\n",
            "}}\n"
        ),
        spec.name,
        n,
        requests.len(),
        REPEAT_FRACTION,
        args.seed,
        hardware,
        idx.loaded,
        ah_secs,
        ch_secs,
        sweep_rows
            .iter()
            .map(Row::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        backend_rows
            .iter()
            .map(Row::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        speedup,
        trace_overhead_json,
        cost_overhead_json,
        stage_breakdown_json,
        sharded_json,
        reload_json,
    );
    let out = std::env::var("SERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    std::fs::write(&out, &json).expect("write benchmark JSON");
    println!("wrote {out}");
}
