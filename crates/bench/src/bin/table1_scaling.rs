//! **Table 1**: asymptotic performance — empirical scaling check.
//!
//! Table 1 is analytical (space `O(hn)`, preprocessing `O(hn²)`, distance
//! query `O(h log h)`, path query `O(k + h log h)`). This binary validates
//! the shapes empirically across the dataset family:
//!
//! * index bytes per node should stay near-constant times `h`,
//! * long-range (Q10) distance-query time should grow with `h` (≈ log n),
//!   *not* with `n`,
//! * path-query time should grow linearly in the returned `k` beyond the
//!   distance-query cost.

use ah_bench::{load_dataset, time_once, time_query_set, HarnessArgs};
use ah_core::{AhIndex, AhQuery};

fn main() {
    let args = HarnessArgs::parse();
    println!("dataset\tn\th\tindex_B/node\tbuild_s\tQ10_dist_us\tQ10_path_us\tQ10_avg_k");
    for spec in args.datasets() {
        let ds = load_dataset(spec, args.pairs, args.seed);
        let g = &ds.graph;
        let n = g.num_nodes();
        eprintln!("[table1] {} (n = {n}) …", spec.name);
        let (ah, secs) = time_once(|| AhIndex::build(g, &Default::default()));
        let stats = ah.stats();
        let mut q = AhQuery::new();
        let long = ds
            .query_sets
            .iter()
            .rev()
            .find(|s| !s.pairs.is_empty());
        let (dist_us, path_us, avg_k) = match long {
            Some(set) => {
                let d = time_query_set(&set.pairs, |s, t| q.distance(&ah, s, t).unwrap_or(0));
                let mut total_k = 0usize;
                let p = time_query_set(&set.pairs, |s, t| {
                    let path = q.path(&ah, s, t);
                    if let Some(p) = &path {
                        total_k += p.num_edges();
                    }
                    path.map_or(0, |p| p.dist.length)
                });
                (d, p, total_k as f64 / set.pairs.len() as f64)
            }
            None => (0.0, 0.0, 0.0),
        };
        println!(
            "{}\t{}\t{}\t{:.1}\t{:.2}\t{:.2}\t{:.2}\t{:.0}",
            spec.name,
            n,
            stats.h,
            stats.size_bytes as f64 / n as f64,
            secs,
            dist_us,
            path_us,
            avg_k
        );
    }
}
