//! **Table 2**: dataset characteristics.
//!
//! Prints, for every dataset in the registry, the paper dataset it mirrors
//! plus its node and edge counts, degree bound and coordinate aspect ratio
//! `α = dmax/dmin` (the quantity behind `h ≤ log2 α − 1`).

use ah_bench::{HarnessArgs, REGISTRY};
use ah_graph::GraphStats;

fn main() {
    let mut args = HarnessArgs::parse();
    // Table 2 is cheap: list the full family unless explicitly narrowed.
    if std::env::args().len() == 1 {
        args.through = REGISTRY.len() - 1;
    }
    println!("name\tmirrors\tnodes\tedges\tmax_degree\talpha\th_bound");
    for spec in args.datasets() {
        let g = spec.build();
        let st = GraphStats::compute(&g);
        let alpha = st.alpha();
        let h_bound = alpha.map(|a| (64 - a.leading_zeros()).saturating_sub(1));
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            spec.name,
            spec.mirrors,
            st.num_nodes,
            st.num_edges,
            st.max_degree,
            alpha.map_or("-".into(), |a| a.to_string()),
            h_bound.map_or("-".into(), |h| h.to_string()),
        );
    }
}
