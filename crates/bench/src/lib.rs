//! Shared machinery for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). They share dataset selection,
//! index construction, query timing and the TSV/console output format
//! through this library so that methods are always compared under
//! identical conditions.

use std::sync::Arc;
use std::time::Instant;

use ah_ch::ChIndex;
use ah_core::AhIndex;
use ah_graph::Graph;
use ah_labels::LabelIndex;
use ah_shard::{ShardConfig, ShardedIndex};
use ah_store::{Snapshot, SnapshotContents};
use ah_workload::{QuerySet, SeriesRecord};

pub use ah_data::registry::{by_name, REGISTRY};
pub use ah_data::DatasetSpec;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Last dataset to include (index into [`REGISTRY`]).
    pub through: usize,
    /// Query pairs per query set.
    pub pairs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for parallel experiments (`serve_throughput` and
    /// future parallel builds). Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Region shards for sharded serving (`serve_throughput`); `0`
    /// (the default) disables the sharded run entirely.
    pub shards: usize,
    /// Also obtain a hub-labeling index (`--labels`; `serve_throughput`
    /// turns this on unconditionally for its backend comparison, and
    /// `serve_edge --backend labels` implies it). Off by default so the
    /// figure binaries never pay a labeling build on the large datasets.
    pub labels: bool,
    /// Base path to save built indexes to, as an `ah_store` snapshot per
    /// dataset (see [`snapshot_path`]). `None` skips saving.
    pub save_index: Option<String>,
    /// Base path to load indexes from instead of building them. The
    /// per-dataset path derivation matches `save_index`, so the same
    /// base string round-trips.
    pub load_index: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            through: 5, // S0..S5 by default (see registry docs)
            pairs: 500,
            seed: 0xF16,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            shards: 0,
            labels: false,
            save_index: None,
            load_index: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `--through SN` / `--pairs N` / `--seed N` / `--threads N` /
    /// `--save-index PATH` / `--load-index PATH` from `std::env`.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if !args.accept(&a, &mut it) {
                panic!(
                    "unknown argument {a} (try --through S9 | --pairs N | --seed N | \
                     --threads N | --shards K | --labels | --save-index PATH | \
                     --load-index PATH)"
                );
            }
        }
        args
    }

    /// Consumes one recognized harness flag (and its value) from `it`.
    /// Returns `false` — touching nothing — when `arg` is not a harness
    /// flag, so bins with extra flags of their own (e.g. `serve_edge`)
    /// can layer their parsing on top instead of duplicating this one.
    pub fn accept(&mut self, arg: &str, it: &mut impl Iterator<Item = String>) -> bool {
        match arg {
            "--through" => {
                let v = it.next().expect("--through needs a dataset name");
                self.through = REGISTRY
                    .iter()
                    .position(|d| d.name == v)
                    .unwrap_or_else(|| panic!("unknown dataset {v}"));
            }
            "--pairs" => {
                self.pairs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--pairs needs a number");
            }
            "--seed" => {
                self.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--threads" => {
                self.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--threads needs a positive number");
            }
            "--shards" => {
                self.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards needs a number (0 disables sharding)");
            }
            "--labels" => {
                self.labels = true;
            }
            "--save-index" => {
                self.save_index = Some(it.next().expect("--save-index needs a path"));
            }
            "--load-index" => {
                self.load_index = Some(it.next().expect("--load-index needs a path"));
            }
            _ => return false,
        }
        true
    }

    /// The selected dataset slice.
    pub fn datasets(&self) -> &'static [DatasetSpec] {
        &REGISTRY[..=self.through.min(REGISTRY.len() - 1)]
    }
}

/// Derives the per-dataset snapshot path from a `--save-index` /
/// `--load-index` base: the dataset name is appended to the file stem, so
/// `idx.snap` + `S2` → `idx-S2.snap`. Binaries that iterate several
/// datasets (fig8, fig9) therefore never overwrite one dataset's snapshot
/// with another's, and a save/load pair with identical arguments resolves
/// identical paths.
pub fn snapshot_path(base: &str, dataset: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(base);
    let stem = p
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("index");
    let file = match p.extension().and_then(|s| s.to_str()) {
        Some(ext) => format!("{stem}-{dataset}.{ext}"),
        None => format!("{stem}-{dataset}"),
    };
    p.with_file_name(file)
}

/// The AH + CH index pair an experiment runs against, with provenance:
/// built fresh, or reloaded from an `ah_store` snapshot.
pub struct ObtainedIndices {
    /// The AH index (shared: the sharded index keeps it as its global
    /// fallback, so it lives behind an `Arc`).
    pub ah: Arc<AhIndex>,
    /// The CH index.
    pub ch: ChIndex,
    /// The region-sharded index, present iff `--shards K` with `K > 0`.
    pub sharded: Option<Arc<ShardedIndex>>,
    /// The hub-labeling index, present iff `--labels` (or a bin implied
    /// it). Built over the CH contraction order when not loadable from
    /// the snapshot.
    pub labels: Option<Arc<LabelIndex>>,
    /// Seconds spent obtaining the AH index — build time, or (near-zero)
    /// snapshot load time when `--load-index` was given.
    pub ah_secs: f64,
    /// Seconds spent obtaining the CH index (the whole snapshot is read
    /// once; the load time is attributed to AH, so this is 0 on load).
    pub ch_secs: f64,
    /// Seconds spent obtaining the sharded index (0 when disabled or
    /// loaded).
    pub sharded_secs: f64,
    /// Seconds spent obtaining the labeling (0 when disabled or loaded;
    /// build time when the snapshot predates the labels section).
    pub labels_secs: f64,
    /// True if the indexes came from a snapshot instead of a build.
    pub loaded: bool,
}

/// Builds — or, under `--load-index`, reloads — the AH and CH indexes for
/// one dataset, honouring `--save-index` afterwards.
///
/// Loaded snapshots are validated against the freshly generated graph:
/// when the snapshot carries its `graph` section (which `--save-index`
/// always writes), the full CSR arrays are compared, so a stale snapshot
/// from a registry revision with changed weights — same topology, same
/// node count — fails loudly instead of silently benchmarking the wrong
/// network; a graph-less snapshot falls back to a node-count check.
/// `tag` prefixes the progress lines (`[serve]`, `[fig8]`, …).
pub fn obtain_indices(
    args: &HarnessArgs,
    spec: &DatasetSpec,
    g: &Graph,
    tag: &str,
) -> ObtainedIndices {
    if let Some(base) = &args.load_index {
        let path = snapshot_path(base, spec.name);
        let (snapshot, load_secs) = time_once(|| {
            Snapshot::load(&path).unwrap_or_else(|e| {
                panic!("--load-index: cannot load {}: {e}", path.display())
            })
        });
        let ah = snapshot.ah.unwrap_or_else(|| {
            panic!("--load-index: {} has no AH index section", path.display())
        });
        let ch = snapshot.ch.unwrap_or_else(|| {
            panic!("--load-index: {} has no CH index section", path.display())
        });
        match &snapshot.graph {
            Some(sg) => assert!(
                sg.csr_parts() == g.csr_parts(),
                "--load-index: snapshot {} was built from a different {} \
                 (graph data changed since it was saved — rebuild with --save-index)",
                path.display(),
                spec.name
            ),
            None => assert_eq!(
                ah.num_nodes(),
                g.num_nodes(),
                "--load-index: snapshot {} indexes a different network than {}",
                path.display(),
                spec.name
            ),
        }
        let sharded = if args.shards > 0 {
            let sh = snapshot.sharded.unwrap_or_else(|| {
                panic!(
                    "--load-index with --shards: {} has no sharded sections \
                     (save it with --shards too)",
                    path.display()
                )
            });
            // `--shards K` must describe the partition actually served:
            // compare the snapshot's shard count against what K would
            // produce on this grid (after the same clamping the build
            // applies), so an experiment never silently runs the
            // file's partition instead of the requested one.
            let effective =
                ah_shard::ShardMap::new(ah.grid(), args.shards).num_shards();
            assert_eq!(
                sh.num_shards(),
                effective,
                "--load-index: {} holds a {}-shard partition but --shards {} \
                 requests {} — rebuild with --save-index --shards {}",
                path.display(),
                sh.num_shards(),
                args.shards,
                effective,
                args.shards,
            );
            Some(Arc::new(sh))
        } else {
            None
        };
        let (labels, labels_secs) = if args.labels {
            match snapshot.labels {
                Some(l) => (Some(l), 0.0),
                None => {
                    // Older snapshot without a labels section: build from
                    // the loaded CH order rather than refusing the file.
                    let (l, secs) =
                        time_once(|| Arc::new(LabelIndex::build(g, ch.order())));
                    eprintln!(
                        "[{tag}] {}: snapshot {} has no labels section — built labels \
                         from the CH order in {secs:.1}s (re-save with --labels to persist)",
                        spec.name,
                        path.display()
                    );
                    (Some(l), secs)
                }
            }
        } else {
            (None, 0.0)
        };
        eprintln!(
            "[{tag}] {}: loaded AH + CH{}{} from {} in {load_secs:.3}s (build skipped)",
            spec.name,
            if sharded.is_some() { " + shards" } else { "" },
            if labels.is_some() { " + labels" } else { "" },
            path.display()
        );
        return ObtainedIndices {
            ah,
            ch,
            sharded,
            labels,
            ah_secs: load_secs,
            ch_secs: 0.0,
            sharded_secs: 0.0,
            labels_secs,
            loaded: true,
        };
    }

    let (ah, ah_secs) = time_once(|| Arc::new(AhIndex::build(g, &Default::default())));
    let (ch, ch_secs) = time_once(|| ChIndex::build(g));
    let (sharded, sharded_secs) = if args.shards > 0 {
        let cfg = ShardConfig {
            shards: args.shards,
            ..Default::default()
        };
        let (sh, secs) =
            time_once(|| Arc::new(ShardedIndex::from_global(g, ah.clone(), &cfg)));
        eprintln!(
            "[{tag}] {}: sharded into {} regions ({} borders, certified: {}) in {secs:.1}s",
            spec.name,
            sh.num_shards(),
            sh.stats().borders,
            sh.certified()
        );
        (Some(sh), secs)
    } else {
        (None, 0.0)
    };
    let (labels, labels_secs) = if args.labels {
        let (l, secs) = time_once(|| Arc::new(LabelIndex::build(g, ch.order())));
        let stats = l.stats();
        eprintln!(
            "[{tag}] {}: labeled over the CH order in {secs:.1}s \
             ({:.1} entries/node, {:.1} KiB)",
            spec.name,
            stats.avg_label_entries,
            stats.bytes as f64 / 1024.0
        );
        (Some(l), secs)
    } else {
        (None, 0.0)
    };
    if let Some(base) = &args.save_index {
        let path = snapshot_path(base, spec.name);
        let mut contents = SnapshotContents::new().graph(g).ah(&ah).ch(&ch);
        if let Some(sh) = &sharded {
            contents = contents.sharded(sh);
        }
        if let Some(l) = &labels {
            contents = contents.labels(l);
        }
        let bytes = Snapshot::write(&path, contents)
            .unwrap_or_else(|e| panic!("--save-index: cannot write {}: {e}", path.display()));
        eprintln!(
            "[{tag}] {}: saved graph + AH + CH{}{} snapshot to {} ({:.1} MiB)",
            spec.name,
            if sharded.is_some() { " + shards" } else { "" },
            if labels.is_some() { " + labels" } else { "" },
            path.display(),
            bytes as f64 / (1024.0 * 1024.0)
        );
    }
    ObtainedIndices {
        ah,
        ch,
        sharded,
        labels,
        ah_secs,
        ch_secs,
        sharded_secs,
        labels_secs,
        loaded: false,
    }
}

/// A dataset instantiated for an experiment run.
pub struct LoadedDataset {
    pub spec: DatasetSpec,
    pub graph: Graph,
    pub query_sets: Vec<QuerySet>,
}

/// Builds the graph and query workload for one registry entry.
pub fn load_dataset(spec: &DatasetSpec, pairs: usize, seed: u64) -> LoadedDataset {
    let graph = spec.build();
    let query_sets = ah_workload::generate_query_sets(&graph, pairs, seed);
    LoadedDataset {
        spec: *spec,
        graph,
        query_sets,
    }
}

/// Times `f()` once, in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Times a per-pair query function over a query set; returns µs/query.
/// The accumulated checksum prevents the optimizer from discarding work.
pub fn time_query_set(
    pairs: &[(u32, u32)],
    mut f: impl FnMut(u32, u32) -> u64,
) -> f64 {
    let mut acc = 0u64;
    let t = Instant::now();
    for &(s, d) in pairs {
        acc = acc.wrapping_add(f(s, d));
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / pairs.len().max(1) as f64;
    std::hint::black_box(acc);
    us
}

/// Pretty-prints a series of records as a console table and TSV block.
pub fn print_records(title: &str, records: &[SeriesRecord]) {
    println!("\n== {title} ==");
    println!("{}", SeriesRecord::tsv_header());
    for r in records {
        println!("{}", r.tsv_line());
    }
}

/// Convenience constructor for a record.
pub fn record(
    dataset: &DatasetSpec,
    nodes: usize,
    method: &str,
    query_set: u32,
    value: f64,
    unit: &str,
) -> SeriesRecord {
    SeriesRecord {
        dataset: dataset.name.to_string(),
        nodes,
        method: method.to_string(),
        query_set,
        value,
        unit: unit.to_string(),
    }
}

/// SILC is only feasible on the smaller networks (its preprocessing and
/// space are the point of Figure 10); this mirrors the paper's cut-off of
/// 500K nodes, scaled to our registry.
pub fn silc_feasible(nodes: usize) -> bool {
    nodes <= 10_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_select_s0_to_s5() {
        let a = HarnessArgs::default();
        assert_eq!(a.datasets().len(), 6);
        assert_eq!(a.datasets()[5].name, "S5");
        assert!(a.threads >= 1, "threads defaults to available parallelism");
    }

    #[test]
    fn load_smallest_dataset() {
        let d = load_dataset(&REGISTRY[0], 10, 1);
        assert!(d.graph.num_nodes() > 500);
        assert_eq!(d.query_sets.len(), 10);
    }

    #[test]
    fn timing_helpers() {
        let (v, secs) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        let us = time_query_set(&[(0, 1), (1, 2)], |a, b| (a + b) as u64);
        assert!(us >= 0.0);
    }

    #[test]
    fn snapshot_path_derivation() {
        assert_eq!(
            snapshot_path("idx.snap", "S2"),
            std::path::PathBuf::from("idx-S2.snap")
        );
        assert_eq!(
            snapshot_path("out/dir.d/idx.snap", "S0"),
            std::path::PathBuf::from("out/dir.d/idx-S0.snap")
        );
        assert_eq!(
            snapshot_path("noext", "S1"),
            std::path::PathBuf::from("noext-S1")
        );
    }

    #[test]
    fn obtain_indices_roundtrips_through_snapshot() {
        let spec = REGISTRY[0];
        let g = spec.build();
        let base = std::env::temp_dir()
            .join(format!("ah_bench_obtain_{}.snap", std::process::id()));
        let base = base.to_string_lossy().into_owned();

        let save_args = HarnessArgs {
            save_index: Some(base.clone()),
            labels: true,
            ..Default::default()
        };
        let built = obtain_indices(&save_args, &spec, &g, "test");
        assert!(!built.loaded);
        assert!(built.labels.is_some());

        let load_args = HarnessArgs {
            load_index: Some(base.clone()),
            labels: true,
            ..Default::default()
        };
        let loaded = obtain_indices(&load_args, &spec, &g, "test");
        assert!(loaded.loaded);
        assert_eq!(loaded.ah.stats(), built.ah.stats());
        assert_eq!(loaded.ch.num_shortcuts(), built.ch.num_shortcuts());
        // The labels section round-tripped (loaded, not rebuilt).
        assert_eq!(loaded.labels_secs, 0.0, "labels should come from the snapshot");
        assert_eq!(
            loaded.labels.unwrap().stats(),
            built.labels.unwrap().stats()
        );
        std::fs::remove_file(snapshot_path(&base, spec.name)).ok();
    }

    #[test]
    fn silc_cutoff() {
        assert!(silc_feasible(1_000));
        assert!(!silc_feasible(50_000));
    }
}
