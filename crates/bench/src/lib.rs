//! Shared machinery for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). They share dataset selection,
//! index construction, query timing and the TSV/console output format
//! through this library so that methods are always compared under
//! identical conditions.

use std::time::Instant;

use ah_graph::Graph;
use ah_workload::{QuerySet, SeriesRecord};

pub use ah_data::registry::{by_name, REGISTRY};
pub use ah_data::DatasetSpec;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Last dataset to include (index into [`REGISTRY`]).
    pub through: usize,
    /// Query pairs per query set.
    pub pairs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads for parallel experiments (`serve_throughput` and
    /// future parallel builds). Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            through: 5, // S0..S5 by default (see registry docs)
            pairs: 500,
            seed: 0xF16,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

impl HarnessArgs {
    /// Parses `--through SN` / `--pairs N` / `--seed N` / `--threads N`
    /// from `std::env`.
    pub fn parse() -> Self {
        let mut args = HarnessArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--through" => {
                    let v = it.next().expect("--through needs a dataset name");
                    args.through = REGISTRY
                        .iter()
                        .position(|d| d.name == v)
                        .unwrap_or_else(|| panic!("unknown dataset {v}"));
                }
                "--pairs" => {
                    args.pairs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--pairs needs a number");
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a number");
                }
                "--threads" => {
                    args.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n > 0)
                        .expect("--threads needs a positive number");
                }
                other => panic!(
                    "unknown argument {other} (try --through S9 | --pairs N | --seed N | --threads N)"
                ),
            }
        }
        args
    }

    /// The selected dataset slice.
    pub fn datasets(&self) -> &'static [DatasetSpec] {
        &REGISTRY[..=self.through.min(REGISTRY.len() - 1)]
    }
}

/// A dataset instantiated for an experiment run.
pub struct LoadedDataset {
    pub spec: DatasetSpec,
    pub graph: Graph,
    pub query_sets: Vec<QuerySet>,
}

/// Builds the graph and query workload for one registry entry.
pub fn load_dataset(spec: &DatasetSpec, pairs: usize, seed: u64) -> LoadedDataset {
    let graph = spec.build();
    let query_sets = ah_workload::generate_query_sets(&graph, pairs, seed);
    LoadedDataset {
        spec: *spec,
        graph,
        query_sets,
    }
}

/// Times `f()` once, in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// Times a per-pair query function over a query set; returns µs/query.
/// The accumulated checksum prevents the optimizer from discarding work.
pub fn time_query_set(
    pairs: &[(u32, u32)],
    mut f: impl FnMut(u32, u32) -> u64,
) -> f64 {
    let mut acc = 0u64;
    let t = Instant::now();
    for &(s, d) in pairs {
        acc = acc.wrapping_add(f(s, d));
    }
    let us = t.elapsed().as_secs_f64() * 1e6 / pairs.len().max(1) as f64;
    std::hint::black_box(acc);
    us
}

/// Pretty-prints a series of records as a console table and TSV block.
pub fn print_records(title: &str, records: &[SeriesRecord]) {
    println!("\n== {title} ==");
    println!("{}", SeriesRecord::tsv_header());
    for r in records {
        println!("{}", r.tsv_line());
    }
}

/// Convenience constructor for a record.
pub fn record(
    dataset: &DatasetSpec,
    nodes: usize,
    method: &str,
    query_set: u32,
    value: f64,
    unit: &str,
) -> SeriesRecord {
    SeriesRecord {
        dataset: dataset.name.to_string(),
        nodes,
        method: method.to_string(),
        query_set,
        value,
        unit: unit.to_string(),
    }
}

/// SILC is only feasible on the smaller networks (its preprocessing and
/// space are the point of Figure 10); this mirrors the paper's cut-off of
/// 500K nodes, scaled to our registry.
pub fn silc_feasible(nodes: usize) -> bool {
    nodes <= 10_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_select_s0_to_s5() {
        let a = HarnessArgs::default();
        assert_eq!(a.datasets().len(), 6);
        assert_eq!(a.datasets()[5].name, "S5");
        assert!(a.threads >= 1, "threads defaults to available parallelism");
    }

    #[test]
    fn load_smallest_dataset() {
        let d = load_dataset(&REGISTRY[0], 10, 1);
        assert!(d.graph.num_nodes() > 500);
        assert_eq!(d.query_sets.len(), 10);
    }

    #[test]
    fn timing_helpers() {
        let (v, secs) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        let us = time_query_set(&[(0, 1), (1, 2)], |a, b| (a + b) as u64);
        assert!(us >= 0.0);
    }

    #[test]
    fn silc_cutoff() {
        assert!(silc_feasible(1_000));
        assert!(!silc_feasible(50_000));
    }
}
