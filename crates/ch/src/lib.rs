//! Contraction Hierarchies (CH) — the paper's strongest baseline
//! (Geisberger, Sanders, Schultes, Delling, WEA 2008; reference \[11\]).
//!
//! CH heuristically imposes a total order on the nodes (edge difference +
//! deleted neighbours, lazily maintained), contracts them in that order
//! with witness searches, and answers queries with a bidirectional upward
//! Dijkstra. It is the method AH is benchmarked against throughout
//! Section 6: CH has the cheapest preprocessing and smallest index, AH
//! beats it on query time, especially for long-range queries.
//!
//! The heavy lifting lives in [`ah_contraction`]; this crate packages it
//! behind the same `build / distance / path` surface the other methods
//! expose, so the benchmark harness treats all methods uniformly.
//!
//! ```
//! use ah_ch::{ChIndex, ChQuery};
//!
//! let g = ah_data::fixtures::lattice(6, 6, 16);
//! let idx = ChIndex::build(&g);
//! let mut q = ChQuery::new();
//! assert_eq!(
//!     q.distance(&idx, 0, 35),
//!     ah_search::dijkstra_distance(&g, 0, 35).map(|d| d.length)
//! );
//! ```

use ah_contraction::{contract_adaptive, BidirUpwardQuery, ContractionConfig, Hierarchy};
use ah_graph::{Dist, Graph, NodeId, Path};
use ah_obs::CostCounters;

/// A built Contraction Hierarchies index.
pub struct ChIndex {
    hierarchy: Hierarchy,
    order: Vec<NodeId>,
}

impl ChIndex {
    /// Builds the index with default witness budgets.
    pub fn build(g: &Graph) -> ChIndex {
        Self::build_with_config(g, ContractionConfig::default())
    }

    /// Builds the index with an explicit contraction configuration.
    pub fn build_with_config(g: &Graph, cfg: ContractionConfig) -> ChIndex {
        let (hierarchy, order) = contract_adaptive(g, cfg);
        ChIndex { hierarchy, order }
    }

    /// The contraction order (`order[0]` contracted first).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Number of shortcut arcs.
    pub fn num_shortcuts(&self) -> usize {
        self.hierarchy.num_shortcuts()
    }

    /// Approximate index size in bytes (Figure 10a accounting).
    pub fn size_bytes(&self) -> usize {
        self.hierarchy.size_bytes() + self.order.len() * std::mem::size_of::<NodeId>()
    }

    /// Reassembles an index from a hierarchy and its contraction order
    /// (snapshot loading). Requires `order` to be consistent with the
    /// hierarchy's ranks: `order[i]` must be the node with rank `i`.
    pub fn from_raw_parts(
        hierarchy: Hierarchy,
        order: Vec<NodeId>,
    ) -> Result<ChIndex, &'static str> {
        if order.len() != hierarchy.num_nodes() {
            return Err("contraction order length disagrees with the hierarchy");
        }
        for (i, &v) in order.iter().enumerate() {
            if v as usize >= order.len() || hierarchy.rank(v) as usize != i {
                return Err("contraction order disagrees with hierarchy ranks");
            }
        }
        Ok(ChIndex { hierarchy, order })
    }
}

/// Reusable CH query state (one per thread).
#[derive(Default)]
pub struct ChQuery {
    inner: BidirUpwardQuery,
    cost: CostCounters,
}

// Concurrency contract, checked at compile time: one `ChIndex` is shared
// across `ah_server` workers, each owning its `ChQuery`.
const fn _assert_send_sync<T: Send + Sync>() {}
const fn _assert_send<T: Send>() {}
const _: () = _assert_send_sync::<ChIndex>();
const _: () = _assert_send::<ChQuery>();

impl ChQuery {
    /// Creates a query engine.
    pub fn new() -> ChQuery {
        ChQuery {
            inner: BidirUpwardQuery::new(),
            cost: CostCounters::default(),
        }
    }

    /// Disables stall-on-demand (for ablation runs).
    pub fn set_stall_on_demand(&mut self, on: bool) {
        self.inner.stall_on_demand = on;
    }

    /// Network distance from `s` to `t`.
    pub fn distance(&mut self, idx: &ChIndex, s: NodeId, t: NodeId) -> Option<u64> {
        self.distance_full(idx, s, t).map(|d| d.length)
    }

    /// Distance with the nuance tie-break component.
    pub fn distance_full(&mut self, idx: &ChIndex, s: NodeId, t: NodeId) -> Option<Dist> {
        let d = self
            .inner
            .distance(&idx.hierarchy, s, t, |_| true, |_| true);
        self.accumulate_cost();
        d
    }

    /// Shortest path from `s` to `t` in the original network.
    pub fn path(&mut self, idx: &ChIndex, s: NodeId, t: NodeId) -> Option<Path> {
        let p = self.inner.path(&idx.hierarchy, s, t, |_| true, |_| true);
        self.accumulate_cost();
        p
    }

    /// Nodes settled by the last query (telemetry).
    pub fn settled_count(&self) -> usize {
        self.inner.settled_count
    }

    /// Algorithmic cost accumulated since the last
    /// [`take_cost`](Self::take_cost) drain (possibly several queries).
    pub fn cost(&self) -> &CostCounters {
        &self.cost
    }

    /// Drains and returns the accumulated cost tally.
    pub fn take_cost(&mut self) -> CostCounters {
        self.cost.take()
    }

    fn accumulate_cost(&mut self) {
        // The inner engine resets its counters per search, so fold them
        // into the drainable tally after every call.
        self.cost.nodes_settled += self.inner.settled_count as u64;
        self.cost.heap_pops += self.inner.heap_pops as u64;
        self.cost.edges_relaxed += self.inner.relaxed_arcs as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_search::{dijkstra_distance, dijkstra_path};

    fn check(g: &Graph, stride: usize) {
        let idx = ChIndex::build(g);
        let mut q = ChQuery::new();
        let n = g.num_nodes() as NodeId;
        for s in (0..n).step_by(stride) {
            for t in (0..n).step_by(stride) {
                assert_eq!(
                    q.distance_full(&idx, s, t),
                    dijkstra_distance(g, s, t),
                    "({s},{t})"
                );
                if let Some(want) = dijkstra_path(g, s, t) {
                    let p = q.path(&idx, s, t).unwrap();
                    p.verify(g).unwrap();
                    assert_eq!(p.dist, want.dist);
                }
            }
        }
    }

    #[test]
    fn correct_on_lattice() {
        check(&ah_data::fixtures::lattice(7, 5, 12), 3);
    }

    #[test]
    fn correct_on_road_network() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 13,
            height: 13,
            one_way: 0.2,
            seed: 77,
            ..Default::default()
        });
        check(&g, 7);
    }

    #[test]
    fn index_accounting() {
        let g = ah_data::fixtures::lattice(6, 6, 12);
        let idx = ChIndex::build(&g);
        assert_eq!(idx.order().len(), 36);
        assert!(idx.size_bytes() > 0);
        let mut q = ChQuery::new();
        q.distance(&idx, 0, 35);
        assert!(q.settled_count() > 0);
    }
}
