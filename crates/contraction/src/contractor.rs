//! The dynamic remaining-graph with witness searches.

use ah_graph::{Dist, Graph, NodeId, INVALID_NODE};
use ah_search::{DijkstraDriver, SearchGraph, SearchOptions};

use crate::hierarchy::{HArc, Hierarchy};

/// Tunables for contraction.
#[derive(Debug, Clone, Copy)]
pub struct ContractionConfig {
    /// Settle budget per witness search. A search that exhausts the budget
    /// conservatively reports "no witness", adding a (correct but possibly
    /// redundant) shortcut. The paper's AH keeps witness searches local to
    /// a (5×5)-cell region; a settle budget is the order-agnostic
    /// equivalent.
    pub witness_settle_limit: usize,
}

impl Default for ContractionConfig {
    fn default() -> Self {
        ContractionConfig {
            witness_settle_limit: 192,
        }
    }
}

/// Outcome of simulating a contraction (for adaptive ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationStats {
    /// Shortcuts that contraction would add.
    pub shortcuts: usize,
    /// Incident remaining arcs that contraction removes.
    pub removed_arcs: usize,
}

/// The remaining graph during contraction: arcs between not-yet-contracted
/// nodes, plus (frozen) arcs to already-contracted ones, which become the
/// hierarchy's downward arcs.
pub struct Contractor {
    out: Vec<Vec<HArc>>,
    inn: Vec<Vec<HArc>>,
    contracted: Vec<bool>,
    num_contracted: usize,
    witness: DijkstraDriver,
    cfg: ContractionConfig,
}

/// Adapter exposing the remaining graph to the witness Dijkstra. Arcs to
/// contracted nodes and to the skipped node are filtered by the driver's
/// `allow` callback, not here.
struct RemainingView<'a> {
    out: &'a [Vec<HArc>],
    inn: &'a [Vec<HArc>],
}

impl SearchGraph for RemainingView<'_> {
    fn num_nodes(&self) -> usize {
        self.out.len()
    }

    fn for_each_out<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, mut f: F) {
        for a in &self.out[v as usize] {
            f(a.to, a.dist.length, a.dist.nuance);
        }
    }

    fn for_each_in<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, mut f: F) {
        for a in &self.inn[v as usize] {
            f(a.to, a.dist.length, a.dist.nuance);
        }
    }
}

impl Contractor {
    /// Initializes the remaining graph with the original edges.
    pub fn new(g: &Graph, cfg: ContractionConfig) -> Self {
        let n = g.num_nodes();
        let mut out: Vec<Vec<HArc>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<HArc>> = vec![Vec::new(); n];
        for (tail, a) in g.edges() {
            let arc = HArc {
                to: a.head,
                dist: Dist::new(a.weight as u64, a.nuance as u64),
                middle: INVALID_NODE,
            };
            out[tail as usize].push(arc);
            inn[a.head as usize].push(HArc {
                to: tail,
                ..arc
            });
        }
        Contractor {
            out,
            inn,
            contracted: vec![false; n],
            num_contracted: 0,
            witness: DijkstraDriver::new(),
            cfg,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// True if `v` has been contracted.
    pub fn is_contracted(&self, v: NodeId) -> bool {
        self.contracted[v as usize]
    }

    /// Remaining (uncontracted) in-neighbours of `v` with min arc per tail.
    fn remaining_in(&self, v: NodeId) -> Vec<(NodeId, Dist)> {
        let mut nbrs: Vec<(NodeId, Dist)> = Vec::new();
        for a in &self.inn[v as usize] {
            if !self.contracted[a.to as usize] {
                nbrs.push((a.to, a.dist));
            }
        }
        nbrs
    }

    fn remaining_out(&self, v: NodeId) -> Vec<(NodeId, Dist)> {
        let mut nbrs: Vec<(NodeId, Dist)> = Vec::new();
        for a in &self.out[v as usize] {
            if !self.contracted[a.to as usize] {
                nbrs.push((a.to, a.dist));
            }
        }
        nbrs
    }

    /// Contracts `v`: adds a shortcut `u → w` (middle `v`) for every
    /// in/out neighbour pair whose shortest connection is the unique path
    /// through `v` (decided by a bounded witness search that skips `v`).
    /// Returns the number of shortcuts added.
    pub fn contract(&mut self, v: NodeId) -> usize {
        debug_assert!(!self.contracted[v as usize]);
        let in_nbrs = self.remaining_in(v);
        let out_nbrs = self.remaining_out(v);
        let mut added = 0usize;
        if !in_nbrs.is_empty() && !out_nbrs.is_empty() {
            let max_d2 = out_nbrs.iter().map(|&(_, d)| d).max().unwrap();
            for &(u, d1) in &in_nbrs {
                let bound = d1.concat(max_d2);
                self.run_witness(u, v, bound);
                for &(w, d2) in &out_nbrs {
                    if w == u {
                        continue;
                    }
                    let cand = d1.concat(d2);
                    // A tentative (unsettled) distance is an upper bound on
                    // the true witness length, so `<= cand` is a sound skip
                    // even when the budgeted search stopped early.
                    if self.witness.dist(w) <= cand {
                        continue;
                    }
                    self.add_arc(u, w, cand, v);
                    added += 1;
                }
            }
        }
        self.contracted[v as usize] = true;
        self.num_contracted += 1;
        added
    }

    /// Simulates contracting `v` without mutating: returns the number of
    /// shortcuts it would add and the number of remaining arcs it removes.
    pub fn simulate(&mut self, v: NodeId) -> SimulationStats {
        let in_nbrs = self.remaining_in(v);
        let out_nbrs = self.remaining_out(v);
        let removed_arcs = in_nbrs.len() + out_nbrs.len();
        let mut shortcuts = 0usize;
        if !in_nbrs.is_empty() && !out_nbrs.is_empty() {
            let max_d2 = out_nbrs.iter().map(|&(_, d)| d).max().unwrap();
            for &(u, d1) in &in_nbrs {
                let bound = d1.concat(max_d2);
                self.run_witness(u, v, bound);
                for &(w, d2) in &out_nbrs {
                    if w == u {
                        continue;
                    }
                    if self.witness.dist(w) > d1.concat(d2) {
                        shortcuts += 1;
                    }
                }
            }
        }
        SimulationStats {
            shortcuts,
            removed_arcs,
        }
    }

    fn run_witness(&mut self, source: NodeId, skip: NodeId, bound: Dist) {
        let view = RemainingView {
            out: &self.out,
            inn: &self.inn,
        };
        let contracted = &self.contracted;
        self.witness.run(
            &view,
            source,
            &SearchOptions {
                bound,
                max_settled: self.cfg.witness_settle_limit,
                ..Default::default()
            },
            |x| x != skip && !contracted[x as usize],
        );
    }

    /// Inserts arc `u → w` keeping only the minimum-distance arc per
    /// ordered pair.
    fn add_arc(&mut self, u: NodeId, w: NodeId, dist: Dist, middle: NodeId) {
        let arc = HArc {
            to: w,
            dist,
            middle,
        };
        let out = &mut self.out[u as usize];
        if let Some(existing) = out.iter_mut().find(|a| a.to == w) {
            if existing.dist <= dist {
                return;
            }
            *existing = arc;
        } else {
            out.push(arc);
        }
        let inn = &mut self.inn[w as usize];
        let mirrored = HArc {
            to: u,
            dist,
            middle,
        };
        if let Some(existing) = inn.iter_mut().find(|a| a.to == u) {
            *existing = mirrored;
        } else {
            inn.push(mirrored);
        }
    }

    /// Current remaining degree (for adaptive ordering tie-breaks).
    pub fn remaining_degree(&self, v: NodeId) -> usize {
        self.remaining_in(v).len() + self.remaining_out(v).len()
    }

    /// Finishes contraction: every node must have been contracted. `rank`
    /// maps each node to its contraction position.
    pub fn into_hierarchy(self, rank: Vec<u32>) -> Hierarchy {
        assert_eq!(
            self.num_contracted,
            self.out.len(),
            "into_hierarchy before all nodes were contracted"
        );
        Hierarchy::assemble(rank, &self.out, &self.inn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{GraphBuilder, Point};

    fn path_graph() -> Graph {
        // 0 -1- 1 -1- 2, bidirectional.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i, 0));
        }
        b.add_bidirectional_edge(0, 1, 1);
        b.add_bidirectional_edge(1, 2, 1);
        b.build()
    }

    #[test]
    fn contracting_interior_adds_shortcuts() {
        let g = path_graph();
        let mut c = Contractor::new(&g, ContractionConfig::default());
        // Contract the middle node: 0↔2 needs shortcuts both ways.
        let added = c.contract(1);
        assert_eq!(added, 2);
        assert!(c.is_contracted(1));
    }

    #[test]
    fn witness_prevents_redundant_shortcut() {
        // Triangle: 0-1 (1), 1-2 (1), 0-2 (1). Contracting 1: path 0→1→2
        // costs 2, direct edge costs 1 → witness found, no shortcut.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i, i));
        }
        b.add_bidirectional_edge(0, 1, 1);
        b.add_bidirectional_edge(1, 2, 1);
        b.add_bidirectional_edge(0, 2, 1);
        let g = b.build();
        let mut c = Contractor::new(&g, ContractionConfig::default());
        assert_eq!(c.contract(1), 0);
    }

    #[test]
    fn simulate_matches_contract() {
        let g = path_graph();
        let mut c = Contractor::new(&g, ContractionConfig::default());
        let sim = c.simulate(1);
        assert_eq!(sim.shortcuts, 2);
        assert_eq!(sim.removed_arcs, 4);
        let added = c.contract(1);
        assert_eq!(added, sim.shortcuts);
    }

    #[test]
    fn min_arc_dedup() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        // Two routes 0→3: via 1 (cost 2) and via 2 (cost 6).
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 1);
        b.add_edge(0, 2, 3);
        b.add_edge(2, 3, 3);
        let g = b.build();
        let mut c = Contractor::new(&g, ContractionConfig::default());
        // Contract 2 first: candidate shortcut 0→3 of cost 6; witness via 1
        // costs 2 → rejected.
        assert_eq!(c.contract(2), 0);
        // Contract 1: 0→3 via 1 costs 2; only alternative went through the
        // already-contracted 2 → shortcut added.
        assert_eq!(c.contract(1), 1);
    }

    #[test]
    fn full_contraction_produces_hierarchy() {
        let g = path_graph();
        let mut c = Contractor::new(&g, ContractionConfig::default());
        // Contract in order 1, 0, 2 → ranks 1:0, 0:1, 2:2.
        c.contract(1);
        c.contract(0);
        c.contract(2);
        let mut rank = vec![0u32; 3];
        rank[1] = 0;
        rank[0] = 1;
        rank[2] = 2;
        let h = c.into_hierarchy(rank);
        assert_eq!(h.num_nodes(), 3);
        // 0 must have an upward arc to 2 (the shortcut).
        assert!(h.up_out(0).iter().any(|a| a.to == 2 && a.middle == 1));
    }

    #[test]
    #[should_panic(expected = "before all nodes")]
    fn premature_finish_panics() {
        let g = path_graph();
        let c = Contractor::new(&g, ContractionConfig::default());
        let _ = c.into_hierarchy(vec![0, 1, 2]);
    }
}
