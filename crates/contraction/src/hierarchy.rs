//! The contracted hierarchy: upward adjacency plus path unpacking.

use ah_graph::{Dist, NodeId, INVALID_NODE};

/// A hierarchy arc: target (or source, for upward-in arcs), nuance-tagged
/// length, and the *middle node* recorded at shortcut creation
/// ([`INVALID_NODE`] for original edges). The middle node turns any
/// shortcut into a two-hop path, giving O(k) unpacking (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HArc {
    /// The other endpoint.
    pub to: NodeId,
    /// Length of the represented path.
    pub dist: Dist,
    /// Interior node bypassed by this shortcut; [`INVALID_NODE`] for
    /// original edges.
    pub middle: NodeId,
}

impl HArc {
    /// True if this arc is an original road-network edge.
    #[inline]
    pub fn is_original(&self) -> bool {
        self.middle == INVALID_NODE
    }
}

/// Borrowed view of every array a [`Hierarchy`] owns, in snapshot order.
/// Serialization hook for `ah_store`; [`Hierarchy::from_raw_parts`] is the
/// validated inverse.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyParts<'a> {
    /// Contraction rank per node.
    pub rank: &'a [u32],
    /// The four CSR views as `(offsets, arcs)` pairs, in the order
    /// up-out, up-in, down-out, down-in.
    pub views: [(&'a [u32], &'a [HArc]); 4],
    /// Shortcut count (denormalized; recomputed on load would also work
    /// but persisting it keeps load O(1) in the arc count).
    pub num_shortcuts: usize,
}

/// A contracted graph in CSR form, split into the four adjacency views a
/// bidirectional upward query needs.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Rank (contraction position) per node; higher = more important.
    rank: Vec<u32>,
    up_out_offsets: Vec<u32>,
    up_out_arcs: Vec<HArc>,
    up_in_offsets: Vec<u32>,
    up_in_arcs: Vec<HArc>,
    /// Downward views, needed only for unpacking (finding the sub-arcs of
    /// a shortcut): `down_out[u]` = arcs `u → x` with `rank(x) < rank(u)`.
    down_out_offsets: Vec<u32>,
    down_out_arcs: Vec<HArc>,
    down_in_offsets: Vec<u32>,
    down_in_arcs: Vec<HArc>,
    num_shortcuts: usize,
}

impl Hierarchy {
    /// Assembles the CSR views from per-node arc lists.
    ///
    /// `out[u]` must contain every hierarchy arc `u → v` (original +
    /// shortcut, deduplicated to the minimum distance per head), and `inn`
    /// the mirrored lists.
    pub(crate) fn assemble(
        rank: Vec<u32>,
        out: &[Vec<HArc>],
        inn: &[Vec<HArc>],
    ) -> Self {
        let n = rank.len();
        let mut num_shortcuts = 0usize;
        let mut up_out: Vec<Vec<HArc>> = vec![Vec::new(); n];
        let mut up_in: Vec<Vec<HArc>> = vec![Vec::new(); n];
        let mut down_out: Vec<Vec<HArc>> = vec![Vec::new(); n];
        let mut down_in: Vec<Vec<HArc>> = vec![Vec::new(); n];
        for u in 0..n {
            for &a in &out[u] {
                if !a.is_original() {
                    num_shortcuts += 1;
                }
                if rank[a.to as usize] > rank[u] {
                    up_out[u].push(a);
                } else {
                    down_out[u].push(a);
                }
            }
            for &a in &inn[u] {
                if rank[a.to as usize] > rank[u] {
                    up_in[u].push(a);
                } else {
                    down_in[u].push(a);
                }
            }
        }
        // Sort upward arcs by rank of the head: keeps query relaxation
        // cache-friendly and deterministic.
        for lists in [&mut up_out, &mut up_in, &mut down_out, &mut down_in] {
            for l in lists.iter_mut() {
                l.sort_unstable_by_key(|a| (rank[a.to as usize], a.to));
            }
        }
        let (up_out_offsets, up_out_arcs) = to_csr(&up_out);
        let (up_in_offsets, up_in_arcs) = to_csr(&up_in);
        let (down_out_offsets, down_out_arcs) = to_csr(&down_out);
        let (down_in_offsets, down_in_arcs) = to_csr(&down_in);
        Hierarchy {
            rank,
            up_out_offsets,
            up_out_arcs,
            up_in_offsets,
            up_in_arcs,
            down_out_offsets,
            down_out_arcs,
            down_in_offsets,
            down_in_arcs,
            num_shortcuts,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Contraction rank of `v` (higher = contracted later = more
    /// important).
    #[inline]
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Number of shortcut arcs in the hierarchy.
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// The contraction order implied by the ranks: `order[i]` is the node
    /// with rank `i`, so `order[0]` was contracted first and the last
    /// element is the most important node. This is the hub order consumed
    /// by `ah_labels` (processed back to front), exported here so a
    /// labeling can be built from any hierarchy — AH's or CH's — without
    /// re-deriving the permutation at each call site.
    pub fn contraction_order(&self) -> Vec<NodeId> {
        let mut order = vec![0 as NodeId; self.rank.len()];
        for (v, &r) in self.rank.iter().enumerate() {
            order[r as usize] = v as NodeId;
        }
        order
    }

    /// Upward out-arcs of `u`: arcs `u → v` with `rank(v) > rank(u)`
    /// (relaxed by the forward search).
    #[inline]
    pub fn up_out(&self, u: NodeId) -> &[HArc] {
        slice(&self.up_out_offsets, &self.up_out_arcs, u)
    }

    /// Upward in-arcs of `u`: arcs `v → u` with `rank(v) > rank(u)`
    /// (relaxed by the backward search; [`HArc::to`] is the tail `v`).
    #[inline]
    pub fn up_in(&self, u: NodeId) -> &[HArc] {
        slice(&self.up_in_offsets, &self.up_in_arcs, u)
    }

    /// Downward out-arcs of `u` (used for unpacking and stall checks).
    #[inline]
    pub fn down_out(&self, u: NodeId) -> &[HArc] {
        slice(&self.down_out_offsets, &self.down_out_arcs, u)
    }

    /// Downward in-arcs of `u`.
    #[inline]
    pub fn down_in(&self, u: NodeId) -> &[HArc] {
        slice(&self.down_in_offsets, &self.down_in_arcs, u)
    }

    /// Borrowed view of all internal arrays (serialization hook).
    pub fn raw_parts(&self) -> HierarchyParts<'_> {
        HierarchyParts {
            rank: &self.rank,
            views: [
                (&self.up_out_offsets, &self.up_out_arcs),
                (&self.up_in_offsets, &self.up_in_arcs),
                (&self.down_out_offsets, &self.down_out_arcs),
                (&self.down_in_offsets, &self.down_in_arcs),
            ],
            num_shortcuts: self.num_shortcuts,
        }
    }

    /// Reassembles a hierarchy from raw arrays (the inverse of
    /// [`Hierarchy::raw_parts`], used when loading snapshots).
    ///
    /// Validates the CSR shape of all four views, arc endpoint bounds, and
    /// that `rank` is a permutation of `0..n` — the property every upward
    /// query and unpack walk relies on — so a corrupt or hand-forged
    /// snapshot is rejected instead of producing panics at query time.
    #[allow(clippy::type_complexity)]
    pub fn from_raw_parts(
        rank: Vec<u32>,
        views: [(Vec<u32>, Vec<HArc>); 4],
        num_shortcuts: usize,
    ) -> Result<Self, &'static str> {
        let n = rank.len();
        let mut seen = vec![false; n];
        for &r in &rank {
            if r as usize >= n || seen[r as usize] {
                return Err("rank is not a permutation of 0..n");
            }
            seen[r as usize] = true;
        }
        for (offsets, arcs) in &views {
            if offsets.len() != n + 1 {
                return Err("hierarchy offset array length is not num_nodes + 1");
            }
            if offsets.first() != Some(&0)
                || offsets.windows(2).any(|w| w[0] > w[1])
                || offsets.last().copied().unwrap_or(0) as usize != arcs.len()
            {
                return Err("hierarchy offset array is malformed");
            }
            if arcs
                .iter()
                .any(|a| a.to as usize >= n || (!a.is_original() && a.middle as usize >= n))
            {
                return Err("hierarchy arc endpoint out of range");
            }
        }
        let [(up_out_offsets, up_out_arcs), (up_in_offsets, up_in_arcs), (down_out_offsets, down_out_arcs), (down_in_offsets, down_in_arcs)] =
            views;
        Ok(Hierarchy {
            rank,
            up_out_offsets,
            up_out_arcs,
            up_in_offsets,
            up_in_arcs,
            down_out_offsets,
            down_out_arcs,
            down_in_offsets,
            down_in_arcs,
            num_shortcuts,
        })
    }

    /// Approximate heap footprint (Figure 10a accounting).
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rank.len() * size_of::<u32>()
            + (self.up_out_offsets.len()
                + self.up_in_offsets.len()
                + self.down_out_offsets.len()
                + self.down_in_offsets.len())
                * size_of::<u32>()
            + (self.up_out_arcs.len()
                + self.up_in_arcs.len()
                + self.down_out_arcs.len()
                + self.down_in_arcs.len())
                * size_of::<HArc>()
    }

    /// Expands the hierarchy arc `u → v` (found in the forward/upward
    /// direction) into the original-edge node sequence, *excluding* `u` and
    /// *including* `v`, appending to `out`.
    pub fn unpack_arc(&self, u: NodeId, arc: &HArc, out: &mut Vec<NodeId>) {
        if arc.is_original() {
            out.push(arc.to);
            return;
        }
        let m = arc.middle;
        // First half u → m: m ranks below both endpoints, so the arc is
        // recorded among m's upward in-arcs.
        let first = self
            .up_in(m)
            .iter()
            .find(|a| a.to == u)
            .copied()
            .unwrap_or_else(|| panic!("missing unpack arc {u} → {m}"));
        // Flip orientation: we need it as "u → m".
        let first = HArc {
            to: m,
            dist: first.dist,
            middle: first.middle,
        };
        self.unpack_arc(u, &first, out);
        // Second half m → v: recorded among m's upward out-arcs.
        let second = self
            .up_out(m)
            .iter()
            .find(|a| a.to == arc.to)
            .copied()
            .unwrap_or_else(|| panic!("missing unpack arc {m} → {}", arc.to));
        self.unpack_arc(m, &second, out);
    }
}

fn slice<'a>(offsets: &[u32], arcs: &'a [HArc], u: NodeId) -> &'a [HArc] {
    &arcs[offsets[u as usize] as usize..offsets[u as usize + 1] as usize]
}

fn to_csr(lists: &[Vec<HArc>]) -> (Vec<u32>, Vec<HArc>) {
    let mut offsets = Vec::with_capacity(lists.len() + 1);
    offsets.push(0u32);
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut arcs = Vec::with_capacity(total);
    for l in lists {
        arcs.extend_from_slice(l);
        offsets.push(arcs.len() as u32);
    }
    (offsets, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tiny hand-made hierarchy: 0 —1→ 1 —1→ 2, ranks 0<2, 1 is
    /// lowest; shortcut 0→2 via middle 1.
    fn tiny() -> Hierarchy {
        let e = |to, len, middle| HArc {
            to,
            dist: Dist::new(len, 0),
            middle,
        };
        let rank = vec![1, 0, 2];
        let out = vec![
            vec![e(1, 1, INVALID_NODE), e(2, 2, 1)],
            vec![e(2, 1, INVALID_NODE)],
            vec![],
        ];
        let inn = vec![
            vec![],
            vec![e(0, 1, INVALID_NODE)],
            vec![e(1, 1, INVALID_NODE), e(0, 2, 1)],
        ];
        Hierarchy::assemble(rank, &out, &inn)
    }

    #[test]
    fn adjacency_partitions_by_rank() {
        let h = tiny();
        // 0 (rank 1): upward out-arc to 2 (rank 2); downward out-arc to 1.
        assert_eq!(h.up_out(0).len(), 1);
        assert_eq!(h.up_out(0)[0].to, 2);
        assert_eq!(h.down_out(0).len(), 1);
        assert_eq!(h.down_out(0)[0].to, 1);
        // 1 (rank 0): both neighbours rank higher.
        assert_eq!(h.up_out(1).len(), 1);
        assert_eq!(h.up_in(1).len(), 1);
        // 2 (rank 2) is the apex: nothing ranks above it, so its upward
        // views are empty and both in-arcs are downward.
        assert!(h.up_in(2).is_empty());
        assert!(h.up_out(2).is_empty());
        assert_eq!(h.down_in(2).len(), 2);
        assert_eq!(h.num_shortcuts(), 1);
    }

    #[test]
    fn unpack_shortcut() {
        let h = tiny();
        let sc = *h
            .up_out(0)
            .iter()
            .find(|a| !a.is_original())
            .expect("shortcut 0→2 present");
        assert_eq!(sc.to, 2);
        let mut nodes = vec![0u32];
        h.unpack_arc(0, &sc, &mut nodes);
        assert_eq!(nodes, vec![0, 1, 2]);
    }

    #[test]
    fn unpack_original_edge() {
        let h = tiny();
        let arc = h.up_out(1)[0];
        assert!(arc.is_original());
        let mut nodes = vec![1u32];
        h.unpack_arc(1, &arc, &mut nodes);
        assert_eq!(nodes, vec![1, 2]);
    }

    #[test]
    fn size_accounting() {
        let h = tiny();
        assert!(h.size_bytes() > 0);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let h = tiny();
        let p = h.raw_parts();
        let views = p.views.map(|(o, a)| (o.to_vec(), a.to_vec()));
        let h2 =
            Hierarchy::from_raw_parts(p.rank.to_vec(), views, p.num_shortcuts).unwrap();
        assert_eq!(h2.num_nodes(), h.num_nodes());
        assert_eq!(h2.num_shortcuts(), h.num_shortcuts());
        for v in 0..h.num_nodes() as NodeId {
            assert_eq!(h2.rank(v), h.rank(v));
            assert_eq!(h2.up_out(v), h.up_out(v));
            assert_eq!(h2.up_in(v), h.up_in(v));
            assert_eq!(h2.down_out(v), h.down_out(v));
            assert_eq!(h2.down_in(v), h.down_in(v));
        }
    }

    #[test]
    fn from_raw_parts_rejects_bad_rank_and_shapes() {
        let h = tiny();
        let p = h.raw_parts();
        let views = || p.views.map(|(o, a)| (o.to_vec(), a.to_vec()));
        // Duplicate rank.
        let bad_rank = vec![1, 1, 2];
        assert!(Hierarchy::from_raw_parts(bad_rank, views(), 1).is_err());
        // Arc endpoint out of range.
        let mut v = views();
        if let Some(a) = v[0].1.first_mut() {
            a.to = 77;
        }
        assert!(Hierarchy::from_raw_parts(p.rank.to_vec(), v, 1).is_err());
        // Offsets not covering arcs.
        let mut v = views();
        *v[1].0.last_mut().unwrap() += 1;
        assert!(Hierarchy::from_raw_parts(p.rank.to_vec(), v, 1).is_err());
    }
}
