//! Rank-ordered node contraction — the shortcut construction shared by AH
//! and CH.
//!
//! Section 4.2 of the paper builds AH's shortcuts from local shortest-path
//! trees: node `u` gets a shortcut to every nearby `v` that ranks above it
//! while all interior nodes rank below `u`, and each shortcut remembers the
//! highest-ranked interior node so it expands into a two-hop path in O(1).
//! That construction is exactly *node contraction* in rank order (the
//! paper's Lemma 16 proves the resulting unimodal-rank-path property), and
//! contraction is also precisely how the Contraction Hierarchies baseline
//! \[11\] builds its index — so the two share this engine:
//!
//! * [`Contractor`] — the dynamic remaining-graph with witness searches;
//! * [`contract_with_order`] — contraction along a *fixed* total order
//!   (AH: levels from the arterial construction + in-level rank);
//! * [`contract_adaptive`] — CH's heuristic ordering (edge difference +
//!   deleted neighbours, lazy updates);
//! * [`Hierarchy`] — the resulting upward/downward search structure with
//!   middle-node path unpacking.
//!
//! Correctness does not depend on the order: witness searches guarantee
//! that for every node pair some shortest path is representable as an
//! up-then-down rank sequence, for *any* strict total order (the paper
//! makes the same observation in Section 4.2).

mod contractor;
mod hierarchy;
mod ordering;
mod query;

pub use contractor::{ContractionConfig, Contractor, SimulationStats};
pub use hierarchy::{HArc, Hierarchy, HierarchyParts};
pub use ordering::{contract_adaptive, contract_with_order};
pub use query::BidirUpwardQuery;

// Concurrency contract, checked at compile time: a contracted `Hierarchy`
// is immutable and shared by every `ah_server` worker, and the per-thread
// `BidirUpwardQuery` state must be movable into worker threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const fn _assert_send<T: Send>() {}
const _: () = _assert_send_sync::<Hierarchy>();
const _: () = _assert_send::<BidirUpwardQuery>();
