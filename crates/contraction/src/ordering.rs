//! Contraction orderings: fixed (AH) and adaptive (CH).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Graph, NodeId};

use crate::contractor::{ContractionConfig, Contractor};
use crate::hierarchy::Hierarchy;

/// Contracts the nodes of `g` in exactly the given order (`order[0]` is
/// contracted first = lowest rank). This is the AH path: the order comes
/// from arterial levels plus the in-level vertex-cover rank.
///
/// # Panics
/// Panics if `order` is not a permutation of the node ids.
pub fn contract_with_order(g: &Graph, order: &[NodeId], cfg: ContractionConfig) -> Hierarchy {
    let n = g.num_nodes();
    assert_eq!(order.len(), n, "order must cover every node");
    let mut rank = vec![u32::MAX; n];
    for (pos, &v) in order.iter().enumerate() {
        assert!(
            rank[v as usize] == u32::MAX,
            "node {v} appears twice in the order"
        );
        rank[v as usize] = pos as u32;
    }
    let mut c = Contractor::new(g, cfg);
    for &v in order {
        c.contract(v);
    }
    c.into_hierarchy(rank)
}

/// Contracts `g` with the Contraction Hierarchies heuristic ordering
/// (Geisberger et al. \[11\]): priority = edge difference weighted against
/// the number of already-contracted neighbours, maintained lazily (a
/// popped node is re-simulated and re-queued if its priority got stale).
/// Returns the hierarchy plus the contraction order.
pub fn contract_adaptive(g: &Graph, cfg: ContractionConfig) -> (Hierarchy, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut c = Contractor::new(g, cfg);
    let mut deleted_neighbours = vec![0u32; n];

    let priority = |c: &mut Contractor, deleted: u32, v: NodeId| -> i64 {
        let sim = c.simulate(v);
        // The classic linear combination: favour nodes whose contraction
        // shrinks the graph, and spread contractions spatially by
        // penalizing nodes whose neighbourhood was already contracted.
        190 * (sim.shortcuts as i64 - sim.removed_arcs as i64) + 120 * deleted as i64
    };

    let mut heap: BinaryHeap<Reverse<(i64, NodeId)>> = BinaryHeap::with_capacity(n);
    for v in 0..n as NodeId {
        let p = priority(&mut c, 0, v);
        heap.push(Reverse((p, v)));
    }

    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0u32; n];
    while let Some(Reverse((p, v))) = heap.pop() {
        if c.is_contracted(v) {
            continue;
        }
        // Lazy update: re-evaluate; if the node no longer beats the queue
        // head, push it back with its fresh priority.
        let fresh = priority(&mut c, deleted_neighbours[v as usize], v);
        if fresh > p {
            if let Some(&Reverse((next_p, _))) = heap.peek() {
                if fresh > next_p {
                    heap.push(Reverse((fresh, v)));
                    continue;
                }
            }
        }
        // Record neighbours before contraction mutates the remaining graph.
        let mut nbrs: Vec<NodeId> = Vec::new();
        let gv = g;
        for a in gv.out_edges(v) {
            nbrs.push(a.head);
        }
        for a in gv.in_edges(v) {
            nbrs.push(a.head);
        }
        rank[v as usize] = order.len() as u32;
        order.push(v);
        c.contract(v);
        for w in nbrs {
            if !c.is_contracted(w) {
                deleted_neighbours[w as usize] += 1;
            }
        }
    }
    (c.into_hierarchy(rank), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_data::fixtures;
    use ah_graph::Dist;

    #[test]
    fn fixed_order_contracts_everything() {
        let g = fixtures::line(8, 10);
        let order: Vec<NodeId> = (0..8).collect();
        let h = contract_with_order(&g, &order, ContractionConfig::default());
        assert_eq!(h.num_nodes(), 8);
        for v in 0..8u32 {
            assert_eq!(h.rank(v), v);
        }
        // Left-to-right on a path always removes a leaf of the remaining
        // graph, so no shortcuts are ever needed.
        assert_eq!(h.num_shortcuts(), 0);
        // An interior-first order must bridge the gap it creates.
        let scrambled: Vec<NodeId> = vec![4, 3, 5, 2, 6, 1, 7, 0];
        let h2 = contract_with_order(&g, &scrambled, ContractionConfig::default());
        assert!(h2.num_shortcuts() > 0);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_panics() {
        let g = fixtures::line(3, 10);
        contract_with_order(&g, &[0, 0, 1], ContractionConfig::default());
    }

    #[test]
    fn adaptive_order_is_a_permutation() {
        let g = fixtures::lattice(5, 5, 10);
        let (h, order) = contract_adaptive(&g, ContractionConfig::default());
        assert_eq!(order.len(), 25);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 25);
        for (pos, &v) in order.iter().enumerate() {
            assert_eq!(h.rank(v), pos as u32);
        }
    }

    /// Exhaustive up-down reachability check: for every pair (s,t), the
    /// minimum over meeting nodes m of (up-dist s→m) + (up-dist from t's
    /// backward side) must equal the true distance. This is the core
    /// contraction invariant both AH and CH rely on.
    fn updown_distances_match(g: &ah_graph::Graph, h: &Hierarchy) {
        let n = g.num_nodes() as NodeId;
        for s in 0..n {
            // Forward upward Dijkstra (tiny graphs: simple maps suffice).
            let dist_f = upward_sssp(h, s, true);
            for t in 0..n {
                let dist_b = upward_sssp(h, t, false);
                let via: Option<Dist> = (0..n)
                    .filter_map(|m| {
                        let a = dist_f[m as usize]?;
                        let b = dist_b[m as usize]?;
                        Some(a.concat(b))
                    })
                    .min();
                let expected = ah_search::dijkstra_distance(g, s, t);
                match (via, expected) {
                    (Some(d), Some(e)) => {
                        assert_eq!(d, e, "pair ({s},{t})")
                    }
                    (None, None) => {}
                    (got, want) => panic!("pair ({s},{t}): {got:?} vs {want:?}"),
                }
            }
        }
    }

    fn upward_sssp(h: &Hierarchy, source: NodeId, forward: bool) -> Vec<Option<Dist>> {
        use std::collections::BinaryHeap;
        let n = h.num_nodes();
        let mut dist: Vec<Option<Dist>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source as usize] = Some(Dist::ZERO);
        heap.push(Reverse((Dist::ZERO, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist[u as usize] != Some(d) {
                continue;
            }
            let arcs = if forward { h.up_out(u) } else { h.up_in(u) };
            for a in arcs {
                let nd = d.concat(a.dist);
                if dist[a.to as usize].is_none_or(|cur| nd < cur) {
                    dist[a.to as usize] = Some(nd);
                    heap.push(Reverse((nd, a.to)));
                }
            }
        }
        dist
    }

    #[test]
    fn updown_invariant_fixed_order_line() {
        let g = fixtures::line(9, 10);
        let order: Vec<NodeId> = vec![4, 1, 7, 2, 5, 0, 8, 3, 6]; // scrambled
        let h = contract_with_order(&g, &order, ContractionConfig::default());
        updown_distances_match(&g, &h);
    }

    #[test]
    fn updown_invariant_fixed_order_ring() {
        let g = fixtures::ring(10);
        let order: Vec<NodeId> = (0..10).collect();
        let h = contract_with_order(&g, &order, ContractionConfig::default());
        updown_distances_match(&g, &h);
    }

    #[test]
    fn updown_invariant_adaptive_lattice() {
        let g = fixtures::lattice(4, 4, 10);
        let (h, _) = contract_adaptive(&g, ContractionConfig::default());
        updown_distances_match(&g, &h);
    }

    #[test]
    fn updown_invariant_directed_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let mut b = ah_graph::GraphBuilder::new();
        for i in 0..20 {
            b.add_node(ah_graph::Point::new(i, (i * 7) % 13));
        }
        for _ in 0..60 {
            let u = rng.random_range(0..20);
            let v = rng.random_range(0..20);
            let w = rng.random_range(1..9);
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let (h, _) = contract_adaptive(&g, ContractionConfig::default());
        updown_distances_match(&g, &h);

        let mut order: Vec<NodeId> = (0..20).collect();
        // A deliberately bad static order must still be correct.
        order.reverse();
        let h2 = contract_with_order(&g, &order, ContractionConfig::default());
        updown_distances_match(&g, &h2);
    }

    #[test]
    fn tiny_witness_budget_stays_correct() {
        let g = fixtures::lattice(4, 4, 10);
        let cfg = ContractionConfig {
            witness_settle_limit: 1,
        };
        let (h, _) = contract_adaptive(&g, cfg);
        updown_distances_match(&g, &h);
        // With no witnesses, strictly more shortcuts appear.
        let (h_full, _) = contract_adaptive(&g, ContractionConfig::default());
        assert!(h.num_shortcuts() >= h_full.num_shortcuts());
    }
}
