//! Bidirectional upward search over a [`Hierarchy`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Dist, NodeId, Path, INFINITY, INVALID_NODE};
use ah_search::StampedVec;

use crate::hierarchy::{HArc, Hierarchy};

/// Reusable state for bidirectional upward queries (the CH query
/// algorithm): a forward search over upward out-arcs from `s` and a
/// backward search over upward in-arcs from `t`; the answer is the best
/// meeting node. Each side stops once its queue minimum reaches the best
/// meeting distance.
#[derive(Debug)]
pub struct BidirUpwardQuery {
    dist_f: StampedVec<Dist>,
    dist_b: StampedVec<Dist>,
    parent_f: StampedVec<NodeId>,
    parent_b: StampedVec<NodeId>,
    arc_f: StampedVec<HArc>,
    arc_b: StampedVec<HArc>,
    settled_f: StampedVec<bool>,
    settled_b: StampedVec<bool>,
    heap_f: BinaryHeap<Reverse<(Dist, NodeId)>>,
    heap_b: BinaryHeap<Reverse<(Dist, NodeId)>>,
    meeting: Option<NodeId>,
    /// Settled-node counters for the last query (experiment telemetry).
    pub settled_count: usize,
    /// Heap pops (including stale entries) for the last query.
    pub heap_pops: usize,
    /// Upward arcs examined for relaxation during the last query.
    pub relaxed_arcs: usize,
    /// Stall-on-demand: skip expanding nodes proven suboptimal through a
    /// higher-ranked neighbour. Pure optimization, on by default.
    pub stall_on_demand: bool,
}

const NO_ARC: HArc = HArc {
    to: INVALID_NODE,
    dist: INFINITY,
    middle: INVALID_NODE,
};

impl Default for BidirUpwardQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl BidirUpwardQuery {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        BidirUpwardQuery {
            dist_f: StampedVec::new(0, INFINITY),
            dist_b: StampedVec::new(0, INFINITY),
            parent_f: StampedVec::new(0, INVALID_NODE),
            parent_b: StampedVec::new(0, INVALID_NODE),
            arc_f: StampedVec::new(0, NO_ARC),
            arc_b: StampedVec::new(0, NO_ARC),
            settled_f: StampedVec::new(0, false),
            settled_b: StampedVec::new(0, false),
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            meeting: None,
            settled_count: 0,
            heap_pops: 0,
            relaxed_arcs: 0,
            stall_on_demand: true,
        }
    }

    /// Distance query. `allow_f`/`allow_b` filter nodes the forward /
    /// backward side may *relax into* (AH's proximity constraint hooks in
    /// here; plain CH passes `|_| true`).
    pub fn distance<FF, FB>(
        &mut self,
        h: &Hierarchy,
        s: NodeId,
        t: NodeId,
        allow_f: FF,
        allow_b: FB,
    ) -> Option<Dist>
    where
        FF: FnMut(NodeId) -> bool,
        FB: FnMut(NodeId) -> bool,
    {
        self.search(h, s, t, allow_f, allow_b)
    }

    /// Shortest-path query: distance plus the fully unpacked node sequence.
    pub fn path<FF, FB>(
        &mut self,
        h: &Hierarchy,
        s: NodeId,
        t: NodeId,
        allow_f: FF,
        allow_b: FB,
    ) -> Option<Path>
    where
        FF: FnMut(NodeId) -> bool,
        FB: FnMut(NodeId) -> bool,
    {
        let dist = self.search(h, s, t, allow_f, allow_b)?;
        let m = self.meeting.expect("finite distance implies meeting node");
        // Forward half: collect the hierarchy arcs s → … → m, then unpack.
        let mut fwd_arcs: Vec<(NodeId, HArc)> = Vec::new();
        let mut cur = m;
        while self.parent_f.get(cur as usize) != INVALID_NODE {
            let p = self.parent_f.get(cur as usize);
            fwd_arcs.push((p, self.arc_f.get(cur as usize)));
            cur = p;
        }
        fwd_arcs.reverse();
        let mut nodes = vec![s];
        for (u, arc) in fwd_arcs {
            h.unpack_arc(u, &arc, &mut nodes);
        }
        // Backward half: arcs m → … → t in forward orientation already.
        let mut cur = m;
        while self.parent_b.get(cur as usize) != INVALID_NODE {
            let arc = self.arc_b.get(cur as usize);
            let next = self.parent_b.get(cur as usize);
            h.unpack_arc(cur, &arc, &mut nodes);
            cur = next;
        }
        debug_assert_eq!(*nodes.last().unwrap(), t);
        Some(Path { nodes, dist })
    }

    /// The meeting node of the last successful query.
    pub fn meeting(&self) -> Option<NodeId> {
        self.meeting
    }

    fn search<FF, FB>(
        &mut self,
        h: &Hierarchy,
        s: NodeId,
        t: NodeId,
        mut allow_f: FF,
        mut allow_b: FB,
    ) -> Option<Dist>
    where
        FF: FnMut(NodeId) -> bool,
        FB: FnMut(NodeId) -> bool,
    {
        let n = h.num_nodes();
        for v in [&mut self.dist_f, &mut self.dist_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.parent_f, &mut self.parent_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.arc_f, &mut self.arc_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.settled_f, &mut self.settled_b] {
            v.ensure_len(n);
            v.reset();
        }
        self.heap_f.clear();
        self.heap_b.clear();
        self.meeting = None;
        self.settled_count = 0;
        self.heap_pops = 0;
        self.relaxed_arcs = 0;

        if s == t {
            self.meeting = Some(s);
            return Some(Dist::ZERO);
        }

        self.dist_f.set(s as usize, Dist::ZERO);
        self.dist_b.set(t as usize, Dist::ZERO);
        self.heap_f.push(Reverse((Dist::ZERO, s)));
        self.heap_b.push(Reverse((Dist::ZERO, t)));

        let mut best = INFINITY;
        loop {
            let top_f = self
                .heap_f
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            let top_b = self
                .heap_b
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            // CH termination: a side keeps going while its queue minimum is
            // below the best meeting (the other side may still improve it).
            let go_f = top_f < best;
            let go_b = top_b < best;
            if !go_f && !go_b {
                break;
            }
            let forward = if go_f && go_b { top_f <= top_b } else { go_f };
            if forward {
                let Reverse((d, u)) = self.heap_f.pop().expect("peeked");
                self.heap_pops += 1;
                if self.settled_f.get(u as usize) {
                    continue;
                }
                self.settled_f.set(u as usize, true);
                self.settled_count += 1;
                let other = self.dist_b.get(u as usize);
                if !other.is_infinite() {
                    let through = d.concat(other);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                if self.stall_on_demand && stalled(h, u, d, &self.dist_f, true) {
                    continue;
                }
                self.relaxed_arcs += h.up_out(u).len();
                for a in h.up_out(u) {
                    if self.settled_f.get(a.to as usize) || !allow_f(a.to) {
                        continue;
                    }
                    let nd = d.concat(a.dist);
                    if nd < self.dist_f.get(a.to as usize) {
                        self.dist_f.set(a.to as usize, nd);
                        self.parent_f.set(a.to as usize, u);
                        self.arc_f.set(a.to as usize, *a);
                        self.heap_f.push(Reverse((nd, a.to)));
                    }
                }
            } else {
                let Reverse((d, u)) = self.heap_b.pop().expect("peeked");
                self.heap_pops += 1;
                if self.settled_b.get(u as usize) {
                    continue;
                }
                self.settled_b.set(u as usize, true);
                self.settled_count += 1;
                let other = self.dist_f.get(u as usize);
                if !other.is_infinite() {
                    let through = other.concat(d);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                if self.stall_on_demand && stalled(h, u, d, &self.dist_b, false) {
                    continue;
                }
                self.relaxed_arcs += h.up_in(u).len();
                for a in h.up_in(u) {
                    if self.settled_b.get(a.to as usize) || !allow_b(a.to) {
                        continue;
                    }
                    let nd = d.concat(a.dist);
                    if nd < self.dist_b.get(a.to as usize) {
                        self.dist_b.set(a.to as usize, nd);
                        // Parent points toward t; the real arc is
                        // a.to → u, stored in forward orientation.
                        self.parent_b.set(a.to as usize, u);
                        self.arc_b.set(
                            a.to as usize,
                            HArc {
                                to: u,
                                dist: a.dist,
                                middle: a.middle,
                            },
                        );
                        self.heap_b.push(Reverse((nd, a.to)));
                    }
                }
            }
        }

        (!best.is_infinite()).then_some(best)
    }
}

/// Stall-on-demand check: `u` (popped at distance `d`) is *stalled* on the
/// forward side if some higher-ranked neighbour `w` with an arc `w → u`
/// yields `dist_f(w) + len(w→u) < d` — then no shortest up-down path goes
/// through `u`, so expanding it is pointless. Mirrored for the backward
/// side with arcs `u → w`.
fn stalled(h: &Hierarchy, u: NodeId, d: Dist, dist: &StampedVec<Dist>, forward: bool) -> bool {
    let arcs = if forward { h.up_in(u) } else { h.up_out(u) };
    for a in arcs {
        let dw = dist.get(a.to as usize);
        if !dw.is_infinite() && dw.concat(a.dist) < d {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{contract_adaptive, contract_with_order};
    use crate::ContractionConfig;
    use ah_data::fixtures;
    use ah_search::{dijkstra_distance, dijkstra_path};

    fn check_all_pairs(g: &ah_graph::Graph, h: &Hierarchy) {
        let mut q = BidirUpwardQuery::new();
        let n = g.num_nodes() as NodeId;
        for s in 0..n {
            for t in 0..n {
                let got = q.distance(h, s, t, |_| true, |_| true);
                let want = dijkstra_distance(g, s, t);
                assert_eq!(got, want, "distance ({s},{t})");
                let path = q.path(h, s, t, |_| true, |_| true);
                match (path, dijkstra_path(g, s, t)) {
                    (Some(p), Some(expect)) => {
                        p.verify(g).unwrap();
                        assert_eq!(p.dist, expect.dist, "path dist ({s},{t})");
                        assert_eq!(p.source(), s);
                        assert_eq!(p.target(), t);
                    }
                    (None, None) => {}
                    (got, want) => panic!("path ({s},{t}): {got:?} vs {want:?}"),
                }
            }
        }
    }

    #[test]
    fn all_pairs_on_lattice_adaptive() {
        let g = fixtures::lattice(5, 4, 10);
        let (h, _) = contract_adaptive(&g, ContractionConfig::default());
        check_all_pairs(&g, &h);
    }

    #[test]
    fn all_pairs_on_ring_fixed_order() {
        let g = fixtures::ring(12);
        let order: Vec<NodeId> = (0..12).collect();
        let h = contract_with_order(&g, &order, ContractionConfig::default());
        check_all_pairs(&g, &h);
    }

    #[test]
    fn all_pairs_directed_random() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = ah_graph::GraphBuilder::new();
        for i in 0..25 {
            b.add_node(ah_graph::Point::new(i % 5, i / 5));
        }
        for _ in 0..80 {
            let u = rng.random_range(0..25);
            let v = rng.random_range(0..25);
            b.add_edge(u, v, rng.random_range(1..20));
        }
        let g = b.build();
        let (h, _) = contract_adaptive(&g, ContractionConfig::default());
        check_all_pairs(&g, &h);
    }

    #[test]
    fn stalling_does_not_change_answers() {
        let g = fixtures::lattice(4, 4, 10);
        let (h, _) = contract_adaptive(&g, ContractionConfig::default());
        let mut q1 = BidirUpwardQuery::new();
        let mut q2 = BidirUpwardQuery::new();
        q2.stall_on_demand = false;
        for s in 0..16u32 {
            for t in 0..16u32 {
                assert_eq!(
                    q1.distance(&h, s, t, |_| true, |_| true),
                    q2.distance(&h, s, t, |_| true, |_| true),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn unreachable_pair() {
        let mut b = ah_graph::GraphBuilder::new();
        b.add_node(ah_graph::Point::new(0, 0));
        b.add_node(ah_graph::Point::new(5, 5));
        b.add_edge(0, 1, 3);
        let g = b.build();
        let h = contract_with_order(&g, &[0, 1], ContractionConfig::default());
        let mut q = BidirUpwardQuery::new();
        assert!(q.distance(&h, 1, 0, |_| true, |_| true).is_none());
        assert!(q.path(&h, 1, 0, |_| true, |_| true).is_none());
        assert_eq!(
            q.distance(&h, 0, 1, |_| true, |_| true).unwrap().length,
            3
        );
    }

    #[test]
    fn self_query() {
        let g = fixtures::line(3, 5);
        let h = contract_with_order(&g, &[1, 0, 2], ContractionConfig::default());
        let mut q = BidirUpwardQuery::new();
        assert_eq!(
            q.distance(&h, 1, 1, |_| true, |_| true),
            Some(Dist::ZERO)
        );
        let p = q.path(&h, 1, 1, |_| true, |_| true).unwrap();
        assert_eq!(p.nodes, vec![1]);
    }
}
