//! Build- and query-time configuration.

use ah_contraction::ContractionConfig;

/// Index construction knobs. The defaults reproduce the paper's AH; the
/// flags exist for the ablation experiments called out in DESIGN.md.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Cap on the number of grid levels `h` (paper: ≤ 26).
    pub max_levels: u32,
    /// Witness-search budget for shortcut construction.
    pub contraction: ContractionConfig,
    /// Order each level by the greedy vertex cover of its pseudo-arterial
    /// edges (Section 4.4). When false, an arbitrary (hashed) in-level
    /// order is used — the paper notes any strict total order is correct.
    pub vertex_cover_rank: bool,
    /// Downgrade cores that the vertex cover skipped (Section 4.4's
    /// optimization reducing high-level node counts).
    pub downgrade_non_cover: bool,
    /// Build elevating-edge sets for border nodes (Sections 4.2/4.3).
    pub elevating_edges: bool,
    /// Settle budget per elevating-set search; a search that exceeds it is
    /// discarded (queries fall back to normal arcs at that node — always
    /// correct, possibly slower).
    pub elevating_settle_limit: usize,
    /// Maximum number of jump targets per (node, level) elevating set;
    /// larger sets are discarded. Keeps both the index size and the
    /// query-time fan-out bounded (the paper's λ² bound in spirit).
    pub elevating_max_arcs: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            max_levels: 26,
            contraction: ContractionConfig::default(),
            vertex_cover_rank: true,
            downgrade_non_cover: true,
            elevating_edges: true,
            elevating_settle_limit: 1024,
            elevating_max_arcs: 48,
        }
    }
}

/// Query-time constraint toggles (ablation instrumentation; all `true`
/// reproduces the paper's query algorithm).
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Apply the proximity constraint (Sections 3.2/4.3).
    pub proximity: bool,
    /// Follow elevating edges (Section 4.3).
    pub elevating: bool,
    /// Stall-on-demand pruning (an engineering optimization shared with
    /// CH implementations; does not change results).
    pub stall_on_demand: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            proximity: true,
            elevating: true,
            stall_on_demand: true,
        }
    }
}
