//! Elevating edges (Sections 4.2 / 4.3).
//!
//! An elevating arc `(v, ℓ): v → w` jumps from a low node `v` straight to
//! a node `w` at hierarchy level ≥ ℓ, summarizing the shortest
//! rank-increasing climb whose interior stays below level `ℓ`. During a
//! long-range query (separation level `j`), a visited node below level `j`
//! follows *only* its elevating arcs toward level `j`, skipping the low
//! hierarchy levels entirely.
//!
//! Correctness contract: a `(v, ℓ)` set is stored only if it is
//! **complete** — the construction search enumerated *every*
//! rank-increasing path from `v` with interior levels < `ℓ` up to its
//! first level-≥`ℓ` node (within a settle budget; over-budget sets are
//! discarded and queries fall back to normal arcs at `v`). Completeness
//! makes the pure-jump rule safe: any upward continuation from `v` factors
//! through one of the recorded targets with the recorded (shortest)
//! prefix distance. Every arc also stores its underlying hierarchy-arc
//! chain so paths unpack exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_contraction::{HArc, Hierarchy};
use ah_graph::{Dist, NodeId, INFINITY, INVALID_NODE};
use ah_search::StampedVec;

/// One elevating arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElevArc {
    /// The level-≥ℓ node reached.
    pub to: NodeId,
    /// Length of the climb.
    pub dist: Dist,
    /// Range into the shared chain buffer holding the underlying
    /// hierarchy arcs as `(tail, arc)` pairs in forward path order.
    chain_start: u32,
    chain_len: u32,
}

/// Per-direction elevating sets for all nodes, CSR-packed.
#[derive(Debug, Clone, Default)]
pub struct ElevatingSide {
    /// `node_offsets[v]..node_offsets[v+1]` indexes `entries`.
    node_offsets: Vec<u32>,
    /// Per (node, level) set: target level and arc range.
    entries: Vec<(u8, u32, u32)>,
    arcs: Vec<ElevArc>,
    chains: Vec<(NodeId, HArc)>,
}

impl ElevArc {
    /// Rebuilds an arc from its stored fields (snapshot loading). The
    /// chain range is validated by [`ElevatingSide::from_raw_parts`], not
    /// here.
    pub fn from_raw_parts(to: NodeId, dist: Dist, chain_start: u32, chain_len: u32) -> Self {
        ElevArc {
            to,
            dist,
            chain_start,
            chain_len,
        }
    }

    /// The `(start, len)` range this arc occupies in the shared chain
    /// buffer (serialization hook).
    pub fn chain_range(&self) -> (u32, u32) {
        (self.chain_start, self.chain_len)
    }
}

impl ElevatingSide {
    /// The elevating arcs of `v` for the *largest* available level ≤
    /// `max_level` that is strictly above `node_level`. Returns the chosen
    /// level and the arcs.
    pub fn best_set(
        &self,
        v: NodeId,
        node_level: u8,
        max_level: u8,
    ) -> Option<(u8, &[ElevArc])> {
        if self.node_offsets.len() <= v as usize + 1 {
            return None; // sets were not built (elevating disabled)
        }
        let lo = self.node_offsets[v as usize] as usize;
        let hi = self.node_offsets[v as usize + 1] as usize;
        // Entries are stored in ascending level order; scan from the top.
        for &(lvl, start, len) in self.entries[lo..hi].iter().rev() {
            if lvl <= max_level && lvl > node_level {
                return Some((lvl, &self.arcs[start as usize..(start + len) as usize]));
            }
        }
        None
    }

    /// The hierarchy-arc chain of an elevating arc (for unpacking).
    pub fn chain(&self, arc: &ElevArc) -> &[(NodeId, HArc)] {
        &self.chains[arc.chain_start as usize..(arc.chain_start + arc.chain_len) as usize]
    }

    /// Number of elevating arcs stored.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Approximate heap footprint.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node_offsets.len() * size_of::<u32>()
            + self.entries.len() * size_of::<(u8, u32, u32)>()
            + self.arcs.len() * size_of::<ElevArc>()
            + self.chains.len() * size_of::<(NodeId, HArc)>()
    }

    /// Borrowed view of the four flat arrays, in the order
    /// `(node_offsets, entries, arcs, chains)` (serialization hook for
    /// `ah_store`; [`ElevatingSide::from_raw_parts`] is the validated
    /// inverse).
    #[allow(clippy::type_complexity)]
    pub fn raw_parts(
        &self,
    ) -> (
        &[u32],
        &[(u8, u32, u32)],
        &[ElevArc],
        &[(NodeId, HArc)],
    ) {
        (&self.node_offsets, &self.entries, &self.arcs, &self.chains)
    }

    /// Reassembles a side from its flat arrays (snapshot loading),
    /// validating that every index range stays inside the array it points
    /// into: node offsets into `entries`, entry ranges into `arcs`, arc
    /// chain ranges into `chains`.
    pub fn from_raw_parts(
        node_offsets: Vec<u32>,
        entries: Vec<(u8, u32, u32)>,
        arcs: Vec<ElevArc>,
        chains: Vec<(NodeId, HArc)>,
    ) -> Result<Self, &'static str> {
        // An entirely empty side (elevating disabled) is valid.
        if node_offsets.is_empty() {
            if !(entries.is_empty() && arcs.is_empty() && chains.is_empty()) {
                return Err("elevating side has entries but no node offsets");
            }
            return Ok(ElevatingSide::default());
        }
        if node_offsets.first() != Some(&0)
            || node_offsets.windows(2).any(|w| w[0] > w[1])
            || node_offsets.last().copied().unwrap_or(0) as usize != entries.len()
        {
            return Err("elevating node offsets are malformed");
        }
        for &(_, start, len) in &entries {
            if (start as usize).saturating_add(len as usize) > arcs.len() {
                return Err("elevating entry range outside the arc array");
            }
        }
        for a in &arcs {
            if (a.chain_start as usize).saturating_add(a.chain_len as usize) > chains.len() {
                return Err("elevating chain range outside the chain buffer");
            }
        }
        Ok(ElevatingSide {
            node_offsets,
            entries,
            arcs,
            chains,
        })
    }
}

/// Forward and backward elevating sets.
#[derive(Debug, Clone, Default)]
pub struct ElevatingSets {
    pub forward: ElevatingSide,
    pub backward: ElevatingSide,
}

impl ElevatingSets {
    /// Total arc count (telemetry).
    pub fn num_arcs(&self) -> usize {
        self.forward.num_arcs() + self.backward.num_arcs()
    }

    /// Approximate heap footprint.
    pub fn size_bytes(&self) -> usize {
        self.forward.size_bytes() + self.backward.size_bytes()
    }
}

/// Builder accumulating per-node sets before CSR packing.
pub(crate) struct ElevatingBuilder {
    per_node: Vec<Vec<(u8, Vec<(NodeId, Dist, Vec<(NodeId, HArc)>)>)>>,
}

impl ElevatingBuilder {
    pub fn new(n: usize) -> Self {
        ElevatingBuilder {
            per_node: vec![Vec::new(); n],
        }
    }

    pub fn push_set(
        &mut self,
        v: NodeId,
        level: u8,
        arcs: Vec<(NodeId, Dist, Vec<(NodeId, HArc)>)>,
    ) {
        self.per_node[v as usize].push((level, arcs));
    }

    pub fn finish(mut self) -> ElevatingSide {
        let mut side = ElevatingSide::default();
        side.node_offsets.push(0);
        for sets in &mut self.per_node {
            sets.sort_by_key(|&(lvl, _)| lvl);
            for (lvl, arcs) in sets.iter() {
                let start = side.arcs.len() as u32;
                for (to, dist, chain) in arcs {
                    let cs = side.chains.len() as u32;
                    side.chains.extend_from_slice(chain);
                    side.arcs.push(ElevArc {
                        to: *to,
                        dist: *dist,
                        chain_start: cs,
                        chain_len: chain.len() as u32,
                    });
                }
                side.entries
                    .push((*lvl, start, (side.arcs.len() as u32) - start));
            }
            side.node_offsets.push(side.entries.len() as u32);
        }
        side
    }
}

/// A reusable upward search computing one complete `(v, ℓ)` elevating set:
/// expand only through nodes with level < `ℓ`, settle level-≥`ℓ` nodes as
/// targets. Returns `None` if the settle budget was exceeded (set must be
/// discarded).
pub(crate) struct ElevatingSearch {
    dist: StampedVec<Dist>,
    parent: StampedVec<NodeId>,
    arc: StampedVec<HArc>,
    settled: StampedVec<bool>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
}

const NO_ARC: HArc = HArc {
    to: INVALID_NODE,
    dist: INFINITY,
    middle: INVALID_NODE,
};

impl ElevatingSearch {
    pub fn new() -> Self {
        ElevatingSearch {
            dist: StampedVec::new(0, INFINITY),
            parent: StampedVec::new(0, INVALID_NODE),
            arc: StampedVec::new(0, NO_ARC),
            settled: StampedVec::new(0, false),
            heap: BinaryHeap::new(),
        }
    }

    /// Computes the `(v, ℓ)` set in the given direction (`forward` uses
    /// `up_out`, else `up_in`). `levels` are the final node levels.
    #[allow(clippy::type_complexity)]
    pub fn run(
        &mut self,
        h: &Hierarchy,
        levels: &[u8],
        v: NodeId,
        ell: u8,
        forward: bool,
        settle_limit: usize,
    ) -> Option<Vec<(NodeId, Dist, Vec<(NodeId, HArc)>)>> {
        let n = h.num_nodes();
        self.dist.ensure_len(n);
        self.parent.ensure_len(n);
        self.arc.ensure_len(n);
        self.settled.ensure_len(n);
        self.dist.reset();
        self.parent.reset();
        self.arc.reset();
        self.settled.reset();
        self.heap.clear();

        self.dist.set(v as usize, Dist::ZERO);
        self.heap.push(Reverse((Dist::ZERO, v)));
        let mut targets: Vec<NodeId> = Vec::new();
        let mut settled_count = 0usize;

        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.settled.get(u as usize) {
                continue;
            }
            self.settled.set(u as usize, true);
            settled_count += 1;
            if settled_count > settle_limit {
                return None; // incomplete: discard
            }
            if u != v && levels[u as usize] >= ell {
                targets.push(u);
                continue; // settle as target, do not climb further
            }
            let arcs = if forward { h.up_out(u) } else { h.up_in(u) };
            for a in arcs {
                if self.settled.get(a.to as usize) {
                    continue;
                }
                let nd = d.concat(a.dist);
                if nd < self.dist.get(a.to as usize) {
                    self.dist.set(a.to as usize, nd);
                    self.parent.set(a.to as usize, u);
                    self.arc.set(a.to as usize, *a);
                    self.heap.push(Reverse((nd, a.to)));
                }
            }
        }

        let mut out = Vec::with_capacity(targets.len());
        for t in targets {
            // Reconstruct the chain as (tail, arc) pairs in forward path
            // order. Forward runs walk t → v and reverse (path v → … → t);
            // backward runs walk the forward orientation directly
            // (path t → … → v), flipping each stored up_in arc.
            let mut chain: Vec<(NodeId, HArc)> = Vec::new();
            let mut cur = t;
            while cur != v {
                let p = self.parent.get(cur as usize);
                let a = self.arc.get(cur as usize);
                if forward {
                    chain.push((p, a));
                } else {
                    chain.push((
                        cur,
                        HArc {
                            to: p,
                            dist: a.dist,
                            middle: a.middle,
                        },
                    ));
                }
                cur = p;
            }
            if forward {
                chain.reverse();
            }
            out.push((t, self.dist.get(t as usize), chain));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_contraction::{contract_with_order, ContractionConfig};

    /// Line 0-1-2-3-4 with levels [0,0,1,0,2] and rank = by (level, id):
    /// order 0,1,3,2,4.
    fn setup() -> (ah_graph::Graph, Hierarchy, Vec<u8>) {
        let g = ah_data::fixtures::line(5, 10);
        let levels = vec![0u8, 0, 1, 0, 2];
        let mut ids: Vec<NodeId> = (0..5).collect();
        ids.sort_by_key(|&v| (levels[v as usize], v));
        let h = contract_with_order(&g, &ids, ContractionConfig::default());
        (g, h, levels)
    }

    #[test]
    fn forward_set_reaches_first_high_node() {
        let (_g, h, levels) = setup();
        let mut es = ElevatingSearch::new();
        // From node 0, climb to level ≥ 1: first such node on the line is 2.
        let set = es.run(&h, &levels, 0, 1, true, 100).unwrap();
        let tos: Vec<NodeId> = set.iter().map(|&(t, _, _)| t).collect();
        assert!(tos.contains(&2), "targets: {tos:?}");
        for (t, d, chain) in &set {
            // Chain distances telescope to the recorded distance.
            let sum = chain
                .iter()
                .fold(Dist::ZERO, |acc, (_, a)| acc.concat(a.dist));
            assert_eq!(sum, *d, "chain of target {t}");
            assert_eq!(chain.last().unwrap().1.to, *t);
        }
    }

    #[test]
    fn set_discarded_when_budget_exceeded() {
        let (_g, h, levels) = setup();
        let mut es = ElevatingSearch::new();
        assert!(es.run(&h, &levels, 0, 2, true, 1).is_none());
    }

    #[test]
    fn builder_roundtrip() {
        let (_g, h, levels) = setup();
        let mut es = ElevatingSearch::new();
        let set = es.run(&h, &levels, 0, 1, true, 100).unwrap();
        let mut b = ElevatingBuilder::new(5);
        b.push_set(0, 1, set.clone());
        let side = b.finish();
        let (lvl, arcs) = side.best_set(0, 0, 3).unwrap();
        assert_eq!(lvl, 1);
        assert_eq!(arcs.len(), set.len());
        for (arc, (t, d, chain)) in arcs.iter().zip(&set) {
            assert_eq!(arc.to, *t);
            assert_eq!(arc.dist, *d);
            assert_eq!(side.chain(arc).len(), chain.len());
        }
        // No set above the node's own level 1 → none for node_level = 1.
        assert!(side.best_set(0, 1, 3).is_none());
        // Cap below the stored level → none.
        assert!(side.best_set(0, 0, 0).is_none());
    }

    #[test]
    fn backward_set_mirrors() {
        let (_g, h, levels) = setup();
        let mut es = ElevatingSearch::new();
        // Backward from node 0: climbs over up_in arcs (paths ending at 0).
        let set = es.run(&h, &levels, 0, 1, false, 100).unwrap();
        let entry = set
            .iter()
            .find(|&&(t, _, _)| t == 2)
            .expect("node 2 reachable backward");
        let (t, d, chain) = entry;
        // Chain is in forward path order t → … → 0.
        assert_eq!(chain.first().unwrap().0, *t);
        assert_eq!(chain.last().unwrap().1.to, 0);
        let sum = chain
            .iter()
            .fold(Dist::ZERO, |acc, (_, a)| acc.concat(a.dist));
        assert_eq!(sum, *d);
    }
}
