//! The Arterial Hierarchy index: construction and accessors.

use ah_arterial::{assign_levels, SelectionConfig};
use ah_contraction::{contract_with_order, Hierarchy};
use ah_graph::{Graph, NodeId, Point};
use ah_grid::GridHierarchy;

use crate::config::BuildConfig;
use crate::elevating::{ElevatingBuilder, ElevatingSearch, ElevatingSets};
use crate::ranking::{rank_nodes, Ranking};

/// Aggregate facts about a built index (experiment telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Grid levels `h`.
    pub h: u32,
    /// Nodes per hierarchy level (after downgrading).
    pub level_histogram: Vec<usize>,
    /// Shortcut arcs in the contracted hierarchy.
    pub shortcuts: usize,
    /// Elevating arcs (both directions).
    pub elevating_arcs: usize,
    /// Approximate index size in bytes (hierarchy + elevating sets +
    /// levels + coordinates).
    pub size_bytes: usize,
}

/// The Arterial Hierarchy over one road network. Immutable once built;
/// queries run through [`crate::AhQuery`], which holds the per-thread
/// mutable search state.
pub struct AhIndex {
    pub(crate) grid: GridHierarchy,
    pub(crate) hierarchy: Hierarchy,
    /// Final hierarchy level per node.
    pub(crate) level: Vec<u8>,
    /// Node coordinates (for grid predicates at query time).
    pub(crate) coords: Vec<Point>,
    pub(crate) elevating: ElevatingSets,
}

impl AhIndex {
    /// Builds the index: level assignment (Section 4.2) → ranking
    /// (Section 4.4) → rank-ordered contraction → elevating sets.
    pub fn build(g: &Graph, cfg: &BuildConfig) -> AhIndex {
        let la = assign_levels(
            g,
            &SelectionConfig {
                max_levels: cfg.max_levels,
            },
        );
        let Ranking { level, order, .. } =
            rank_nodes(&la, cfg.vertex_cover_rank, cfg.downgrade_non_cover);
        let hierarchy = contract_with_order(g, &order, cfg.contraction);

        let elevating = if cfg.elevating_edges {
            build_elevating(g, &la.grid, &hierarchy, &level, cfg)
        } else {
            ElevatingSets::default()
        };

        AhIndex {
            grid: la.grid,
            hierarchy,
            level,
            coords: g.coords().to_vec(),
            elevating,
        }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.level.len()
    }

    /// The grid hierarchy the index was built against.
    pub fn grid(&self) -> &GridHierarchy {
        &self.grid
    }

    /// Hierarchy level of `v`.
    pub fn level_of(&self, v: NodeId) -> u8 {
        self.level[v as usize]
    }

    /// The contracted hierarchy (exposed for diagnostics and benches).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> IndexStats {
        let h = self.grid.levels();
        let mut hist = vec![0usize; h as usize + 1];
        for &l in &self.level {
            hist[(l as usize).min(h as usize)] += 1;
        }
        IndexStats {
            h,
            level_histogram: hist,
            shortcuts: self.hierarchy.num_shortcuts(),
            elevating_arcs: self.elevating.num_arcs(),
            size_bytes: self.size_bytes(),
        }
    }

    /// Approximate heap footprint of the index (Figure 10a accounting).
    pub fn size_bytes(&self) -> usize {
        self.hierarchy.size_bytes()
            + self.elevating.size_bytes()
            + self.level.len()
            + self.coords.len() * std::mem::size_of::<Point>()
    }
}

/// Builds the forward/backward elevating sets for every border node and
/// level where the budgeted search certifies completeness.
fn build_elevating(
    g: &Graph,
    grid: &GridHierarchy,
    hierarchy: &Hierarchy,
    level: &[u8],
    cfg: &BuildConfig,
) -> ElevatingSets {
    let n = g.num_nodes();
    let h = grid.levels();
    let mut search = ElevatingSearch::new();
    let mut fwd = ElevatingBuilder::new(n);
    let mut bwd = ElevatingBuilder::new(n);

    for v in 0..n as NodeId {
        let own = level[v as usize];
        for ell in (own as u32 + 1)..=h {
            if !is_border_at(g, grid, v, ell) {
                continue;
            }
            let lvl = ell as u8;
            if let Some(set) =
                search.run(hierarchy, level, v, lvl, true, cfg.elevating_settle_limit)
            {
                if !set.is_empty() && set.len() <= cfg.elevating_max_arcs {
                    fwd.push_set(v, lvl, set);
                }
            }
            if let Some(set) =
                search.run(hierarchy, level, v, lvl, false, cfg.elevating_settle_limit)
            {
                if !set.is_empty() && set.len() <= cfg.elevating_max_arcs {
                    bwd.push_set(v, lvl, set);
                }
            }
        }
    }
    ElevatingSets {
        forward: fwd.finish(),
        backward: bwd.finish(),
    }
}

/// True if `v` is a border node of some (4×4)-cell region of `R_ell`
/// (Definition 2, evaluated on the original edges).
fn is_border_at(g: &Graph, grid: &GridHierarchy, v: NodeId, ell: u32) -> bool {
    let cv = grid.cell_of(ell, g.coord(v));
    for b in grid.regions_containing_cell(ell, cv) {
        if b.in_center_2x2(cv) {
            continue;
        }
        let crosses = |to: NodeId| {
            b.edge_crosses_strip_boundary(cv, grid.cell_of(ell, g.coord(to)))
        };
        if g.out_edges(v).iter().any(|a| crosses(a.head))
            || g.in_edges(v).iter().any(|a| crosses(a.head))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildConfig;

    #[test]
    fn build_smoke_test() {
        let g = ah_data::fixtures::lattice(8, 8, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        assert_eq!(idx.num_nodes(), 64);
        let stats = idx.stats();
        assert!(stats.h >= 2);
        assert_eq!(stats.level_histogram.iter().sum::<usize>(), 64);
        assert!(stats.size_bytes > 0);
    }

    #[test]
    fn build_without_optional_features() {
        let g = ah_data::fixtures::lattice(6, 6, 16);
        let cfg = BuildConfig {
            elevating_edges: false,
            vertex_cover_rank: false,
            downgrade_non_cover: false,
            ..Default::default()
        };
        let idx = AhIndex::build(&g, &cfg);
        assert_eq!(idx.stats().elevating_arcs, 0);
    }

    #[test]
    fn levels_accessible() {
        let g = ah_data::fixtures::lattice(8, 8, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        for v in 0..64u32 {
            assert!(idx.level_of(v) as u32 <= idx.grid().levels());
        }
    }
}
