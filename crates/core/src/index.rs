//! The Arterial Hierarchy index: construction and accessors.

use ah_arterial::{assign_levels, SelectionConfig};
use ah_contraction::{contract_with_order, Hierarchy};
use ah_graph::{Graph, NodeId, Point};
use ah_grid::GridHierarchy;

use crate::config::BuildConfig;
use crate::elevating::{ElevatingBuilder, ElevatingSearch, ElevatingSets};
use crate::ranking::{rank_nodes, Ranking};

/// Aggregate facts about a built index (experiment telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Grid levels `h`.
    pub h: u32,
    /// Nodes per hierarchy level (after downgrading).
    pub level_histogram: Vec<usize>,
    /// Shortcut arcs in the contracted hierarchy.
    pub shortcuts: usize,
    /// Elevating arcs (both directions).
    pub elevating_arcs: usize,
    /// Approximate index size in bytes (hierarchy + elevating sets +
    /// levels + coordinates).
    pub size_bytes: usize,
}

/// The Arterial Hierarchy over one road network. Immutable once built;
/// queries run through [`crate::AhQuery`], which holds the per-thread
/// mutable search state.
pub struct AhIndex {
    pub(crate) grid: GridHierarchy,
    pub(crate) hierarchy: Hierarchy,
    /// Final hierarchy level per node.
    pub(crate) level: Vec<u8>,
    /// Node coordinates (for grid predicates at query time).
    pub(crate) coords: Vec<Point>,
    pub(crate) elevating: ElevatingSets,
}

impl AhIndex {
    /// Builds the index: level assignment (Section 4.2) → ranking
    /// (Section 4.4) → rank-ordered contraction → elevating sets.
    pub fn build(g: &Graph, cfg: &BuildConfig) -> AhIndex {
        let la = assign_levels(
            g,
            &SelectionConfig {
                max_levels: cfg.max_levels,
            },
        );
        let Ranking { level, order, .. } =
            rank_nodes(&la, cfg.vertex_cover_rank, cfg.downgrade_non_cover);
        let hierarchy = contract_with_order(g, &order, cfg.contraction);

        let elevating = if cfg.elevating_edges {
            build_elevating(g, &la.grid, &hierarchy, &level, cfg)
        } else {
            ElevatingSets::default()
        };

        AhIndex {
            grid: la.grid,
            hierarchy,
            level,
            coords: g.coords().to_vec(),
            elevating,
        }
    }

    /// Number of nodes indexed.
    pub fn num_nodes(&self) -> usize {
        self.level.len()
    }

    /// The grid hierarchy the index was built against.
    pub fn grid(&self) -> &GridHierarchy {
        &self.grid
    }

    /// Hierarchy level of `v`.
    pub fn level_of(&self, v: NodeId) -> u8 {
        self.level[v as usize]
    }

    /// The contracted hierarchy (exposed for diagnostics and benches).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> IndexStats {
        let h = self.grid.levels();
        let mut hist = vec![0usize; h as usize + 1];
        for &l in &self.level {
            hist[(l as usize).min(h as usize)] += 1;
        }
        IndexStats {
            h,
            level_histogram: hist,
            shortcuts: self.hierarchy.num_shortcuts(),
            elevating_arcs: self.elevating.num_arcs(),
            size_bytes: self.size_bytes(),
        }
    }

    /// Approximate heap footprint of the index (Figure 10a accounting).
    pub fn size_bytes(&self) -> usize {
        self.hierarchy.size_bytes()
            + self.elevating.size_bytes()
            + self.level.len()
            + self.coords.len() * std::mem::size_of::<Point>()
    }

    /// Borrowed view of every component of the index (serialization hook
    /// for `ah_store`; [`AhIndex::from_raw_parts`] is the validated
    /// inverse).
    pub fn raw_parts(&self) -> AhIndexParts<'_> {
        AhIndexParts {
            grid: &self.grid,
            hierarchy: &self.hierarchy,
            level: &self.level,
            coords: &self.coords,
            elevating: &self.elevating,
        }
    }

    /// Reassembles an index from its components (snapshot loading). The
    /// per-component constructors have already validated internal shapes;
    /// this checks the cross-component invariants: one level, coordinate
    /// and hierarchy entry per node, no level above the grid's `h`, and
    /// every node id referenced by the elevating sets in range — so a
    /// checksum-valid but forged snapshot can never produce an index that
    /// panics or misindexes at query time.
    pub fn from_raw_parts(
        grid: GridHierarchy,
        hierarchy: Hierarchy,
        level: Vec<u8>,
        coords: Vec<Point>,
        elevating: ElevatingSets,
    ) -> Result<AhIndex, &'static str> {
        let n = hierarchy.num_nodes();
        if level.len() != n || coords.len() != n {
            return Err("level/coordinate arrays disagree with the hierarchy size");
        }
        let h = grid.levels();
        if level.iter().any(|&l| l as u32 > h) {
            return Err("node level above the grid hierarchy height");
        }
        for side in [&elevating.forward, &elevating.backward] {
            validate_side_node_ids(side, n)?;
        }
        Ok(AhIndex {
            grid,
            hierarchy,
            level,
            coords,
            elevating,
        })
    }
}

/// Checks that every node id an elevating side mentions — jump targets,
/// chain tails, chain arc endpoints and middle nodes — indexes a real
/// node. [`crate::ElevatingSide::from_raw_parts`] validates the side's
/// *internal* ranges; the node count is a cross-component fact only the
/// index constructor knows.
fn validate_side_node_ids(
    side: &crate::ElevatingSide,
    n: usize,
) -> Result<(), &'static str> {
    use ah_graph::INVALID_NODE;
    let (node_offsets, _, arcs, chains) = side.raw_parts();
    if !node_offsets.is_empty() && node_offsets.len() != n + 1 {
        return Err("elevating node-offset array disagrees with the node count");
    }
    if arcs.iter().any(|a| a.to as usize >= n) {
        return Err("elevating arc target out of range");
    }
    for &(tail, arc) in chains {
        if tail as usize >= n
            || arc.to as usize >= n
            || (arc.middle != INVALID_NODE && arc.middle as usize >= n)
        {
            return Err("elevating chain node out of range");
        }
    }
    Ok(())
}

/// Borrowed view of an [`AhIndex`]'s components, as returned by
/// [`AhIndex::raw_parts`].
#[derive(Clone, Copy)]
pub struct AhIndexParts<'a> {
    /// Grid geometry the proximity constraint evaluates against.
    pub grid: &'a GridHierarchy,
    /// The contracted hierarchy.
    pub hierarchy: &'a Hierarchy,
    /// Final hierarchy level per node.
    pub level: &'a [u8],
    /// Node coordinates.
    pub coords: &'a [Point],
    /// Forward/backward elevating sets.
    pub elevating: &'a ElevatingSets,
}

/// Builds the forward/backward elevating sets for every border node and
/// level where the budgeted search certifies completeness.
fn build_elevating(
    g: &Graph,
    grid: &GridHierarchy,
    hierarchy: &Hierarchy,
    level: &[u8],
    cfg: &BuildConfig,
) -> ElevatingSets {
    let n = g.num_nodes();
    let h = grid.levels();
    let mut search = ElevatingSearch::new();
    let mut fwd = ElevatingBuilder::new(n);
    let mut bwd = ElevatingBuilder::new(n);

    for v in 0..n as NodeId {
        let own = level[v as usize];
        for ell in (own as u32 + 1)..=h {
            if !is_border_at(g, grid, v, ell) {
                continue;
            }
            let lvl = ell as u8;
            if let Some(set) =
                search.run(hierarchy, level, v, lvl, true, cfg.elevating_settle_limit)
            {
                if !set.is_empty() && set.len() <= cfg.elevating_max_arcs {
                    fwd.push_set(v, lvl, set);
                }
            }
            if let Some(set) =
                search.run(hierarchy, level, v, lvl, false, cfg.elevating_settle_limit)
            {
                if !set.is_empty() && set.len() <= cfg.elevating_max_arcs {
                    bwd.push_set(v, lvl, set);
                }
            }
        }
    }
    ElevatingSets {
        forward: fwd.finish(),
        backward: bwd.finish(),
    }
}

/// True if `v` is a border node of some (4×4)-cell region of `R_ell`
/// (Definition 2, evaluated on the original edges).
fn is_border_at(g: &Graph, grid: &GridHierarchy, v: NodeId, ell: u32) -> bool {
    let cv = grid.cell_of(ell, g.coord(v));
    for b in grid.regions_containing_cell(ell, cv) {
        if b.in_center_2x2(cv) {
            continue;
        }
        let crosses = |to: NodeId| {
            b.edge_crosses_strip_boundary(cv, grid.cell_of(ell, g.coord(to)))
        };
        if g.out_edges(v).iter().any(|a| crosses(a.head))
            || g.in_edges(v).iter().any(|a| crosses(a.head))
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildConfig;

    #[test]
    fn build_smoke_test() {
        let g = ah_data::fixtures::lattice(8, 8, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        assert_eq!(idx.num_nodes(), 64);
        let stats = idx.stats();
        assert!(stats.h >= 2);
        assert_eq!(stats.level_histogram.iter().sum::<usize>(), 64);
        assert!(stats.size_bytes > 0);
    }

    #[test]
    fn build_without_optional_features() {
        let g = ah_data::fixtures::lattice(6, 6, 16);
        let cfg = BuildConfig {
            elevating_edges: false,
            vertex_cover_rank: false,
            downgrade_non_cover: false,
            ..Default::default()
        };
        let idx = AhIndex::build(&g, &cfg);
        assert_eq!(idx.stats().elevating_arcs, 0);
    }

    #[test]
    fn from_raw_parts_rejects_forged_elevating_node_ids() {
        use crate::{ElevArc, ElevatingSets, ElevatingSide};
        use ah_graph::Dist;

        let g = ah_data::fixtures::lattice(6, 6, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let p = idx.raw_parts();

        // An elevating arc whose jump target indexes far past the node
        // arrays: internally consistent (chain range [0,0) is valid), so
        // only the cross-component check can reject it.
        let forged = ElevatingSide::from_raw_parts(
            std::iter::once(0)
                .chain((0..idx.num_nodes()).map(|i| (i >= 1) as u32))
                .collect(),
            vec![(1, 0, 1)],
            vec![ElevArc::from_raw_parts(0xFFFF_0000, Dist::ZERO, 0, 0)],
            vec![],
        )
        .unwrap();
        let err = AhIndex::from_raw_parts(
            p.grid.clone(),
            p.hierarchy.clone(),
            p.level.to_vec(),
            p.coords.to_vec(),
            ElevatingSets {
                forward: forged,
                backward: ElevatingSide::default(),
            },
        );
        assert!(err.is_err(), "forged elevating target must be rejected");
    }

    #[test]
    fn levels_accessible() {
        let g = ah_data::fixtures::lattice(8, 8, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        for v in 0..64u32 {
            assert!(idx.level_of(v) as u32 <= idx.grid().levels());
        }
    }
}
