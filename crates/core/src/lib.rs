//! **Arterial Hierarchy (AH)** — the primary contribution of Zhu, Ma, Xiao,
//! Luo, Tang, Zhou: *Shortest Path and Distance Queries on Road Networks:
//! Towards Bridging Theory and Practice* (SIGMOD 2013).
//!
//! AH is an index over a road network that answers exact distance queries
//! in `Õ(log α)` time and shortest-path queries in `Õ(k + log α)` time
//! (`α` the coordinate aspect ratio, `k` the path length), assuming the
//! network has constant *arterial dimension* (few important through-roads
//! cross any grid bisector — empirically true for real road networks,
//! Section 2 / Figure 3).
//!
//! # Pipeline
//!
//! 1. **Levels** ([`ah_arterial::assign_levels`]): nodes are assigned to
//!    `h+1` hierarchy levels by the incremental pseudo-arterial
//!    construction of Section 4.2.
//! 2. **Ranks** (`ranking` module): inside each level a strict total order is
//!    derived from a greedy vertex cover of the pseudo-arterial edge set
//!    (Section 4.4), including the paper's *downgrading* optimization;
//!    level 0 is ordered pseudo-randomly.
//! 3. **Shortcuts**: nodes are contracted in rank order
//!    ([`ah_contraction::contract_with_order`]); every shortcut carries a
//!    middle node, so a shortcut expands into a two-hop path in O(1) and a
//!    full path unpacks in O(k) (Section 4.1).
//! 4. **Elevating edges** (`elevating` module): border nodes get precomputed
//!    multi-hop jumps to the first level-`ℓ` node of every upward path, so
//!    long-range queries skip the low levels entirely (Sections 4.2/4.3).
//!
//! # Queries
//!
//! [`AhQuery`] runs the bidirectional upward search of Section 4.3 with the
//! **rank constraint** (only climb), the **proximity constraint** (a
//! level-`i` node is only visited inside the (5×5)-cell window of
//! `R_(i+1)` around the query endpoint) and the **elevating-edge jumps**.
//! Every constraint can be toggled through [`QueryConfig`] for ablation.
//!
//! ```
//! use ah_core::{AhIndex, AhQuery, BuildConfig};
//!
//! let g = ah_data::fixtures::lattice(8, 8, 16);
//! let idx = AhIndex::build(&g, &BuildConfig::default());
//! let mut q = AhQuery::new();
//! let d = q.distance(&idx, 0, 63).expect("connected");
//! assert_eq!(d, ah_search::dijkstra_distance(&g, 0, 63).unwrap().length);
//! let path = q.path(&idx, 0, 63).unwrap();
//! path.verify(&g).unwrap();
//! ```

mod config;
mod elevating;
mod index;
mod query;
mod ranking;

pub use config::{BuildConfig, QueryConfig};
pub use elevating::{ElevArc, ElevatingSets, ElevatingSide};
pub use index::{AhIndex, AhIndexParts, IndexStats};
pub use query::AhQuery;
pub use ranking::{greedy_cover_sequence, rank_nodes, Ranking};

// Concurrency contract, checked at compile time: `AhIndex` is immutable
// once built, so one index handle is shared by reference across all
// `ah_server` workers; the mutable search state lives in `AhQuery`, which
// only needs to be movable into a worker thread.
const fn _assert_send_sync<T: Send + Sync>() {}
const fn _assert_send<T: Send>() {}
const _: () = _assert_send_sync::<AhIndex>();
const _: () = _assert_send::<AhQuery>();
