//! The AH query algorithm (Section 4.3): bidirectional upward search with
//! rank, proximity and elevating-edge rules.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_contraction::HArc;
use ah_graph::{Dist, NodeId, Path, Point, INFINITY, INVALID_NODE};
use ah_obs::CostCounters;
use ah_search::StampedVec;

use crate::config::QueryConfig;
use crate::elevating::ElevArc;
use crate::index::AhIndex;

/// How a node was reached: over a hierarchy arc or an elevating arc.
#[derive(Debug, Clone, Copy)]
enum PArc {
    None,
    H(HArc),
    E(ElevArc),
}

/// Reusable AH query state. Create once per thread, run many queries.
#[derive(Debug)]
pub struct AhQuery {
    /// Constraint toggles (ablation).
    pub cfg: QueryConfig,
    dist_f: StampedVec<Dist>,
    dist_b: StampedVec<Dist>,
    parent_f: StampedVec<NodeId>,
    parent_b: StampedVec<NodeId>,
    parc_f: StampedVec<PArc>,
    parc_b: StampedVec<PArc>,
    settled_f: StampedVec<bool>,
    settled_b: StampedVec<bool>,
    heap_f: BinaryHeap<Reverse<(Dist, NodeId)>>,
    heap_b: BinaryHeap<Reverse<(Dist, NodeId)>>,
    meeting: Option<NodeId>,
    /// Nodes settled by the last query (telemetry for the experiments).
    pub settled_count: usize,
    cost: CostCounters,
}

impl Default for AhQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl AhQuery {
    /// Creates a query engine with the paper's default constraints.
    pub fn new() -> Self {
        Self::with_config(QueryConfig::default())
    }

    /// Creates a query engine with explicit constraint toggles.
    pub fn with_config(cfg: QueryConfig) -> Self {
        AhQuery {
            cfg,
            dist_f: StampedVec::new(0, INFINITY),
            dist_b: StampedVec::new(0, INFINITY),
            parent_f: StampedVec::new(0, INVALID_NODE),
            parent_b: StampedVec::new(0, INVALID_NODE),
            parc_f: StampedVec::new(0, PArc::None),
            parc_b: StampedVec::new(0, PArc::None),
            settled_f: StampedVec::new(0, false),
            settled_b: StampedVec::new(0, false),
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            meeting: None,
            settled_count: 0,
            cost: CostCounters::default(),
        }
    }

    /// Algorithmic cost accumulated since the last
    /// [`take_cost`](Self::take_cost) drain. Unlike
    /// [`settled_count`](Self::settled_count) (which resets per query)
    /// this spans queries, so a request composed of several point
    /// queries drains one total.
    pub fn cost(&self) -> &CostCounters {
        &self.cost
    }

    /// Drains and returns the accumulated cost tally.
    pub fn take_cost(&mut self) -> CostCounters {
        self.cost.take()
    }

    /// Network distance from `s` to `t`, or `None` if unreachable.
    pub fn distance(&mut self, idx: &AhIndex, s: NodeId, t: NodeId) -> Option<u64> {
        self.distance_full(idx, s, t).map(|d| d.length)
    }

    /// Distance with the nuance component (for cross-method equivalence
    /// tests).
    pub fn distance_full(&mut self, idx: &AhIndex, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(idx, s, t)
    }

    /// Shortest path from `s` to `t` in the original network.
    pub fn path(&mut self, idx: &AhIndex, s: NodeId, t: NodeId) -> Option<Path> {
        let dist = self.search(idx, s, t)?;
        let m = self.meeting.expect("finite distance implies meeting");
        // Forward half: hierarchy/elevating arcs s → … → m.
        let mut fwd: Vec<(NodeId, PArc)> = Vec::new();
        let mut cur = m;
        while self.parent_f.get(cur as usize) != INVALID_NODE {
            let p = self.parent_f.get(cur as usize);
            fwd.push((p, self.parc_f.get(cur as usize)));
            cur = p;
        }
        fwd.reverse();
        let mut nodes = vec![s];
        for (tail, parc) in fwd {
            unpack_parc(idx, tail, parc, true, &mut nodes);
        }
        // Backward half: m → … → t, arcs already forward-oriented.
        let mut cur = m;
        while self.parent_b.get(cur as usize) != INVALID_NODE {
            let parc = self.parc_b.get(cur as usize);
            let next = self.parent_b.get(cur as usize);
            unpack_parc(idx, cur, parc, false, &mut nodes);
            cur = next;
        }
        debug_assert_eq!(*nodes.last().unwrap(), t);
        Some(Path { nodes, dist })
    }

    fn search(&mut self, idx: &AhIndex, s: NodeId, t: NodeId) -> Option<Dist> {
        let n = idx.num_nodes();
        for v in [&mut self.dist_f, &mut self.dist_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.parent_f, &mut self.parent_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.parc_f, &mut self.parc_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.settled_f, &mut self.settled_b] {
            v.ensure_len(n);
            v.reset();
        }
        self.heap_f.clear();
        self.heap_b.clear();
        self.meeting = None;
        self.settled_count = 0;

        if s == t {
            self.meeting = Some(s);
            return Some(Dist::ZERO);
        }

        let coord_s = idx.coords[s as usize];
        let coord_t = idx.coords[t as usize];
        // Lemma 3: the shortest path must climb to the separation level, so
        // elevating jumps may target it directly.
        let sep = idx.grid.separation_level(coord_s, coord_t).unwrap_or(0) as u8;

        self.dist_f.set(s as usize, Dist::ZERO);
        self.dist_b.set(t as usize, Dist::ZERO);
        self.heap_f.push(Reverse((Dist::ZERO, s)));
        self.heap_b.push(Reverse((Dist::ZERO, t)));

        let mut best = INFINITY;
        loop {
            let top_f = self
                .heap_f
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            let top_b = self
                .heap_b
                .peek()
                .map(|Reverse((d, _))| *d)
                .unwrap_or(INFINITY);
            let go_f = top_f < best;
            let go_b = top_b < best;
            if !go_f && !go_b {
                break;
            }
            let forward = if go_f && go_b { top_f <= top_b } else { go_f };

            if forward {
                let Reverse((d, u)) = self.heap_f.pop().expect("peeked");
                self.cost.heap_pops += 1;
                if self.settled_f.get(u as usize) {
                    continue;
                }
                self.settled_f.set(u as usize, true);
                self.settled_count += 1;
                self.cost.nodes_settled += 1;
                let other = self.dist_b.get(u as usize);
                if !other.is_infinite() {
                    let through = d.concat(other);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                if self.cfg.stall_on_demand && stalled(idx, u, d, &self.dist_f, true) {
                    continue;
                }
                expand(
                    idx,
                    &self.cfg,
                    u,
                    d,
                    coord_s,
                    sep,
                    true,
                    &mut self.dist_f,
                    &mut self.parent_f,
                    &mut self.parc_f,
                    &self.settled_f,
                    &mut self.heap_f,
                    &mut self.cost,
                );
            } else {
                let Reverse((d, u)) = self.heap_b.pop().expect("peeked");
                self.cost.heap_pops += 1;
                if self.settled_b.get(u as usize) {
                    continue;
                }
                self.settled_b.set(u as usize, true);
                self.settled_count += 1;
                self.cost.nodes_settled += 1;
                let other = self.dist_f.get(u as usize);
                if !other.is_infinite() {
                    let through = other.concat(d);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                if self.cfg.stall_on_demand && stalled(idx, u, d, &self.dist_b, false) {
                    continue;
                }
                expand(
                    idx,
                    &self.cfg,
                    u,
                    d,
                    coord_t,
                    sep,
                    false,
                    &mut self.dist_b,
                    &mut self.parent_b,
                    &mut self.parc_b,
                    &self.settled_b,
                    &mut self.heap_b,
                    &mut self.cost,
                );
            }
        }

        (!best.is_infinite()).then_some(best)
    }
}

/// Proximity constraint (Sections 3.2/4.3): a level-`i` node may be
/// relaxed only if it shares a (3×3)-cell region of `R_(i+1)` with the
/// side's query endpoint. Top-level nodes always pass.
#[inline]
fn proximity_ok(idx: &AhIndex, endpoint: Point, x: NodeId) -> bool {
    let lx = idx.level[x as usize] as u32;
    let h = idx.grid.levels();
    if lx >= h {
        return true;
    }
    idx.grid
        .same_3x3_region(lx + 1, idx.coords[x as usize], endpoint)
}

/// Relaxes the out-arcs of `u` on one side, applying the elevating-edge
/// rule (jump when a complete set toward the separation level exists) and
/// the proximity constraint.
#[allow(clippy::too_many_arguments)]
fn expand(
    idx: &AhIndex,
    cfg: &QueryConfig,
    u: NodeId,
    d: Dist,
    endpoint: Point,
    sep: u8,
    forward: bool,
    dist: &mut StampedVec<Dist>,
    parent: &mut StampedVec<NodeId>,
    parc: &mut StampedVec<PArc>,
    settled: &StampedVec<bool>,
    heap: &mut BinaryHeap<Reverse<(Dist, NodeId)>>,
    cost: &mut CostCounters,
) {
    let own_level = idx.level[u as usize];
    if cfg.elevating && own_level < sep {
        let side = if forward {
            &idx.elevating.forward
        } else {
            &idx.elevating.backward
        };
        if let Some((_lvl, arcs)) = side.best_set(u, own_level, sep) {
            cost.edges_relaxed += arcs.len() as u64;
            for a in arcs {
                if settled.get(a.to as usize) {
                    continue;
                }
                if cfg.proximity && !proximity_ok(idx, endpoint, a.to) {
                    continue;
                }
                let nd = d.concat(a.dist);
                if nd < dist.get(a.to as usize) {
                    dist.set(a.to as usize, nd);
                    parent.set(a.to as usize, u);
                    parc.set(a.to as usize, PArc::E(*a));
                    heap.push(Reverse((nd, a.to)));
                }
            }
            return; // pure jump: normal arcs are skipped entirely
        }
    }
    let arcs = if forward {
        idx.hierarchy.up_out(u)
    } else {
        idx.hierarchy.up_in(u)
    };
    cost.edges_relaxed += arcs.len() as u64;
    for a in arcs {
        if settled.get(a.to as usize) {
            continue;
        }
        if cfg.proximity && !proximity_ok(idx, endpoint, a.to) {
            continue;
        }
        let nd = d.concat(a.dist);
        if nd < dist.get(a.to as usize) {
            dist.set(a.to as usize, nd);
            parent.set(a.to as usize, u);
            let stored = if forward {
                *a
            } else {
                // Store the real arc a.to → u in forward orientation.
                HArc {
                    to: u,
                    dist: a.dist,
                    middle: a.middle,
                }
            };
            parc.set(a.to as usize, PArc::H(stored));
            heap.push(Reverse((nd, a.to)));
        }
    }
}

/// Stall-on-demand (identical to the CH variant, on the AH hierarchy).
fn stalled(idx: &AhIndex, u: NodeId, d: Dist, dist: &StampedVec<Dist>, forward: bool) -> bool {
    let arcs = if forward {
        idx.hierarchy.up_in(u)
    } else {
        idx.hierarchy.up_out(u)
    };
    for a in arcs {
        let dw = dist.get(a.to as usize);
        if !dw.is_infinite() && dw.concat(a.dist) < d {
            return true;
        }
    }
    false
}

/// Appends the original-edge expansion of one parent arc to `nodes`.
/// For the forward side, `tail` is the arc's tail; for the backward side
/// the stored arcs are already forward-oriented with `tail` = the current
/// node walking toward `t`.
fn unpack_parc(idx: &AhIndex, tail: NodeId, parc: PArc, forward: bool, nodes: &mut Vec<NodeId>) {
    match parc {
        PArc::None => unreachable!("unpacking a node without a parent arc"),
        PArc::H(arc) => idx.hierarchy.unpack_arc(tail, &arc, nodes),
        PArc::E(earc) => {
            let side = if forward {
                &idx.elevating.forward
            } else {
                &idx.elevating.backward
            };
            for (t, harc) in side.chain(&earc) {
                idx.hierarchy.unpack_arc(*t, harc, nodes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AhIndex, BuildConfig, QueryConfig};
    use ah_search::{dijkstra_distance, dijkstra_path};

    fn check_all_pairs(g: &ah_graph::Graph, idx: &AhIndex, cfg: QueryConfig, stride: usize) {
        let mut q = AhQuery::with_config(cfg);
        let n = g.num_nodes() as NodeId;
        for s in (0..n).step_by(stride) {
            for t in (0..n).step_by(stride) {
                let want = dijkstra_distance(g, s, t);
                let got = q.distance_full(idx, s, t);
                assert_eq!(
                    got, want,
                    "distance ({s},{t}) with cfg {cfg:?}"
                );
                if let Some(want_path) = dijkstra_path(g, s, t) {
                    let p = q.path(idx, s, t).expect("path exists");
                    p.verify(g).unwrap();
                    assert_eq!(p.dist, want_path.dist, "path ({s},{t})");
                    assert_eq!(p.source(), s);
                    assert_eq!(p.target(), t);
                }
            }
        }
    }

    fn all_configs() -> Vec<QueryConfig> {
        let mut v = Vec::new();
        for proximity in [false, true] {
            for elevating in [false, true] {
                for stall in [false, true] {
                    v.push(QueryConfig {
                        proximity,
                        elevating,
                        stall_on_demand: stall,
                    });
                }
            }
        }
        v
    }

    #[test]
    fn exhaustive_on_lattice() {
        let g = ah_data::fixtures::lattice(7, 7, 16);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        for cfg in all_configs() {
            check_all_pairs(&g, &idx, cfg, 3);
        }
    }

    #[test]
    fn exhaustive_on_figure1() {
        let g = ah_data::fixtures::figure1_like();
        let idx = AhIndex::build(&g, &BuildConfig::default());
        for cfg in all_configs() {
            check_all_pairs(&g, &idx, cfg, 1);
        }
    }

    #[test]
    fn road_network_with_one_ways() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 14,
            height: 14,
            one_way: 0.25,
            seed: 21,
            ..Default::default()
        });
        let idx = AhIndex::build(&g, &BuildConfig::default());
        check_all_pairs(&g, &idx, QueryConfig::default(), 7);
        check_all_pairs(
            &g,
            &idx,
            QueryConfig {
                proximity: true,
                elevating: false,
                stall_on_demand: false,
            },
            7,
        );
    }

    #[test]
    fn random_geometric_stress() {
        let g = ah_data::random_geometric(90, 700, 150, 17);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        check_all_pairs(&g, &idx, QueryConfig::default(), 5);
    }

    #[test]
    fn ring_and_line() {
        for g in [ah_data::fixtures::ring(16), ah_data::fixtures::line(24, 12)] {
            let idx = AhIndex::build(&g, &BuildConfig::default());
            check_all_pairs(&g, &idx, QueryConfig::default(), 1);
        }
    }

    #[test]
    fn build_config_ablations_stay_correct() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 12,
            height: 12,
            seed: 5,
            ..Default::default()
        });
        for vc in [false, true] {
            for dg in [false, true] {
                for el in [false, true] {
                    let cfg = BuildConfig {
                        vertex_cover_rank: vc,
                        downgrade_non_cover: dg,
                        elevating_edges: el,
                        ..Default::default()
                    };
                    let idx = AhIndex::build(&g, &cfg);
                    check_all_pairs(&g, &idx, QueryConfig::default(), 11);
                }
            }
        }
    }

    #[test]
    fn unreachable_and_self() {
        let mut b = ah_graph::GraphBuilder::new();
        b.add_node(ah_graph::Point::new(0, 0));
        b.add_node(ah_graph::Point::new(100, 100));
        b.add_edge(0, 1, 9);
        let g = b.build();
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let mut q = AhQuery::new();
        assert_eq!(q.distance(&idx, 0, 1), Some(9));
        assert_eq!(q.distance(&idx, 1, 0), None);
        assert!(q.path(&idx, 1, 0).is_none());
        assert_eq!(q.distance(&idx, 1, 1), Some(0));
    }
}
