//! Node ranking and selection (Section 4.4).
//!
//! Within every hierarchy level the shortcut construction needs a strict
//! total order. The paper orders level-`i` cores by a greedy vertex cover
//! of the pseudo-arterial edge graph `S_i` — hub nodes covering many
//! arterial connections rank highest — and *downgrades* cores the cover
//! never needed (their arterial edges are covered by the other endpoint,
//! which keeps its level, so Lemma 3 stays intact). Level 0 uses a
//! pseudo-random order.

use ah_arterial::LevelAssignment;
use ah_graph::NodeId;

/// The strict total order on nodes.
#[derive(Debug, Clone)]
pub struct Ranking {
    /// Final hierarchy level per node (after downgrading).
    pub level: Vec<u8>,
    /// Contraction order: `order[0]` contracted first (lowest rank).
    pub order: Vec<NodeId>,
    /// Rank per node (position in `order`).
    pub rank: Vec<u32>,
}

/// Greedy max-degree vertex cover *sequence* over an edge list: repeatedly
/// emits the node covering the most not-yet-covered edges (the classic
/// linear-time O(log n)-approximation the paper cites). Returns the
/// sequence `ξ`; every edge has at least one endpoint in it.
pub fn greedy_cover_sequence(edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    use std::collections::HashMap;
    if edges.is_empty() {
        return Vec::new();
    }
    // Adjacency over the edge indices.
    let mut incident: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, &(a, b)) in edges.iter().enumerate() {
        incident.entry(a).or_default().push(i);
        if b != a {
            incident.entry(b).or_default().push(i);
        }
    }
    let mut covered = vec![false; edges.len()];
    let mut degree: HashMap<NodeId, usize> = incident
        .iter()
        .map(|(&v, l)| (v, l.len()))
        .collect();
    // Bucket queue over degrees for O(E) total work.
    let max_deg = degree.values().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (&v, &d) in &degree {
        buckets[d].push(v);
    }
    // Deterministic iteration: sort each bucket.
    for b in &mut buckets {
        b.sort_unstable();
    }
    let mut xi = Vec::new();
    let mut remaining = edges.len();
    let mut cur = max_deg;
    while remaining > 0 {
        // Find the highest non-empty bucket with an up-to-date entry.
        while cur > 0 && buckets[cur].is_empty() {
            cur -= 1;
        }
        let Some(v) = buckets[cur].pop() else {
            break;
        };
        let d = *degree.get(&v).unwrap_or(&0);
        if d != cur {
            // Stale entry: reinsert at its true degree.
            if d > 0 {
                buckets[d].push(v);
            }
            continue;
        }
        if d == 0 {
            continue;
        }
        xi.push(v);
        // Cover v's uncovered edges; decrement the other endpoints.
        let Some(edge_ids) = incident.get(&v) else {
            continue;
        };
        for &ei in edge_ids {
            if covered[ei] {
                continue;
            }
            covered[ei] = true;
            remaining -= 1;
            let (a, b) = edges[ei];
            for other in [a, b] {
                if other == v {
                    continue;
                }
                if let Some(dd) = degree.get_mut(&other) {
                    if *dd > 0 {
                        *dd -= 1;
                        if *dd > 0 {
                            buckets[*dd].push(other);
                        }
                    }
                }
            }
        }
        degree.insert(v, 0);
    }
    xi
}

/// SplitMix-style hash used for the pseudo-random level-0 order and as the
/// global tie-break (deterministic across runs).
fn hash_id(v: NodeId) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the strict total order from a [`LevelAssignment`]:
/// `(level, in-level cover rank, hash tie-break)`, with optional
/// downgrading of non-cover cores (processed top level first so cascades
/// settle naturally).
pub fn rank_nodes(
    la: &LevelAssignment,
    vertex_cover_rank: bool,
    downgrade_non_cover: bool,
) -> Ranking {
    let n = la.level.len();
    let h = la.h() as usize;
    let mut level: Vec<u8> = la.level.clone();
    // In-level rank; larger = more important. 0 = bottom of the level.
    let mut in_level: Vec<u32> = vec![0; n];

    if vertex_cover_rank {
        for s in (1..=h).rev() {
            let edges = &la.pseudo_arterial[s - 1];
            let xi = greedy_cover_sequence(edges);
            let mut pos: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
            for (i, &v) in xi.iter().enumerate() {
                pos.insert(v, i as u32);
            }
            let xi_len = xi.len() as u32;
            for v in 0..n {
                if level[v] as usize != s {
                    continue;
                }
                match pos.get(&(v as NodeId)) {
                    Some(&p) => in_level[v] = xi_len - p, // earlier ⇒ higher
                    None => {
                        if downgrade_non_cover && s >= 1 {
                            level[v] = (s - 1) as u8;
                            in_level[v] = 0;
                        } else {
                            in_level[v] = 0;
                        }
                    }
                }
            }
        }
    }

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_unstable_by_key(|&v| {
        (
            level[v as usize],
            in_level[v as usize],
            hash_id(v),
            v,
        )
    });
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    Ranking { level, order, rank }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_sequence_prefers_hubs() {
        // Star: center 0 touches 1..5 → cover = [0].
        let edges: Vec<(u32, u32)> = (1..=5).map(|i| (0, i)).collect();
        let xi = greedy_cover_sequence(&edges);
        assert_eq!(xi, vec![0]);
    }

    #[test]
    fn cover_sequence_covers_every_edge() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)];
        let xi = greedy_cover_sequence(&edges);
        let cover: std::collections::HashSet<u32> = xi.iter().copied().collect();
        for &(a, b) in &edges {
            assert!(cover.contains(&a) || cover.contains(&b), "({a},{b}) uncovered");
        }
    }

    #[test]
    fn cover_sequence_empty() {
        assert!(greedy_cover_sequence(&[]).is_empty());
    }

    #[test]
    fn cover_sequence_deterministic() {
        let edges = vec![(0, 1), (2, 3), (4, 5), (1, 2)];
        assert_eq!(greedy_cover_sequence(&edges), greedy_cover_sequence(&edges));
    }

    #[test]
    fn ranking_is_level_monotone() {
        let g = ah_data::fixtures::lattice(10, 10, 12);
        let la = ah_arterial::assign_levels(&g, &Default::default());
        let r = rank_nodes(&la, true, true);
        // Ranks must sort primarily by (possibly downgraded) level.
        for w in r.order.windows(2) {
            assert!(r.level[w[0] as usize] <= r.level[w[1] as usize]);
        }
        // Permutation sanity.
        let mut sorted = r.order.clone();
        sorted.sort_unstable();
        for (i, v) in sorted.iter().enumerate() {
            assert_eq!(i as u32, *v);
        }
    }

    #[test]
    fn downgrading_only_lowers_levels() {
        let g = ah_data::fixtures::lattice(10, 10, 12);
        let la = ah_arterial::assign_levels(&g, &Default::default());
        let with = rank_nodes(&la, true, true);
        let without = rank_nodes(&la, true, false);
        for v in 0..la.level.len() {
            assert!(with.level[v] <= without.level[v]);
            assert_eq!(without.level[v], la.level[v]);
        }
    }

    #[test]
    fn downgraded_edge_keeps_one_high_endpoint() {
        // The safety property behind downgrading: every pseudo-arterial
        // edge of stage s keeps at least one endpoint at level ≥ s.
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 20,
            height: 20,
            seed: 3,
            ..Default::default()
        });
        let la = ah_arterial::assign_levels(&g, &Default::default());
        let r = rank_nodes(&la, true, true);
        for (idx, edges) in la.pseudo_arterial.iter().enumerate() {
            let s = (idx + 1) as u8;
            for &(a, b) in edges {
                assert!(
                    r.level[a as usize] >= s || r.level[b as usize] >= s,
                    "edge ({a},{b}) lost both endpoints below level {s}"
                );
            }
        }
    }

    #[test]
    fn hash_rank_without_cover() {
        let g = ah_data::fixtures::lattice(6, 6, 12);
        let la = ah_arterial::assign_levels(&g, &Default::default());
        let r = rank_nodes(&la, false, false);
        assert_eq!(r.level, la.level);
        // Still a valid permutation sorted by level.
        for w in r.order.windows(2) {
            assert!(r.level[w[0] as usize] <= r.level[w[1] as usize]);
        }
    }
}
