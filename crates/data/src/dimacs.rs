//! 9th DIMACS implementation challenge file formats.
//!
//! The paper's datasets ship as a distance/time graph file (`.gr`) and a
//! coordinate file (`.co`):
//!
//! ```text
//! c  comment                      c  comment
//! p  sp <n> <m>                   p  aux sp co <n>
//! a  <tail> <head> <weight>       v  <id> <x> <y>
//! ```
//!
//! Node ids are 1-based in the files and converted to 0-based
//! [`ah_graph::NodeId`]s
//! here. `read_graph` pairs the two files into a [`Graph`]; `write_graph`
//! produces files the original tools accept.

use std::io::{self, BufRead, Write};

use ah_graph::{Graph, GraphBuilder, Point};

/// Errors raised by the DIMACS parsers.
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse(usize, String),
    /// The `.gr` and `.co` files disagree on the node count.
    NodeCountMismatch { graph: usize, coords: usize },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "i/o error: {e}"),
            DimacsError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            DimacsError::NodeCountMismatch { graph, coords } => write!(
                f,
                ".gr declares {graph} nodes but .co declares {coords}"
            ),
        }
    }
}

impl std::error::Error for DimacsError {}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// Parses a `.gr` file: returns `(n, edges)` with 0-based endpoints.
pub fn read_gr<R: BufRead>(reader: R) -> Result<(usize, Vec<(u32, u32, u32)>), DimacsError> {
    let mut n: Option<usize> = None;
    let mut edges = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                // "p sp <n> <m>"
                let kind = it.next();
                if kind != Some("sp") {
                    return Err(DimacsError::Parse(lineno, format!("expected 'p sp', got {line:?}")));
                }
                let nn = parse_field(&mut it, lineno, "node count")?;
                let mm: usize = parse_field(&mut it, lineno, "edge count")?;
                n = Some(nn);
                edges.reserve(mm);
            }
            Some("a") => {
                let t: u32 = parse_field(&mut it, lineno, "tail")?;
                let h: u32 = parse_field(&mut it, lineno, "head")?;
                let w: u32 = parse_field(&mut it, lineno, "weight")?;
                if t == 0 || h == 0 {
                    return Err(DimacsError::Parse(lineno, "node ids are 1-based".into()));
                }
                edges.push((t - 1, h - 1, w));
            }
            Some(other) => {
                return Err(DimacsError::Parse(lineno, format!("unknown record {other:?}")));
            }
        }
    }
    let n = n.ok_or(DimacsError::Parse(0, "missing 'p sp' header".into()))?;
    Ok((n, edges))
}

/// Parses a `.co` file: returns coordinates indexed by 0-based node id.
pub fn read_co<R: BufRead>(reader: R) -> Result<Vec<Point>, DimacsError> {
    let mut coords: Vec<Point> = Vec::new();
    let mut declared: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                // "p aux sp co <n>"
                let rest: Vec<&str> = it.collect();
                let nn = rest
                    .last()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| DimacsError::Parse(lineno, "bad 'p' header".into()))?;
                declared = Some(nn);
                coords.resize(nn, Point::new(0, 0));
            }
            Some("v") => {
                let id: usize = parse_field(&mut it, lineno, "node id")?;
                let x: i32 = parse_field(&mut it, lineno, "x")?;
                let y: i32 = parse_field(&mut it, lineno, "y")?;
                if id == 0 || id > coords.len() {
                    return Err(DimacsError::Parse(lineno, format!("node id {id} out of range")));
                }
                coords[id - 1] = Point::new(x, y);
            }
            Some(other) => {
                return Err(DimacsError::Parse(lineno, format!("unknown record {other:?}")));
            }
        }
    }
    if declared.is_none() {
        return Err(DimacsError::Parse(0, "missing 'p aux sp co' header".into()));
    }
    Ok(coords)
}

/// Reads a paired `.gr` + `.co` into a [`Graph`].
pub fn read_graph<R1: BufRead, R2: BufRead>(gr: R1, co: R2) -> Result<Graph, DimacsError> {
    let (n, edges) = read_gr(gr)?;
    let coords = read_co(co)?;
    if coords.len() != n {
        return Err(DimacsError::NodeCountMismatch {
            graph: n,
            coords: coords.len(),
        });
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for p in coords {
        b.add_node(p);
    }
    for (t, h, w) in edges {
        b.add_edge(t, h, w);
    }
    Ok(b.build())
}

/// Writes `g` as a `.gr`/`.co` pair.
pub fn write_graph<W1: Write, W2: Write>(g: &Graph, mut gr: W1, mut co: W2) -> io::Result<()> {
    writeln!(gr, "c generated by ah-data")?;
    writeln!(gr, "p sp {} {}", g.num_nodes(), g.num_edges())?;
    for (t, a) in g.edges() {
        writeln!(gr, "a {} {} {}", t + 1, a.head + 1, a.weight)?;
    }
    writeln!(co, "c generated by ah-data")?;
    writeln!(co, "p aux sp co {}", g.num_nodes())?;
    for v in g.node_ids() {
        let p = g.coord(v);
        writeln!(co, "v {} {} {}", v + 1, p.x, p.y)?;
    }
    Ok(())
}

fn parse_field<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, DimacsError> {
    it.next()
        .and_then(|s| s.parse::<T>().ok())
        .ok_or_else(|| DimacsError::Parse(lineno, format!("missing/invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const GR: &str = "c tiny\np sp 3 3\na 1 2 5\na 2 3 7\na 3 1 2\n";
    const CO: &str = "c tiny\np aux sp co 3\nv 1 0 0\nv 2 10 0\nv 3 0 10\n";

    #[test]
    fn read_pair() {
        let g = read_graph(Cursor::new(GR), Cursor::new(CO)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.coord(2), Point::new(0, 10));
    }

    #[test]
    fn roundtrip() {
        let g = read_graph(Cursor::new(GR), Cursor::new(CO)).unwrap();
        let mut gr_out = Vec::new();
        let mut co_out = Vec::new();
        write_graph(&g, &mut gr_out, &mut co_out).unwrap();
        let g2 = read_graph(Cursor::new(&gr_out), Cursor::new(&co_out)).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for v in g.node_ids() {
            assert_eq!(g.coord(v), g2.coord(v));
            assert_eq!(g.out_edges(v), g2.out_edges(v));
        }
    }

    #[test]
    fn rejects_zero_based_ids() {
        let bad = "p sp 2 1\na 0 1 5\n";
        let err = read_gr(Cursor::new(bad)).unwrap_err();
        assert!(err.to_string().contains("1-based"));
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_gr(Cursor::new("a 1 2 3\n")).unwrap_err();
        assert!(err.to_string().contains("header") || err.to_string().contains("unknown"));
    }

    #[test]
    fn rejects_mismatched_counts() {
        let co_short = "p aux sp co 2\nv 1 0 0\nv 2 1 1\n";
        let err = read_graph(Cursor::new(GR), Cursor::new(co_short)).unwrap_err();
        assert!(matches!(err, DimacsError::NodeCountMismatch { .. }));
    }

    #[test]
    fn rejects_out_of_range_coordinate_id() {
        let bad = "p aux sp co 1\nv 2 0 0\n";
        let err = read_co(Cursor::new(bad)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_garbage_records() {
        let err = read_gr(Cursor::new("p sp 1 0\nq nonsense\n")).unwrap_err();
        assert!(err.to_string().contains("unknown record"));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let gr = "c a\n\nc b\np sp 2 1\nc mid\na 1 2 3\n";
        let (n, edges) = read_gr(Cursor::new(gr)).unwrap();
        assert_eq!(n, 2);
        assert_eq!(edges, vec![(0, 1, 3)]);
    }
}
