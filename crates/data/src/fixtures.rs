//! Tiny deterministic graphs shared by unit tests across the workspace.

use ah_graph::{Graph, GraphBuilder, Point};

/// A bidirectional path `0 — 1 — … — (n-1)` with unit weights, laid out on
/// the x-axis with the given spacing.
pub fn line(n: u32, spacing: i32) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(Point::new(i as i32 * spacing, 0));
    }
    for i in 0..n.saturating_sub(1) {
        b.add_bidirectional_edge(i, i + 1, 1);
    }
    b.build()
}

/// A bidirectional ring of `n` nodes with unit weights, laid out on a
/// square outline.
pub fn ring(n: u32) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new();
    for i in 0..n {
        // Place on a coarse circle-ish square so coordinates are distinct.
        let angle = (i as f64) / (n as f64) * std::f64::consts::TAU;
        let x = (1000.0 * angle.cos()).round() as i32;
        let y = (1000.0 * angle.sin()).round() as i32;
        b.add_node(Point::new(x, y));
    }
    for i in 0..n {
        b.add_bidirectional_edge(i, (i + 1) % n, 1);
    }
    b.build()
}

/// A `w × h` bidirectional unit-weight lattice with the given coordinate
/// spacing; node `(x, y)` has id `y*w + x`.
pub fn lattice(w: u32, h: u32, spacing: i32) -> Graph {
    assert!(w >= 1 && h >= 1);
    let mut b = GraphBuilder::new();
    for y in 0..h {
        for x in 0..w {
            b.add_node(Point::new(x as i32 * spacing, y as i32 * spacing));
        }
    }
    let id = |x: u32, y: u32| y * w + x;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_bidirectional_edge(id(x, y), id(x + 1, y), 1);
            }
            if y + 1 < h {
                b.add_bidirectional_edge(id(x, y), id(x, y + 1), 1);
            }
        }
    }
    b.build()
}

/// The running example in the spirit of the paper's Figure 1: a small
/// two-weight network where a fast "arterial" loop connects two slow local
/// clusters. Eleven nodes, bidirectional.
pub fn figure1_like() -> Graph {
    let mut b = GraphBuilder::new();
    // Local cluster A (west) — slow streets.
    let v1 = b.add_node(Point::new(0, 0));
    let v2 = b.add_node(Point::new(0, 60));
    let v5 = b.add_node(Point::new(20, 80));
    let v9 = b.add_node(Point::new(30, 60));
    let v11 = b.add_node(Point::new(20, 10));
    // Local cluster B (east).
    let v3 = b.add_node(Point::new(120, 70));
    let v4 = b.add_node(Point::new(120, 0));
    let v8 = b.add_node(Point::new(100, 70));
    // Arterial spine.
    let v6 = b.add_node(Point::new(55, 65));
    let v10 = b.add_node(Point::new(75, 55));
    let v7 = b.add_node(Point::new(60, 10));
    for (a, c, w) in [
        (v1, v2, 2),
        (v1, v11, 1),
        (v2, v9, 2),
        (v5, v9, 1),
        (v5, v6, 2),
        (v9, v6, 1),
        (v9, v11, 2),
        (v6, v10, 1),
        (v10, v8, 1),
        (v8, v3, 2),
        (v3, v4, 2),
        (v4, v7, 1),
        (v7, v10, 2),
        (v7, v11, 1),
    ] {
        b.add_bidirectional_edge(a, c, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::strongly_connected_components;

    #[test]
    fn line_shape() {
        let g = line(5, 10);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn ring_is_strongly_connected() {
        let g = ring(8);
        let (_, c) = strongly_connected_components(&g);
        assert_eq!(c, 1);
        assert_eq!(g.num_edges(), 16);
    }

    #[test]
    fn lattice_shape() {
        let g = lattice(3, 4, 5);
        assert_eq!(g.num_nodes(), 12);
        // Horizontal: 2×4, vertical: 3×3, each bidirectional.
        assert_eq!(g.num_edges(), 2 * (2 * 4 + 3 * 3));
    }

    #[test]
    fn figure1_like_is_connected_and_bidirectional() {
        let g = figure1_like();
        assert_eq!(g.num_nodes(), 11);
        let (_, c) = strongly_connected_components(&g);
        assert_eq!(c, 1);
        for (u, a) in g.edges() {
            assert_eq!(g.edge_weight(a.head, u), Some(a.weight));
        }
    }
}
