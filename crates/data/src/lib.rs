//! Dataset substrate: synthetic road networks, DIMACS I/O, fixtures.
//!
//! The paper evaluates on ten US road networks from the 9th DIMACS
//! implementation challenge (48K–24M nodes, travel-time weights). Those
//! files are not bundled here, so this crate provides:
//!
//! * [`synthetic::hierarchical_grid`] — a deterministic generator of
//!   road-*like* networks: a jittered lattice whose rows/columns are
//!   organized into speed tiers (local / collector / arterial / highway),
//!   with random street removals and one-way conversions. The tiered
//!   structure gives the networks the property the paper's machinery
//!   depends on — a small *arterial dimension* (few fast through-roads
//!   cross any bisector) — so every experiment exercises the same code
//!   paths as the real data.
//! * [`synthetic::random_geometric`] — an unstructured geometric graph used
//!   as an adversarial fixture in tests.
//! * [`dimacs`] — readers/writers for the challenge's `.gr`/`.co` formats,
//!   so the real datasets drop in unchanged when available.
//! * [`registry`] — the named dataset family `S0..S9` mirroring Table 2 at
//!   container scale.
//! * [`fixtures`] — tiny deterministic graphs shared by unit tests across
//!   the workspace.

pub mod dimacs;
pub mod fixtures;
pub mod registry;
pub mod synthetic;

pub use registry::{DatasetSpec, REGISTRY};
pub use synthetic::{hierarchical_grid, random_geometric, HierarchicalGridConfig};
