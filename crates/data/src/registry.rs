//! The dataset family mirroring the paper's Table 2 at container scale.
//!
//! The paper's ten datasets range from Delaware (48,812 nodes) to the full
//! US (23,947,347 nodes). We mirror the family with ten synthetic networks
//! `S0..S9` whose sizes double from ~1K to ~260K nodes — large enough to
//! show every asymptotic trend on one machine, small enough to rebuild all
//! indices in a benchmark run. Each spec names the paper dataset it stands
//! in for.

use ah_graph::Graph;

use crate::synthetic::{hierarchical_grid, HierarchicalGridConfig};

/// A named synthetic dataset standing in for one of the paper's networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Registry name (`"S0"` …).
    pub name: &'static str,
    /// The Table 2 dataset this one mirrors.
    pub mirrors: &'static str,
    /// Lattice width (intersections).
    pub width: u32,
    /// Lattice height (intersections).
    pub height: u32,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Approximate node count (before SCC trimming).
    pub fn approx_nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Generates the dataset.
    pub fn build(&self) -> Graph {
        hierarchical_grid(&HierarchicalGridConfig {
            width: self.width,
            height: self.height,
            seed: self.seed,
            ..Default::default()
        })
    }
}

/// The ten-dataset family (Table 2 analogue).
///
/// Sizes double up to S6 and grow by √2 beyond, topping out at ~190K
/// nodes: large enough that every asymptotic trend of Section 6 is visible
/// on commodity hardware, small enough that all indices (including AH's
/// `O(hn²)` worst-case preprocessing) can be built in one benchmarking
/// session. The figure binaries default to S0..S5 and take `--through SN`
/// for the larger networks.
pub const REGISTRY: [DatasetSpec; 10] = [
    DatasetSpec { name: "S0", mirrors: "DE", width: 32, height: 32, seed: 101 },
    DatasetSpec { name: "S1", mirrors: "NH", width: 45, height: 45, seed: 102 },
    DatasetSpec { name: "S2", mirrors: "ME", width: 64, height: 64, seed: 103 },
    DatasetSpec { name: "S3", mirrors: "CO", width: 91, height: 91, seed: 104 },
    DatasetSpec { name: "S4", mirrors: "FL", width: 128, height: 128, seed: 105 },
    DatasetSpec { name: "S5", mirrors: "CA", width: 181, height: 181, seed: 106 },
    DatasetSpec { name: "S6", mirrors: "E-US", width: 256, height: 256, seed: 107 },
    DatasetSpec { name: "S7", mirrors: "W-US", width: 304, height: 304, seed: 108 },
    DatasetSpec { name: "S8", mirrors: "C-US", width: 362, height: 362, seed: 109 },
    DatasetSpec { name: "S9", mirrors: "US", width: 431, height: 431, seed: 110 },
];

/// Looks a dataset up by name.
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    REGISTRY.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_grows_monotonically() {
        for w in REGISTRY.windows(2) {
            let ratio = w[1].approx_nodes() as f64 / w[0].approx_nodes() as f64;
            assert!((1.3..=2.3).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("S3").unwrap().mirrors, "CO");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smallest_dataset_builds() {
        let g = REGISTRY[0].build();
        let n = g.num_nodes();
        assert!(n > 800 && n <= 1024, "n = {n}");
        assert!(g.num_edges() > n); // road networks have m ≈ 2.5n
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = REGISTRY.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), REGISTRY.len());
    }
}
