//! Deterministic synthetic road-network generators.

use ah_graph::{condense_to_largest_scc, Graph, GraphBuilder, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`hierarchical_grid`].
///
/// The generator lays out a `width × height` lattice of intersections with
/// `spacing` coordinate units between neighbours, jitters each intersection,
/// classifies every row/column into a road *tier* (0 = local street,
/// 1 = collector, 2 = arterial, 3 = highway) by its index's divisibility by
/// the tier periods, and weights each segment by its Euclidean length times
/// the tier's cost factor. A fraction of local segments is deleted and a
/// fraction converted to one-way streets; the result is restricted to its
/// largest strongly connected component.
#[derive(Debug, Clone)]
pub struct HierarchicalGridConfig {
    /// Intersections per row.
    pub width: u32,
    /// Intersections per column.
    pub height: u32,
    /// Coordinate units between adjacent intersections.
    pub spacing: u32,
    /// Maximum absolute coordinate jitter applied to each intersection.
    pub jitter: u32,
    /// Row/column periods promoting a line to collector / arterial /
    /// highway tier. Must be strictly increasing.
    pub tier_periods: [u32; 3],
    /// Travel-time cost factor per tier (local, collector, arterial,
    /// highway); weight = length × factor / 16. Decreasing factors model
    /// faster roads.
    pub tier_cost: [u32; 4],
    /// Probability that a local (tier-0) segment is deleted entirely.
    pub local_edge_drop: f64,
    /// Probability that a surviving local segment keeps only one direction.
    pub one_way: f64,
    /// RNG seed; equal configs generate identical graphs.
    pub seed: u64,
}

impl Default for HierarchicalGridConfig {
    fn default() -> Self {
        HierarchicalGridConfig {
            width: 64,
            height: 64,
            spacing: 128,
            jitter: 32,
            tier_periods: [4, 16, 64],
            tier_cost: [16, 8, 4, 2],
            local_edge_drop: 0.15,
            one_way: 0.05,
            seed: 0xA117_E51A,
        }
    }
}

impl HierarchicalGridConfig {
    /// A config sized so the generated network has roughly `n` nodes
    /// (before the small loss from SCC condensation).
    pub fn with_target_nodes(n: usize, seed: u64) -> Self {
        let side = (n as f64).sqrt().ceil().max(2.0) as u32;
        HierarchicalGridConfig {
            width: side,
            height: (n as u32).div_ceil(side).max(2),
            seed,
            ..Default::default()
        }
    }
}

/// Tier of lattice line `i` under the given periods (3 = fastest).
fn line_tier(i: u32, periods: &[u32; 3]) -> usize {
    if i % periods[2] == 0 {
        3
    } else if i % periods[1] == 0 {
        2
    } else if i % periods[0] == 0 {
        1
    } else {
        0
    }
}

/// Generates a tiered-lattice road network. See
/// [`HierarchicalGridConfig`] for the model; the returned graph is strongly
/// connected (largest SCC of the raw lattice).
pub fn hierarchical_grid(cfg: &HierarchicalGridConfig) -> Graph {
    assert!(cfg.width >= 2 && cfg.height >= 2, "need at least a 2×2 lattice");
    assert!(
        cfg.tier_periods[0] < cfg.tier_periods[1] && cfg.tier_periods[1] < cfg.tier_periods[2],
        "tier periods must be strictly increasing"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = (cfg.width as usize) * (cfg.height as usize);
    let mut b = GraphBuilder::with_capacity(n, 4 * n);

    let jitter = |rng: &mut StdRng, j: u32| -> i32 {
        if j == 0 {
            0
        } else {
            rng.random_range(-(j as i32)..=j as i32)
        }
    };

    for gy in 0..cfg.height {
        for gx in 0..cfg.width {
            let x = (gx as i64 * cfg.spacing as i64) as i32 + jitter(&mut rng, cfg.jitter);
            let y = (gy as i64 * cfg.spacing as i64) as i32 + jitter(&mut rng, cfg.jitter);
            b.add_node(Point::new(x, y));
        }
    }
    let id = |gx: u32, gy: u32| gy * cfg.width + gx;

    let add_segment = |b: &mut GraphBuilder,
                           rng: &mut StdRng,
                           u: u32,
                           v: u32,
                           tier: usize| {
        // Weight: geometric length scaled by the tier's cost factor. The
        // >>4 normalization keeps weights in a compact range while
        // preserving tier ratios.
        let (pu, pv) = (b_coord(b, u), b_coord(b, v));
        let len = (pu.l2_squared(&pv) as f64).sqrt();
        let w = ((len * cfg.tier_cost[tier] as f64) / 16.0).round().max(1.0) as u32;
        if tier == 0 {
            if rng.random_bool(cfg.local_edge_drop) {
                return;
            }
            if rng.random_bool(cfg.one_way) {
                if rng.random_bool(0.5) {
                    b.add_edge(u, v, w);
                } else {
                    b.add_edge(v, u, w);
                }
                return;
            }
        }
        b.add_bidirectional_edge(u, v, w);
    };

    for gy in 0..cfg.height {
        for gx in 0..cfg.width {
            if gx + 1 < cfg.width {
                let tier = line_tier(gy, &cfg.tier_periods);
                add_segment(&mut b, &mut rng, id(gx, gy), id(gx + 1, gy), tier);
            }
            if gy + 1 < cfg.height {
                let tier = line_tier(gx, &cfg.tier_periods);
                add_segment(&mut b, &mut rng, id(gx, gy), id(gx, gy + 1), tier);
            }
        }
    }

    let raw = b.build();
    let (scc, _) = condense_to_largest_scc(&raw);
    scc
}

/// Coordinate of node `v` inside a builder (helper: builders do not expose
/// coordinates, so we reconstruct through a tiny accessor).
fn b_coord(b: &GraphBuilder, v: u32) -> Point {
    b.coord(v)
}

/// Generates a strongly connected random geometric graph: `n` points
/// uniform in a `side × side` square, bidirectional edges between all pairs
/// within L2 distance `radius`, weight = rounded distance.
///
/// Unlike [`hierarchical_grid`] this has no road hierarchy, making it a
/// stress fixture: arterial dimensions are larger and shortest paths
/// erratic.
pub fn random_geometric(n: usize, side: i32, radius: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 8 * n);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    for _ in 0..n {
        let p = Point::new(rng.random_range(0..=side), rng.random_range(0..=side));
        pts.push(p);
        b.add_node(p);
    }
    let r2 = (radius as u64) * (radius as u64);
    for i in 0..n {
        for j in (i + 1)..n {
            let d2 = pts[i].l2_squared(&pts[j]);
            if d2 > 0 && d2 <= r2 {
                let w = (d2 as f64).sqrt().round().max(1.0) as u32;
                b.add_bidirectional_edge(i as u32, j as u32, w);
            }
        }
    }
    let (scc, _) = condense_to_largest_scc(&b.build());
    scc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::strongly_connected_components;

    #[test]
    fn line_tiers() {
        let p = [4, 16, 64];
        assert_eq!(line_tier(0, &p), 3);
        assert_eq!(line_tier(64, &p), 3);
        assert_eq!(line_tier(16, &p), 2);
        assert_eq!(line_tier(48, &p), 2);
        assert_eq!(line_tier(4, &p), 1);
        assert_eq!(line_tier(3, &p), 0);
        assert_eq!(line_tier(7, &p), 0);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = HierarchicalGridConfig {
            width: 20,
            height: 20,
            ..Default::default()
        };
        let g1 = hierarchical_grid(&cfg);
        let g2 = hierarchical_grid(&cfg);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.node_ids() {
            assert_eq!(g1.coord(v), g2.coord(v));
            assert_eq!(g1.out_edges(v), g2.out_edges(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = hierarchical_grid(&HierarchicalGridConfig {
            width: 20,
            height: 20,
            seed: 1,
            ..Default::default()
        });
        let b = hierarchical_grid(&HierarchicalGridConfig {
            width: 20,
            height: 20,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(
            (a.num_edges(), a.coord(0)),
            (b.num_edges(), b.coord(0)),
            "independent seeds should perturb the network"
        );
    }

    #[test]
    fn strongly_connected_output() {
        let g = hierarchical_grid(&HierarchicalGridConfig {
            width: 30,
            height: 25,
            local_edge_drop: 0.3,
            one_way: 0.15,
            ..Default::default()
        });
        assert!(g.num_nodes() > 500, "SCC should retain most of the lattice");
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn highways_are_faster_per_unit_length() {
        // With zero jitter and no deletions the weights are exactly
        // spacing × factor / 16 per segment.
        let cfg = HierarchicalGridConfig {
            width: 65,
            height: 65,
            jitter: 0,
            local_edge_drop: 0.0,
            one_way: 0.0,
            ..Default::default()
        };
        let g = hierarchical_grid(&cfg);
        // Node ids are preserved (no SCC loss without deletions).
        assert_eq!(g.num_nodes(), 65 * 65);
        let id = |gx: u32, gy: u32| gy * 65 + gx;
        // Horizontal edge on highway row 0 vs local row 1.
        let w_highway = g.edge_weight(id(1, 0), id(2, 0)).unwrap();
        let w_local = g.edge_weight(id(1, 1), id(2, 1)).unwrap();
        assert_eq!(w_highway, 128 * 2 / 16);
        assert_eq!(w_local, 128 * 16 / 16);
        assert!(w_local > w_highway);
    }

    #[test]
    fn target_nodes_approximation() {
        let cfg = HierarchicalGridConfig::with_target_nodes(1000, 3);
        let g = hierarchical_grid(&cfg);
        let n = g.num_nodes();
        assert!((800..=1200).contains(&n), "n = {n}");
    }

    #[test]
    fn random_geometric_connected_and_symmetric_weights() {
        let g = random_geometric(150, 1000, 160, 11);
        assert!(g.num_nodes() > 50);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        for (u, a) in g.edges() {
            assert_eq!(g.edge_weight(a.head, u), Some(a.weight));
        }
    }

    #[test]
    #[should_panic(expected = "2×2 lattice")]
    fn degenerate_config_panics() {
        hierarchical_grid(&HierarchicalGridConfig {
            width: 1,
            height: 5,
            ..Default::default()
        });
    }
}
