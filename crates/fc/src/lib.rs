//! FC — the *first-cut* index (paper Section 3).
//!
//! FC demonstrates the core idea of the paper in its simplest form:
//!
//! 1. assign each node the level of the most important arterial edge it
//!    touches (here via the shared incremental construction in
//!    [`ah_arterial`]),
//! 2. add shortcuts that bypass lower-level nodes (realized as contraction
//!    in `(level, tie-break)` order — the same construction AH uses, minus
//!    AH's in-level vertex-cover refinement),
//! 3. answer queries with a bidirectional Dijkstra under the **level
//!    constraint** (only climb) and the **proximity constraint** (a
//!    level-`i` node is visited only inside the (5×5)-cell window of
//!    `R_(i+1)` around the query endpoint).
//!
//! Compared to AH (the `ah-core` crate), FC lacks the in-level ordering,
//! the downgrading optimization, elevating edges and O(k) path unpacking
//! tuning — exactly the gaps Section 4 closes. FC remains exact; it is
//! kept as a comparison point and as the conceptual stepping stone.
//! `docs/ARCHITECTURE.md` shows where FC sits in the crate graph.
//!
//! ```
//! use ah_fc::{FcIndex, FcQuery};
//!
//! let g = ah_data::fixtures::lattice(6, 6, 16);
//! let idx = FcIndex::build(&g);
//! let mut q = FcQuery::new();
//! assert_eq!(
//!     q.distance(&idx, 0, 35),
//!     ah_search::dijkstra_distance(&g, 0, 35).map(|d| d.length)
//! );
//! ```

use ah_arterial::{assign_levels, SelectionConfig};
use ah_contraction::{contract_with_order, BidirUpwardQuery, ContractionConfig, Hierarchy};
use ah_graph::{Dist, Graph, NodeId, Path, Point};
use ah_grid::GridHierarchy;

/// Build-time options for FC.
#[derive(Debug, Clone, Copy)]
pub struct FcBuildConfig {
    /// Cap on grid levels `h`.
    pub max_levels: u32,
    /// Witness budget for shortcut construction.
    pub contraction: ContractionConfig,
}

impl Default for FcBuildConfig {
    fn default() -> Self {
        FcBuildConfig {
            max_levels: 26,
            contraction: ContractionConfig::default(),
        }
    }
}

/// The FC index: node levels, the level-ordered shortcut hierarchy and the
/// grid geometry for the proximity constraint.
pub struct FcIndex {
    grid: GridHierarchy,
    level: Vec<u8>,
    hierarchy: Hierarchy,
    coords: Vec<Point>,
}

impl FcIndex {
    /// Builds the index with defaults.
    pub fn build(g: &Graph) -> FcIndex {
        Self::build_with_config(g, &FcBuildConfig::default())
    }

    /// Builds the index.
    pub fn build_with_config(g: &Graph, cfg: &FcBuildConfig) -> FcIndex {
        let la = assign_levels(
            g,
            &SelectionConfig {
                max_levels: cfg.max_levels,
            },
        );
        // Level-primary order with a deterministic hash tie-break (FC has
        // no in-level refinement).
        let mut order: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        order.sort_unstable_by_key(|&v| (la.level[v as usize], hash_id(v), v));
        let hierarchy = contract_with_order(g, &order, cfg.contraction);
        FcIndex {
            grid: la.grid,
            level: la.level,
            hierarchy,
            coords: g.coords().to_vec(),
        }
    }

    /// Hierarchy level of `v`.
    pub fn level_of(&self, v: NodeId) -> u8 {
        self.level[v as usize]
    }

    /// Number of shortcuts in the hierarchy.
    pub fn num_shortcuts(&self) -> usize {
        self.hierarchy.num_shortcuts()
    }

    /// Approximate index size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.hierarchy.size_bytes()
            + self.level.len()
            + self.coords.len() * std::mem::size_of::<Point>()
    }

    /// Proximity predicate for one query endpoint (see crate docs).
    fn proximity_ok(&self, endpoint: Point, x: NodeId) -> bool {
        let lx = self.level[x as usize] as u32;
        if lx >= self.grid.levels() {
            return true;
        }
        self.grid
            .same_3x3_region(lx + 1, self.coords[x as usize], endpoint)
    }
}

fn hash_id(v: NodeId) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reusable FC query state.
#[derive(Default)]
pub struct FcQuery {
    inner: BidirUpwardQuery,
    /// Apply the proximity constraint (disable for ablation).
    pub proximity: bool,
}

impl FcQuery {
    /// Creates a query engine with the proximity constraint enabled.
    pub fn new() -> FcQuery {
        FcQuery {
            inner: BidirUpwardQuery::new(),
            proximity: true,
        }
    }

    /// Network distance from `s` to `t`.
    pub fn distance(&mut self, idx: &FcIndex, s: NodeId, t: NodeId) -> Option<u64> {
        self.distance_full(idx, s, t).map(|d| d.length)
    }

    /// Distance with the nuance component.
    pub fn distance_full(&mut self, idx: &FcIndex, s: NodeId, t: NodeId) -> Option<Dist> {
        let (cs, ct) = (idx.coords[s as usize], idx.coords[t as usize]);
        let prox = self.proximity;
        self.inner.distance(
            &idx.hierarchy,
            s,
            t,
            |x| !prox || idx.proximity_ok(cs, x),
            |x| !prox || idx.proximity_ok(ct, x),
        )
    }

    /// Shortest path from `s` to `t` in the original network.
    pub fn path(&mut self, idx: &FcIndex, s: NodeId, t: NodeId) -> Option<Path> {
        let (cs, ct) = (idx.coords[s as usize], idx.coords[t as usize]);
        let prox = self.proximity;
        self.inner.path(
            &idx.hierarchy,
            s,
            t,
            |x| !prox || idx.proximity_ok(cs, x),
            |x| !prox || idx.proximity_ok(ct, x),
        )
    }

    /// Nodes settled by the last query.
    pub fn settled_count(&self) -> usize {
        self.inner.settled_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_search::{dijkstra_distance, dijkstra_path};

    fn check(g: &Graph, stride: usize) {
        let idx = FcIndex::build(g);
        for proximity in [false, true] {
            let mut q = FcQuery::new();
            q.proximity = proximity;
            let n = g.num_nodes() as NodeId;
            for s in (0..n).step_by(stride) {
                for t in (0..n).step_by(stride) {
                    assert_eq!(
                        q.distance_full(&idx, s, t),
                        dijkstra_distance(g, s, t),
                        "({s},{t}) proximity={proximity}"
                    );
                    if let Some(want) = dijkstra_path(g, s, t) {
                        let p = q.path(&idx, s, t).unwrap();
                        p.verify(g).unwrap();
                        assert_eq!(p.dist, want.dist);
                    }
                }
            }
        }
    }

    #[test]
    fn correct_on_lattice() {
        check(&ah_data::fixtures::lattice(7, 6, 14), 3);
    }

    #[test]
    fn correct_on_figure1() {
        check(&ah_data::fixtures::figure1_like(), 1);
    }

    #[test]
    fn correct_on_road_network() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 12,
            height: 12,
            one_way: 0.15,
            seed: 31,
            ..Default::default()
        });
        check(&g, 7);
    }

    #[test]
    fn correct_on_random_geometric() {
        let g = ah_data::random_geometric(80, 600, 140, 4);
        check(&g, 5);
    }

    #[test]
    fn accounting() {
        let g = ah_data::fixtures::lattice(6, 6, 14);
        let idx = FcIndex::build(&g);
        assert!(idx.size_bytes() > 0);
        for v in 0..36u32 {
            let _ = idx.level_of(v);
        }
    }
}
