//! Mutable construction of [`Graph`]s.

use crate::dist::edge_nuance;
use crate::graph::{Arc, Graph};
use crate::point::Point;
use crate::{NodeId, Weight};

/// Accumulates nodes and edges, then freezes them into a CSR [`Graph`].
///
/// * Self-loops are dropped (they can never lie on a shortest path with
///   positive weights).
/// * Parallel edges are deduplicated keeping the smallest weight.
/// * Zero weights are clamped to 1, preserving the paper's "positive weight"
///   precondition even for sloppy inputs.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    coords: Vec<Point>,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity reserved for `nodes` nodes and
    /// `edges` directed edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            coords: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a node at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        let id = self.coords.len() as NodeId;
        self.coords.push(p);
        id
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate of an already-added node.
    ///
    /// # Panics
    /// Panics if `v` has not been added.
    pub fn coord(&self, v: NodeId) -> Point {
        self.coords[v as usize]
    }

    /// Number of (not yet deduplicated) directed edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `tail → head` with weight `w`.
    ///
    /// # Panics
    /// Panics if either endpoint has not been added.
    pub fn add_edge(&mut self, tail: NodeId, head: NodeId, w: Weight) {
        assert!(
            (tail as usize) < self.coords.len() && (head as usize) < self.coords.len(),
            "edge ({tail}, {head}) references an unknown node"
        );
        if tail == head {
            return; // self-loop: never on a shortest path
        }
        self.edges.push((tail, head, w.max(1)));
    }

    /// Adds both `a → b` and `b → a` with the same weight (road networks in
    /// the paper's datasets are bidirectional).
    pub fn add_bidirectional_edge(&mut self, a: NodeId, b: NodeId, w: Weight) {
        self.add_edge(a, b, w);
        self.add_edge(b, a, w);
    }

    /// Freezes into an immutable CSR graph.
    pub fn build(mut self) -> Graph {
        let n = self.coords.len();

        // Sort and deduplicate, keeping the lightest parallel edge.
        self.edges
            .sort_unstable_by_key(|&(t, h, w)| (t, h, w));
        self.edges.dedup_by_key(|&mut (t, h, _)| (t, h));

        let m = self.edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        let mut in_offsets = vec![0u32; n + 1];
        for &(t, h, _) in &self.edges {
            out_offsets[t as usize + 1] += 1;
            in_offsets[h as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
            in_offsets[i + 1] += in_offsets[i];
        }

        let dummy = Arc {
            head: 0,
            weight: 0,
            nuance: 0,
        };
        let mut out_arcs = vec![dummy; m];
        let mut in_arcs = vec![dummy; m];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(t, h, w) in &self.edges {
            let nu = edge_nuance(t, h, w) as u32;
            out_arcs[out_cursor[t as usize] as usize] = Arc {
                head: h,
                weight: w,
                nuance: nu,
            };
            out_cursor[t as usize] += 1;
            in_arcs[in_cursor[h as usize] as usize] = Arc {
                head: t,
                weight: w,
                nuance: nu,
            };
            in_cursor[h as usize] += 1;
        }

        Graph::from_parts(out_offsets, out_arcs, in_offsets, in_arcs, self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(Point::new(0, 0));
        b.add_edge(v, v, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_edge(a, c, 9);
        b.add_edge(a, c, 3);
        b.add_edge(a, c, 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(a, c), Some(3));
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_edge(a, c, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(a, c), Some(1));
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_endpoint_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        b.add_edge(a, 99, 1);
    }

    #[test]
    fn bidirectional_adds_both_arcs() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_bidirectional_edge(a, c, 4);
        let g = b.build();
        assert_eq!(g.edge_weight(a, c), Some(4));
        assert_eq!(g.edge_weight(c, a), Some(4));
    }

    #[test]
    fn deterministic_build() {
        let mk = || {
            let mut b = GraphBuilder::new();
            for i in 0..10 {
                b.add_node(Point::new(i, -i));
            }
            for i in 0..9u32 {
                b.add_bidirectional_edge(i, i + 1, i + 1);
            }
            b.build()
        };
        let g1 = mk();
        let g2 = mk();
        for v in g1.node_ids() {
            assert_eq!(g1.out_edges(v), g2.out_edges(v));
        }
    }

    #[test]
    fn with_capacity_builds_same_graph() {
        let mut b = GraphBuilder::with_capacity(2, 2);
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(5, 5));
        b.add_edge(a, c, 2);
        assert_eq!(b.num_nodes(), 2);
        assert_eq!(b.num_edges(), 1);
        let g = b.build();
        assert_eq!(g.num_nodes(), 2);
    }
}
