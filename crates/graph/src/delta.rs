//! Incremental edge-weight updates against a frozen base graph.
//!
//! Real road networks re-weight continuously (congestion, closures)
//! while the topology stays put. A [`WeightDelta`] captures exactly
//! that: a sorted set of `(tail, head) → new weight` changes cut
//! against a *named* base graph (its [`Graph::content_id`]), with road
//! closures expressed as [`CLOSED`] (`u32::MAX`) weight so the CSR
//! shape — and with it every offset array, shard partition and grid
//! key — is untouched.
//!
//! [`WeightDelta::apply`] produces a patched [`Graph`] that is
//! **bit-identical** to rebuilding from scratch with the new weights:
//! weights are clamped exactly like [`crate::GraphBuilder::add_edge`]
//! (`w.max(1)`) and each patched arc's nuance is *recomputed* from the
//! clamped weight, because the Appendix A tie-break nuance is a
//! function of `(tail, head, weight)`. Anything less would silently
//! fork the canonical shortest paths between a delta-refreshed index
//! and a cold rebuild — the exactness contract `ah_store`'s `delta`
//! section and the `delta_identity` test campaign pin.

use crate::dist::edge_nuance;
use crate::graph::Graph;
use crate::{NodeId, Weight};

/// Weight sentinel for a road closure. The edge stays in the CSR
/// arrays (topology is immutable under deltas) but at `u32::MAX`
/// travel time no shortest path uses it unless no alternative exists.
pub const CLOSED: Weight = Weight::MAX;

/// One edge re-weight: the directed edge `tail → head` takes `weight`
/// (raw, as [`crate::GraphBuilder::add_edge`] would receive it — apply
/// clamps zero to 1; [`CLOSED`] marks a closure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightChange {
    /// Tail of the re-weighted edge.
    pub tail: NodeId,
    /// Head of the re-weighted edge.
    pub head: NodeId,
    /// The new weight (raw; 0 is clamped to 1 on apply).
    pub weight: Weight,
}

impl WeightChange {
    /// A re-weight of `tail → head` to `weight`.
    pub const fn new(tail: NodeId, head: NodeId, weight: Weight) -> Self {
        WeightChange { tail, head, weight }
    }

    /// A closure of `tail → head` ([`CLOSED`] weight).
    pub const fn close(tail: NodeId, head: NodeId) -> Self {
        WeightChange::new(tail, head, CLOSED)
    }
}

/// Why a delta could not be constructed or applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a different base graph than the one offered.
    BaseMismatch {
        /// `content_id` the delta was cut against.
        expected: u64,
        /// `content_id` of the graph it was applied to.
        found: u64,
    },
    /// A change names an edge the base graph does not have (deltas
    /// never change topology).
    UnknownEdge {
        /// Tail of the missing edge.
        tail: NodeId,
        /// Head of the missing edge.
        head: NodeId,
    },
    /// A change names a self-loop, which no built graph contains.
    SelfLoop {
        /// The offending node.
        node: NodeId,
    },
    /// Decoded changes are not strictly ascending by `(tail, head)`.
    Unsorted,
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, found } => write!(
                f,
                "delta was cut against base {expected:#018x}, applied to {found:#018x}"
            ),
            DeltaError::UnknownEdge { tail, head } => {
                write!(f, "delta names edge ({tail} → {head}) absent from the base graph")
            }
            DeltaError::SelfLoop { node } => {
                write!(f, "delta names a self-loop at node {node}")
            }
            DeltaError::Unsorted => {
                write!(f, "delta changes are not strictly ascending by (tail, head)")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The outcome of [`WeightDelta::apply`]: the patched graph plus the
/// invalidation set a refresh driver needs.
#[derive(Debug, Clone)]
pub struct DeltaApplied {
    /// The patched graph, bit-identical to a from-scratch rebuild with
    /// the new weights.
    pub graph: Graph,
    /// Every node incident to a changed edge (ascending, deduplicated)
    /// — the seed set for invalidating caches, shards, and labels.
    pub touched: Vec<NodeId>,
    /// Number of edges whose stored weight actually changed (a change
    /// restating the current weight counts as applied but unchanged).
    pub changed_edges: usize,
}

/// A set of edge-weight changes against a named base graph.
///
/// Changes are kept strictly ascending by `(tail, head)` — the
/// canonical form `ah_store` serializes — and each edge appears at
/// most once (construction keeps the *last* change for an edge, so a
/// feed of updates collapses naturally).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightDelta {
    base_id: u64,
    changes: Vec<WeightChange>,
}

impl WeightDelta {
    /// Cuts a delta against `base`: validates every change (edge must
    /// exist in `base`; self-loops are refused), sorts by
    /// `(tail, head)` and keeps the last change per edge.
    pub fn new(
        base: &Graph,
        changes: impl IntoIterator<Item = WeightChange>,
    ) -> Result<WeightDelta, DeltaError> {
        let mut changes: Vec<WeightChange> = changes.into_iter().collect();
        for c in &changes {
            if c.tail == c.head {
                return Err(DeltaError::SelfLoop { node: c.tail });
            }
            if (c.tail as usize) >= base.num_nodes()
                || (c.head as usize) >= base.num_nodes()
                || base.edge_weight(c.tail, c.head).is_none()
            {
                return Err(DeltaError::UnknownEdge {
                    tail: c.tail,
                    head: c.head,
                });
            }
        }
        // Stable sort + reverse-dedup keeps the *last* change per edge.
        changes.sort_by_key(|c| (c.tail, c.head));
        changes.reverse();
        changes.dedup_by_key(|c| (c.tail, c.head));
        changes.reverse();
        Ok(WeightDelta {
            base_id: base.content_id(),
            changes,
        })
    }

    /// Reassembles a delta from its persisted parts (the `ah_store`
    /// decode path). Requires the canonical form: strictly ascending
    /// by `(tail, head)`, no self-loops. The base id is *not* checked
    /// here — the store cross-checks it against the snapshot's graph
    /// section, and [`WeightDelta::apply`] re-checks at apply time.
    pub fn from_raw_parts(
        base_id: u64,
        changes: Vec<WeightChange>,
    ) -> Result<WeightDelta, DeltaError> {
        for c in &changes {
            if c.tail == c.head {
                return Err(DeltaError::SelfLoop { node: c.tail });
            }
        }
        if changes.windows(2).any(|w| (w[0].tail, w[0].head) >= (w[1].tail, w[1].head)) {
            return Err(DeltaError::Unsorted);
        }
        Ok(WeightDelta { base_id, changes })
    }

    /// `content_id` of the base graph this delta was cut against.
    pub fn base_id(&self) -> u64 {
        self.base_id
    }

    /// The changes, strictly ascending by `(tail, head)`.
    pub fn changes(&self) -> &[WeightChange] {
        &self.changes
    }

    /// Number of changed edges.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Applies the delta to its base graph, producing the patched
    /// graph and invalidation set.
    ///
    /// Fails with [`DeltaError::BaseMismatch`] if `base` is not the
    /// graph the delta was cut against (by content id) — applying a
    /// delta to the wrong generation would silently produce answers
    /// from a network that never existed.
    pub fn apply(&self, base: &Graph) -> Result<DeltaApplied, DeltaError> {
        let found = base.content_id();
        if found != self.base_id {
            return Err(DeltaError::BaseMismatch {
                expected: self.base_id,
                found,
            });
        }
        let (out_offsets, out_arcs, in_offsets, in_arcs, coords) = base.csr_parts();
        let (out_offsets, in_offsets) = (out_offsets.to_vec(), in_offsets.to_vec());
        let mut out_arcs = out_arcs.to_vec();
        let mut in_arcs = in_arcs.to_vec();
        let mut touched = Vec::with_capacity(self.changes.len() * 2);
        let mut changed_edges = 0usize;
        for c in &self.changes {
            // Identical clamp-then-nuance order as GraphBuilder::build,
            // so the patched arc is bit-equal to a rebuilt one.
            let w = c.weight.max(1);
            let nu = edge_nuance(c.tail, c.head, w) as u32;
            // Arcs within a node's range are sorted by the opposite
            // endpoint and unique (builder dedup), so binary search.
            let (lo, hi) = (out_offsets[c.tail as usize] as usize, out_offsets[c.tail as usize + 1] as usize);
            let Ok(i) = out_arcs[lo..hi].binary_search_by_key(&c.head, |a| a.head) else {
                return Err(DeltaError::UnknownEdge {
                    tail: c.tail,
                    head: c.head,
                });
            };
            if out_arcs[lo + i].weight != w {
                changed_edges += 1;
            }
            out_arcs[lo + i].weight = w;
            out_arcs[lo + i].nuance = nu;
            let (lo, hi) = (in_offsets[c.head as usize] as usize, in_offsets[c.head as usize + 1] as usize);
            let Ok(i) = in_arcs[lo..hi].binary_search_by_key(&c.tail, |a| a.head) else {
                return Err(DeltaError::UnknownEdge {
                    tail: c.tail,
                    head: c.head,
                });
            };
            in_arcs[lo + i].weight = w;
            in_arcs[lo + i].nuance = nu;
            touched.push(c.tail);
            touched.push(c.head);
        }
        touched.sort_unstable();
        touched.dedup();
        let graph = Graph::from_parts(out_offsets, out_arcs, in_offsets, in_arcs, coords.to_vec());
        Ok(DeltaApplied {
            graph,
            touched,
            changed_edges,
        })
    }

    /// Merges `later` onto this delta: the result, applied to this
    /// delta's base, equals applying `self` then `later`. Where both
    /// re-weight the same edge, `later` wins.
    ///
    /// The caller is responsible for chain integrity — `later` must
    /// have been cut against `self.apply(base)`'s graph (deltas never
    /// change topology, so the merged changes are valid against the
    /// original base).
    pub fn compose(&self, later: &WeightDelta) -> WeightDelta {
        let mut merged = Vec::with_capacity(self.changes.len() + later.changes.len());
        let (mut a, mut b) = (self.changes.iter().peekable(), later.changes.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if (x.tail, x.head) < (y.tail, y.head) {
                        merged.push(x);
                        a.next();
                    } else if (x.tail, x.head) > (y.tail, y.head) {
                        merged.push(y);
                        b.next();
                    } else {
                        merged.push(y); // later wins
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        WeightDelta {
            base_id: self.base_id,
            changes: merged,
        }
    }

    /// The delta that undoes this one: cut against the *patched*
    /// graph, restoring every changed edge to its weight in `base`.
    /// `self.apply(base)` then `invert.apply(patched)` round-trips to
    /// a graph bit-identical to `base` (this holds because base
    /// weights are already clamped, and nuance is a pure function of
    /// the clamped weight).
    ///
    /// Applies the delta internally to name the patched base, so this
    /// costs one full apply.
    pub fn invert(&self, base: &Graph) -> Result<WeightDelta, DeltaError> {
        let patched = self.apply(base)?;
        let changes = self
            .changes
            .iter()
            .map(|c| WeightChange {
                tail: c.tail,
                head: c.head,
                weight: base
                    .edge_weight(c.tail, c.head)
                    .expect("apply verified every edge exists"),
            })
            .collect();
        Ok(WeightDelta {
            base_id: patched.graph.content_id(),
            changes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Point};

    fn grid3() -> Graph {
        // 3×3 bidirectional grid, weights 1..; nodes row-major.
        let mut b = GraphBuilder::new();
        for y in 0..3 {
            for x in 0..3 {
                b.add_node(Point::new(x, y));
            }
        }
        for y in 0..3u32 {
            for x in 0..3u32 {
                let v = y * 3 + x;
                if x + 1 < 3 {
                    b.add_bidirectional_edge(v, v + 1, x + y + 1);
                }
                if y + 1 < 3 {
                    b.add_bidirectional_edge(v, v + 3, x + y + 2);
                }
            }
        }
        b.build()
    }

    /// From-scratch rebuild with `delta`'s weights — the ground truth
    /// `apply` must match bit-for-bit.
    fn rebuild_with(base: &Graph, delta: &WeightDelta) -> Graph {
        let mut b = GraphBuilder::new();
        for v in base.node_ids() {
            b.add_node(base.coord(v));
        }
        for (tail, arc) in base.edges() {
            let w = delta
                .changes()
                .iter()
                .find(|c| (c.tail, c.head) == (tail, arc.head))
                .map_or(arc.weight, |c| c.weight);
            b.add_edge(tail, arc.head, w);
        }
        b.build()
    }

    fn graphs_bit_equal(a: &Graph, b: &Graph) -> bool {
        a.csr_parts() == b.csr_parts()
    }

    #[test]
    fn apply_is_bit_equal_to_rebuild() {
        let g = grid3();
        let delta = WeightDelta::new(
            &g,
            [
                WeightChange::new(0, 1, 40),
                WeightChange::new(1, 0, 0), // clamped to 1 on both paths
                WeightChange::close(4, 5),
                WeightChange::new(3, 6, 7),
            ],
        )
        .unwrap();
        let applied = delta.apply(&g).unwrap();
        let rebuilt = rebuild_with(&g, &delta);
        assert!(graphs_bit_equal(&applied.graph, &rebuilt));
        assert_eq!(applied.graph.content_id(), rebuilt.content_id());
        assert_eq!(applied.touched, vec![0, 1, 3, 4, 5, 6]);
        // (1, 0, 0) clamps to the base weight 1, so only three edges
        // actually change value.
        assert_eq!(applied.changed_edges, 3);
        assert_eq!(applied.graph.edge_weight(4, 5), Some(CLOSED));
        // Untouched reverse direction keeps its base weight.
        assert_eq!(applied.graph.edge_weight(5, 4), g.edge_weight(5, 4));
    }

    #[test]
    fn nuance_is_recomputed_from_the_new_weight() {
        let g = grid3();
        let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 99)]).unwrap();
        let applied = delta.apply(&g).unwrap();
        let arc = applied.graph.out_edges(0).iter().find(|a| a.head == 1).unwrap();
        assert_eq!(arc.nuance, edge_nuance(0, 1, 99) as u32);
        assert_ne!(arc.nuance, g.out_edges(0).iter().find(|a| a.head == 1).unwrap().nuance);
        // Forward and backward copies stay in sync.
        let back = applied.graph.in_edges(1).iter().find(|a| a.head == 0).unwrap();
        assert_eq!((back.weight, back.nuance), (arc.weight, arc.nuance));
    }

    #[test]
    fn last_change_per_edge_wins() {
        let g = grid3();
        let delta = WeightDelta::new(
            &g,
            [WeightChange::new(0, 1, 10), WeightChange::new(0, 1, 20)],
        )
        .unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.changes()[0].weight, 20);
    }

    #[test]
    fn apply_rejects_wrong_base() {
        let g = grid3();
        let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 10)]).unwrap();
        let other = delta.apply(&g).unwrap().graph;
        assert!(matches!(
            delta.apply(&other),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn unknown_edges_and_self_loops_are_refused() {
        let g = grid3();
        assert!(matches!(
            WeightDelta::new(&g, [WeightChange::new(0, 8, 5)]),
            Err(DeltaError::UnknownEdge { tail: 0, head: 8 })
        ));
        assert!(matches!(
            WeightDelta::new(&g, [WeightChange::new(0, 99, 5)]),
            Err(DeltaError::UnknownEdge { .. })
        ));
        assert!(matches!(
            WeightDelta::new(&g, [WeightChange::new(2, 2, 5)]),
            Err(DeltaError::SelfLoop { node: 2 })
        ));
    }

    #[test]
    fn from_raw_parts_requires_canonical_form() {
        let sorted = vec![WeightChange::new(0, 1, 5), WeightChange::new(1, 0, 6)];
        assert!(WeightDelta::from_raw_parts(1, sorted).is_ok());
        let unsorted = vec![WeightChange::new(1, 0, 6), WeightChange::new(0, 1, 5)];
        assert_eq!(
            WeightDelta::from_raw_parts(1, unsorted),
            Err(DeltaError::Unsorted)
        );
        let dup = vec![WeightChange::new(0, 1, 5), WeightChange::new(0, 1, 6)];
        assert_eq!(WeightDelta::from_raw_parts(1, dup), Err(DeltaError::Unsorted));
        let looped = vec![WeightChange::new(3, 3, 5)];
        assert_eq!(
            WeightDelta::from_raw_parts(1, looped),
            Err(DeltaError::SelfLoop { node: 3 })
        );
    }

    #[test]
    fn compose_equals_sequential_apply() {
        let g = grid3();
        let d1 = WeightDelta::new(
            &g,
            [WeightChange::new(0, 1, 11), WeightChange::close(1, 2)],
        )
        .unwrap();
        let mid = d1.apply(&g).unwrap().graph;
        let d2 = WeightDelta::new(
            &mid,
            [WeightChange::new(1, 2, 3), WeightChange::new(3, 4, 9)],
        )
        .unwrap();
        let sequential = d2.apply(&mid).unwrap().graph;
        let composed = d1.compose(&d2).apply(&g).unwrap().graph;
        assert!(graphs_bit_equal(&sequential, &composed));
    }

    #[test]
    fn invert_round_trips_to_base() {
        let g = grid3();
        let delta = WeightDelta::new(
            &g,
            [
                WeightChange::new(0, 1, 77),
                WeightChange::close(4, 5),
                WeightChange::new(1, 0, 0),
            ],
        )
        .unwrap();
        let patched = delta.apply(&g).unwrap().graph;
        let inverse = delta.invert(&g).unwrap();
        let restored = inverse.apply(&patched).unwrap().graph;
        assert!(graphs_bit_equal(&restored, &g));
        assert_eq!(restored.content_id(), g.content_id());
    }

    #[test]
    fn empty_delta_applies_to_an_identical_graph() {
        let g = grid3();
        let delta = WeightDelta::new(&g, []).unwrap();
        assert!(delta.is_empty());
        let applied = delta.apply(&g).unwrap();
        assert!(graphs_bit_equal(&applied.graph, &g));
        assert!(applied.touched.is_empty());
        assert_eq!(applied.changed_edges, 0);
    }

    #[test]
    fn content_id_tracks_content() {
        let g = grid3();
        assert_eq!(g.content_id(), grid3().content_id());
        let patched = WeightDelta::new(&g, [WeightChange::new(0, 1, 2)])
            .unwrap()
            .apply(&g)
            .unwrap()
            .graph;
        assert_ne!(g.content_id(), patched.content_id());
    }
}
