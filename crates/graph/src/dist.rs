//! Lexicographic distance with nuance tie-breaking (paper Appendix A).
//!
//! The paper's correctness arguments assume *unique* local shortest paths
//! (Assumption 2) and enforce the assumption by attaching a random integer
//! *nuance* `ρ(e)` to every edge: two paths of equal length are ordered by
//! total nuance. [`Dist`] realizes this as the pair `(length, nuance)` under
//! lexicographic order. All internal shortest-path computations in the
//! workspace run on `Dist`; public query results report only
//! [`Dist::length`], so perturbation never changes an answer, only which of
//! several equal-length paths is considered canonical.

/// A path length with nuance tie-break. Ordered lexicographically by
/// `(length, nuance)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dist {
    /// Sum of edge weights along the path.
    pub length: u64,
    /// Sum of edge nuances along the path (Appendix A's ρ).
    pub nuance: u64,
}

/// The unreachable distance.
pub const INFINITY: Dist = Dist {
    length: u64::MAX,
    nuance: u64::MAX,
};

impl Dist {
    /// The zero distance (a path of no edges).
    pub const ZERO: Dist = Dist {
        length: 0,
        nuance: 0,
    };

    /// Creates a distance from explicit components.
    pub const fn new(length: u64, nuance: u64) -> Self {
        Dist { length, nuance }
    }

    /// True if this is the unreachable sentinel.
    pub fn is_infinite(&self) -> bool {
        self.length == u64::MAX
    }

    /// Extends the path by one edge of weight `w` and nuance `nu`.
    /// Saturates instead of overflowing so `INFINITY + e == INFINITY`.
    #[inline]
    pub fn step(self, w: u64, nu: u64) -> Dist {
        Dist {
            length: self.length.saturating_add(w),
            nuance: self.nuance.saturating_add(nu),
        }
    }

    /// Concatenates two path distances.
    #[inline]
    pub fn concat(self, other: Dist) -> Dist {
        self.step(other.length, other.nuance)
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.length)
        }
    }
}

/// Deterministic pseudo-random nuance for an edge, derived from its
/// endpoints and weight with a SplitMix64-style mixer. Using a hash instead
/// of an RNG keeps graph construction reproducible and dependency-free while
/// retaining the "random integer per edge" behaviour of Appendix A.
pub(crate) fn edge_nuance(tail: u32, head: u32, weight: u32) -> u64 {
    let mut z = ((tail as u64) << 32 | head as u64) ^ ((weight as u64) << 17);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Keep nuances small (< 2^24) so that even paths with 2^40 edges cannot
    // overflow the u64 nuance accumulator.
    z & 0x00FF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order() {
        let a = Dist::new(5, 100);
        let b = Dist::new(5, 101);
        let c = Dist::new(6, 0);
        assert!(a < b);
        assert!(b < c);
        assert!(a < c);
        assert!(a < INFINITY);
    }

    #[test]
    fn step_accumulates_both_components() {
        let d = Dist::ZERO.step(10, 3).step(5, 7);
        assert_eq!(d, Dist::new(15, 10));
    }

    #[test]
    fn infinity_saturates() {
        assert_eq!(INFINITY.step(1, 1), INFINITY);
        assert!(INFINITY.is_infinite());
        assert!(!Dist::ZERO.is_infinite());
    }

    #[test]
    fn concat_matches_repeated_step() {
        let a = Dist::new(3, 4);
        let b = Dist::new(5, 6);
        assert_eq!(a.concat(b), Dist::new(8, 10));
    }

    #[test]
    fn nuance_is_deterministic_and_bounded() {
        let n1 = edge_nuance(1, 2, 10);
        let n2 = edge_nuance(1, 2, 10);
        assert_eq!(n1, n2);
        assert!(n1 < 1 << 24);
        // Direction matters: the reverse edge gets an independent nuance.
        assert_ne!(edge_nuance(1, 2, 10), edge_nuance(2, 1, 10));
    }

    #[test]
    fn nuances_spread_out() {
        // A weak sanity check that the mixer does not collapse: 1000 edges
        // should produce (almost) 1000 distinct nuances.
        let mut seen = std::collections::HashSet::new();
        for t in 0..100u32 {
            for h in 0..10u32 {
                seen.insert(edge_nuance(t, h, t + h));
            }
        }
        assert!(seen.len() > 990, "only {} distinct nuances", seen.len());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dist::new(42, 7).to_string(), "42");
        assert_eq!(INFINITY.to_string(), "∞");
    }
}
