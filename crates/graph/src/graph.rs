//! The immutable CSR road-network graph.

use crate::point::{BoundingBox, Point};
use crate::{NodeId, Weight};

/// A directed edge as stored in an adjacency array: the endpoint it leads to
/// plus its weight and nuance (Appendix A tie-break value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    /// Endpoint of the arc: the head for forward adjacency, the tail for
    /// backward adjacency.
    pub head: NodeId,
    /// Positive edge weight (travel time).
    pub weight: Weight,
    /// Nuance used for lexicographic tie-breaking; see [`crate::Dist`].
    pub nuance: u32,
}

/// A directed, coordinate-embedded road network in compressed-sparse-row
/// form with both forward and backward adjacency.
///
/// Construct with [`crate::GraphBuilder`]. The structure is immutable; index
/// structures (FC/AH/CH/SILC) reference it by shared borrow or `Arc`.
#[derive(Debug, Clone)]
pub struct Graph {
    out_offsets: Vec<u32>,
    out_arcs: Vec<Arc>,
    in_offsets: Vec<u32>,
    in_arcs: Vec<Arc>,
    coords: Vec<Point>,
}

impl Graph {
    pub(crate) fn from_parts(
        out_offsets: Vec<u32>,
        out_arcs: Vec<Arc>,
        in_offsets: Vec<u32>,
        in_arcs: Vec<Arc>,
        coords: Vec<Point>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), coords.len() + 1);
        debug_assert_eq!(in_offsets.len(), coords.len() + 1);
        debug_assert_eq!(out_arcs.len(), in_arcs.len());
        Graph {
            out_offsets,
            out_arcs,
            in_offsets,
            in_arcs,
            coords,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_arcs.len()
    }

    /// Arcs leaving `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[Arc] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_arcs[lo..hi]
    }

    /// Arcs entering `v`; each returned [`Arc::head`] is the *tail* of the
    /// original edge.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[Arc] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_arcs[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges(v).len()
    }

    /// Planar position of `v`.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Point {
        self.coords[v as usize]
    }

    /// All node coordinates, indexed by [`NodeId`].
    #[inline]
    pub fn coords(&self) -> &[Point] {
        &self.coords
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterator over all directed edges as `(tail, arc)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Arc)> + '_ {
        self.node_ids()
            .flat_map(move |v| self.out_edges(v).iter().map(move |&a| (v, a)))
    }

    /// Weight of the edge `(u, v)` if present (the minimum if parallel edges
    /// survived deduplication, which the builder prevents).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.out_edges(u)
            .iter()
            .find(|a| a.head == v)
            .map(|a| a.weight)
    }

    /// Bounding box of all node coordinates.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::of(self.coords.iter().copied())
    }

    /// Maximum of in- and out-degree over all nodes (the paper assumes this
    /// is bounded by a constant).
    pub fn max_degree(&self) -> usize {
        self.node_ids()
            .map(|v| self.out_degree(v).max(self.in_degree(v)))
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap footprint of the CSR arrays, for Figure 10a style
    /// accounting.
    pub fn size_bytes(&self) -> usize {
        self.out_offsets.len() * std::mem::size_of::<u32>()
            + self.in_offsets.len() * std::mem::size_of::<u32>()
            + (self.out_arcs.len() + self.in_arcs.len()) * std::mem::size_of::<Arc>()
            + self.coords.len() * std::mem::size_of::<Point>()
    }

    /// A deterministic 64-bit digest of the graph's full content — CSR
    /// shape, arc weights and nuances, and coordinates.
    ///
    /// Two graphs have the same id iff they are bit-identical, up to
    /// hash collisions (the digest is a SplitMix64-style mixer, not a
    /// cryptographic hash). [`crate::WeightDelta`] uses this as the
    /// *base snapshot id* a delta is cut against, and `ah_store`
    /// cross-checks it when loading a snapshot's `delta` section.
    pub fn content_id(&self) -> u64 {
        #[inline]
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h ^ v;
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = mix(0x41AE_5EED, self.num_nodes() as u64);
        h = mix(h, self.num_edges() as u64);
        for &off in &self.out_offsets {
            h = mix(h, off as u64);
        }
        for a in self.out_arcs.iter().chain(self.in_arcs.iter()) {
            h = mix(h, (a.head as u64) << 32 | a.weight as u64);
            h = mix(h, a.nuance as u64);
        }
        for p in &self.coords {
            h = mix(h, (p.x as u32 as u64) << 32 | p.y as u32 as u64);
        }
        h
    }

    /// Borrowed view of the five CSR arrays, in the order
    /// `(out_offsets, out_arcs, in_offsets, in_arcs, coords)`.
    ///
    /// This is the serialization hook used by `ah_store`: the arrays are
    /// exactly what a snapshot persists, and
    /// [`Graph::from_csr_parts`] is its validated inverse.
    pub fn csr_parts(&self) -> (&[u32], &[Arc], &[u32], &[Arc], &[Point]) {
        (
            &self.out_offsets,
            &self.out_arcs,
            &self.in_offsets,
            &self.in_arcs,
            &self.coords,
        )
    }

    /// Reassembles a graph from raw CSR arrays (the inverse of
    /// [`Graph::csr_parts`], used when loading snapshots).
    ///
    /// Unlike the crate-internal `from_parts`, which trusts the builder,
    /// this validates every structural invariant — offset monotonicity, arc
    /// counts, endpoint bounds — and returns an error instead of
    /// constructing a graph whose accessors could panic or misindex.
    pub fn from_csr_parts(
        out_offsets: Vec<u32>,
        out_arcs: Vec<Arc>,
        in_offsets: Vec<u32>,
        in_arcs: Vec<Arc>,
        coords: Vec<Point>,
    ) -> Result<Graph, &'static str> {
        let n = coords.len();
        validate_csr(&out_offsets, out_arcs.len(), n, "out")?;
        validate_csr(&in_offsets, in_arcs.len(), n, "in")?;
        if out_arcs.len() != in_arcs.len() {
            return Err("forward and backward arc counts differ");
        }
        if out_arcs
            .iter()
            .chain(in_arcs.iter())
            .any(|a| a.head as usize >= n)
        {
            return Err("arc endpoint out of range");
        }
        Ok(Graph {
            out_offsets,
            out_arcs,
            in_offsets,
            in_arcs,
            coords,
        })
    }

    /// True if every node can reach every other node ignoring edge
    /// direction. (Strong connectivity is checked by
    /// [`crate::strongly_connected_components`].)
    pub fn is_weakly_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for a in self.out_edges(v).iter().chain(self.in_edges(v)) {
                if !seen[a.head as usize] {
                    seen[a.head as usize] = true;
                    count += 1;
                    stack.push(a.head);
                }
            }
        }
        count == n
    }
}

/// Shared CSR shape check: `offsets` must have `n + 1` monotone entries
/// starting at 0 and ending at `arcs_len`.
fn validate_csr(
    offsets: &[u32],
    arcs_len: usize,
    n: usize,
    _side: &'static str,
) -> Result<(), &'static str> {
    if offsets.len() != n + 1 {
        return Err("offset array length is not num_nodes + 1");
    }
    if offsets.first() != Some(&0) {
        return Err("offset array does not start at 0");
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err("offset array is not monotone");
    }
    if offsets.last().copied().unwrap_or(0) as usize != arcs_len {
        return Err("offset array does not cover the arc array");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{GraphBuilder, Point};

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, i));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 3, 2);
        b.add_edge(0, 2, 3);
        b.add_edge(2, 3, 4);
        b.build()
    }

    #[test]
    fn csr_adjacency_roundtrip() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        let heads: Vec<_> = g.out_edges(0).iter().map(|a| a.head).collect();
        assert_eq!(heads, vec![1, 2]);
        let tails: Vec<_> = g.in_edges(3).iter().map(|a| a.head).collect();
        assert_eq!(tails, vec![1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(0, 1), Some(1));
        assert_eq!(g.edge_weight(2, 3), Some(4));
        assert_eq!(g.edge_weight(3, 0), None);
    }

    #[test]
    fn edges_iterator_counts_all() {
        let g = diamond();
        assert_eq!(g.edges().count(), 4);
        let total: u64 = g.edges().map(|(_, a)| a.weight as u64).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn forward_and_backward_arcs_agree() {
        let g = diamond();
        for (tail, arc) in g.edges() {
            assert!(g
                .in_edges(arc.head)
                .iter()
                .any(|b| b.head == tail && b.weight == arc.weight && b.nuance == arc.nuance));
        }
    }

    #[test]
    fn weak_connectivity() {
        let g = diamond();
        assert!(g.is_weakly_connected());

        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 1));
        let g2 = b.build();
        assert!(!g2.is_weakly_connected());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_weakly_connected());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn size_accounting_positive() {
        let g = diamond();
        assert!(g.size_bytes() > 0);
    }

    #[test]
    fn csr_parts_roundtrip() {
        let g = diamond();
        let (oo, oa, io, ia, co) = g.csr_parts();
        let g2 = crate::Graph::from_csr_parts(
            oo.to_vec(),
            oa.to_vec(),
            io.to_vec(),
            ia.to_vec(),
            co.to_vec(),
        )
        .unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        for v in g.node_ids() {
            assert_eq!(g2.out_edges(v), g.out_edges(v));
            assert_eq!(g2.in_edges(v), g.in_edges(v));
            assert_eq!(g2.coord(v), g.coord(v));
        }
    }

    #[test]
    fn from_csr_parts_rejects_malformed_shapes() {
        let g = diamond();
        let (oo, oa, io, ia, co) = g.csr_parts();
        // Offsets not covering the arc array.
        let mut bad = oo.to_vec();
        *bad.last_mut().unwrap() -= 1;
        assert!(crate::Graph::from_csr_parts(
            bad,
            oa.to_vec(),
            io.to_vec(),
            ia.to_vec(),
            co.to_vec()
        )
        .is_err());
        // Arc head out of range.
        let mut bad_arcs = oa.to_vec();
        bad_arcs[0].head = 99;
        assert!(crate::Graph::from_csr_parts(
            oo.to_vec(),
            bad_arcs,
            io.to_vec(),
            ia.to_vec(),
            co.to_vec()
        )
        .is_err());
        // Non-monotone offsets.
        let mut bad = io.to_vec();
        bad[1] = 3;
        bad[2] = 1;
        assert!(crate::Graph::from_csr_parts(
            oo.to_vec(),
            oa.to_vec(),
            bad,
            ia.to_vec(),
            co.to_vec()
        )
        .is_err());
    }
}
