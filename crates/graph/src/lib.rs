//! Road-network graph substrate for the Arterial Hierarchy reproduction.
//!
//! This crate provides the directed, coordinate-embedded, positively-weighted
//! graph model assumed by Zhu et al. (SIGMOD 2013), Section 2:
//!
//! * nodes live in a two-dimensional plane ([`Point`]),
//! * every edge carries a positive weight (travel time in the paper's data),
//! * the graph is degree-bounded and (strongly) connected.
//!
//! The central type is [`Graph`], an immutable compressed-sparse-row (CSR)
//! structure with both forward and backward adjacency, built through
//! [`GraphBuilder`]. Shortest-path uniqueness — required by the paper's
//! Assumption 2 — is provided by the *nuance* tie-breaking scheme of
//! Appendix A, implemented here as the lexicographic distance pair [`Dist`].
//!
//! # Example
//!
//! ```
//! use ah_graph::{GraphBuilder, Point};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(Point::new(0, 0));
//! let c = b.add_node(Point::new(10, 0));
//! b.add_bidirectional_edge(a, c, 7);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 2);
//! assert_eq!(g.out_edges(a)[0].head, c);
//! assert_eq!(g.out_edges(a)[0].weight, 7);
//! ```

mod builder;
mod delta;
mod dist;
mod graph;
mod path;
mod point;
mod scc;
mod stats;

pub use builder::GraphBuilder;
pub use delta::{DeltaApplied, DeltaError, WeightChange, WeightDelta, CLOSED};
pub use dist::{Dist, INFINITY};
pub use graph::{Arc, Graph};
pub use path::Path;
pub use point::{BoundingBox, Point};
pub use scc::{condense_to_largest_scc, strongly_connected_components};
pub use stats::GraphStats;

/// Identifier of a node; an index into the graph's node arrays.
pub type NodeId = u32;

/// Identifier of an edge; an index into the graph's forward edge array.
pub type EdgeId = u32;

/// Edge weight (the paper uses travel time). Strictly positive.
pub type Weight = u32;

/// Sentinel for "no node".
pub const INVALID_NODE: NodeId = u32::MAX;

// Concurrency contract, checked at compile time: a built `Graph` is
// immutable and may be shared freely across query-serving threads
// (`ah_server` relies on this). If a future change introduces interior
// mutability, this stops the build rather than a reviewer.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Graph>();
const _: () = _assert_send_sync::<Path>();
