//! Concrete shortest paths returned by path queries.

use crate::graph::Graph;
use crate::{Dist, NodeId};

/// A path through the original road network: the node sequence plus the
/// (nuance-tagged) total distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Node sequence `s = nodes[0], …, nodes[k] = t`. A single-element
    /// sequence is the trivial path from a node to itself.
    pub nodes: Vec<NodeId>,
    /// Total distance of the path.
    pub dist: Dist,
}

impl Path {
    /// The trivial zero-length path at `v`.
    pub fn trivial(v: NodeId) -> Self {
        Path {
            nodes: vec![v],
            dist: Dist::ZERO,
        }
    }

    /// Number of edges on the path (the paper's `k`).
    pub fn num_edges(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("paths are non-empty")
    }

    /// Target node.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Checks that every consecutive pair is a real edge of `g` and that the
    /// recorded length equals the sum of edge weights. Used pervasively by
    /// tests; `Err` carries a human-readable reason.
    pub fn verify(&self, g: &Graph) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty node sequence".into());
        }
        let mut total = 0u64;
        for w in self.nodes.windows(2) {
            let (u, v) = (w[0], w[1]);
            match g.edge_weight(u, v) {
                Some(wt) => total += wt as u64,
                None => return Err(format!("({u}, {v}) is not an edge")),
            }
        }
        if total != self.dist.length {
            return Err(format!(
                "recorded length {} but edges sum to {total}",
                self.dist.length
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Point};

    fn line() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 3);
        b.build()
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(5);
        assert_eq!(p.num_edges(), 0);
        assert_eq!(p.source(), 5);
        assert_eq!(p.target(), 5);
    }

    #[test]
    fn verify_accepts_valid_path() {
        let g = line();
        let p = Path {
            nodes: vec![0, 1, 2],
            dist: Dist::new(5, 0),
        };
        assert!(p.verify(&g).is_ok());
    }

    #[test]
    fn verify_rejects_missing_edge() {
        let g = line();
        let p = Path {
            nodes: vec![0, 2],
            dist: Dist::new(5, 0),
        };
        assert!(p.verify(&g).unwrap_err().contains("not an edge"));
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let g = line();
        let p = Path {
            nodes: vec![0, 1, 2],
            dist: Dist::new(4, 0),
        };
        assert!(p.verify(&g).unwrap_err().contains("edges sum"));
    }
}
