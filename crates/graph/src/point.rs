//! Planar coordinates and bounding boxes.
//!
//! The paper's grids are defined over the L∞ geometry of node coordinates;
//! `dmax`/`dmin` in the `h ≤ log2(dmax/dmin) − 1` bound are L∞ distances.

/// A node position in the plane. Coordinates follow the DIMACS convention of
/// signed integers (the challenge data stores micro-degrees).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// L∞ (Chebyshev) distance to `other`, the metric the grid hierarchy is
    /// defined on.
    pub fn linf_distance(&self, other: &Point) -> u64 {
        let dx = (self.x as i64 - other.x as i64).unsigned_abs();
        let dy = (self.y as i64 - other.y as i64).unsigned_abs();
        dx.max(dy)
    }

    /// Squared Euclidean distance; used only for nearest-neighbour style
    /// lookups in examples, never for correctness-relevant geometry.
    pub fn l2_squared(&self, other: &Point) -> u64 {
        let dx = (self.x as i64 - other.x as i64).unsigned_abs();
        let dy = (self.y as i64 - other.y as i64).unsigned_abs();
        dx * dx + dy * dy
    }
}

/// Axis-aligned bounding box of a set of points. `max_x`/`max_y` are
/// inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundingBox {
    pub min_x: i32,
    pub min_y: i32,
    pub max_x: i32,
    pub max_y: i32,
}

impl BoundingBox {
    /// The empty bounding box; extending it with any point yields that point.
    pub const EMPTY: BoundingBox = BoundingBox {
        min_x: i32::MAX,
        min_y: i32::MAX,
        max_x: i32::MIN,
        max_y: i32::MIN,
    };

    /// Computes the bounding box of an iterator of points. Returns
    /// [`BoundingBox::EMPTY`] for an empty iterator.
    pub fn of(points: impl IntoIterator<Item = Point>) -> Self {
        let mut bb = Self::EMPTY;
        for p in points {
            bb.extend(p);
        }
        bb
    }

    /// Grows the box to contain `p`.
    pub fn extend(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// True if no point has been added.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// True if `p` lies inside the box (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        !self.is_empty()
            && p.x >= self.min_x
            && p.x <= self.max_x
            && p.y >= self.min_y
            && p.y <= self.max_y
    }

    /// Width of the box (`0` for a single column of points).
    pub fn width(&self) -> u64 {
        debug_assert!(!self.is_empty());
        (self.max_x as i64 - self.min_x as i64) as u64
    }

    /// Height of the box.
    pub fn height(&self) -> u64 {
        debug_assert!(!self.is_empty());
        (self.max_y as i64 - self.min_y as i64) as u64
    }

    /// Side of the smallest enclosing square, i.e. `max(width, height)`.
    pub fn square_side(&self) -> u64 {
        self.width().max(self.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_distance_is_chebyshev() {
        let a = Point::new(0, 0);
        assert_eq!(a.linf_distance(&Point::new(3, -4)), 4);
        assert_eq!(a.linf_distance(&Point::new(-7, 2)), 7);
        assert_eq!(a.linf_distance(&a), 0);
    }

    #[test]
    fn linf_distance_handles_extremes_without_overflow() {
        let a = Point::new(i32::MIN, i32::MIN);
        let b = Point::new(i32::MAX, i32::MAX);
        assert_eq!(a.linf_distance(&b), u32::MAX as u64);
    }

    #[test]
    fn bounding_box_of_points() {
        let bb = BoundingBox::of([Point::new(1, 5), Point::new(-3, 2), Point::new(4, -1)]);
        assert_eq!(bb.min_x, -3);
        assert_eq!(bb.max_x, 4);
        assert_eq!(bb.min_y, -1);
        assert_eq!(bb.max_y, 5);
        assert_eq!(bb.width(), 7);
        assert_eq!(bb.height(), 6);
        assert_eq!(bb.square_side(), 7);
    }

    #[test]
    fn empty_bounding_box() {
        let bb = BoundingBox::of([]);
        assert!(bb.is_empty());
        assert!(!bb.contains(Point::new(0, 0)));
    }

    #[test]
    fn contains_is_inclusive() {
        let bb = BoundingBox::of([Point::new(0, 0), Point::new(10, 10)]);
        assert!(bb.contains(Point::new(0, 0)));
        assert!(bb.contains(Point::new(10, 10)));
        assert!(bb.contains(Point::new(5, 5)));
        assert!(!bb.contains(Point::new(11, 5)));
        assert!(!bb.contains(Point::new(5, -1)));
    }

    #[test]
    fn single_point_box() {
        let bb = BoundingBox::of([Point::new(3, 3)]);
        assert_eq!(bb.width(), 0);
        assert_eq!(bb.square_side(), 0);
        assert!(bb.contains(Point::new(3, 3)));
    }
}
