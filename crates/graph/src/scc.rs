//! Strongly connected components (iterative Tarjan) and SCC condensation.
//!
//! The paper assumes a connected network. Real DIMACS data and synthetic
//! generators can leave stray weakly-connected fringes; restricting to the
//! largest SCC is the standard preprocessing step shared by all methods.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::NodeId;

/// Computes the strongly connected components of `g`. Returns
/// `(component_id per node, component count)`; component ids are arbitrary
/// but contiguous in `0..count`.
pub fn strongly_connected_components(g: &Graph) -> (Vec<u32>, usize) {
    const UNVISITED: u32 = u32::MAX;
    let n = g.num_nodes();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNVISITED; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0usize;

    // Explicit DFS stack: (node, next out-edge position to examine).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in g.node_ids() {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            let out = g.out_edges(v);
            if *ei < out.len() {
                let w = out[*ei].head;
                *ei += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_components as u32;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }
    (comp, num_components)
}

/// Restricts `g` to its largest strongly connected component. Returns the
/// new graph and, for each new node, the original [`NodeId`] it came from.
/// An empty graph maps to an empty graph.
pub fn condense_to_largest_scc(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (comp, count) = strongly_connected_components(g);
    if count <= 1 {
        return (g.clone(), g.node_ids().collect());
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let largest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("non-empty component list");

    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    let mut new_to_old = Vec::with_capacity(sizes[largest as usize]);
    let mut b = GraphBuilder::with_capacity(sizes[largest as usize], g.num_edges());
    for v in g.node_ids() {
        if comp[v as usize] == largest {
            old_to_new[v as usize] = b.add_node(g.coord(v));
            new_to_old.push(v);
        }
    }
    for (tail, arc) in g.edges() {
        if comp[tail as usize] == largest && comp[arc.head as usize] == largest {
            b.add_edge(old_to_new[tail as usize], old_to_new[arc.head as usize], arc.weight);
        }
    }
    (b.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Point};

    fn two_cycles_and_bridge() -> Graph {
        // Cycle A: 0 <-> 1 <-> 2 (strongly connected via pairwise edges)
        // Cycle B: 3 <-> 4
        // One-way bridge 2 -> 3 keeps them weakly but not strongly joined.
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i, 0));
        }
        b.add_bidirectional_edge(0, 1, 1);
        b.add_bidirectional_edge(1, 2, 1);
        b.add_bidirectional_edge(3, 4, 1);
        b.add_edge(2, 3, 1);
        b.build()
    }

    #[test]
    fn finds_two_components() {
        let g = two_cycles_and_bridge();
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn condense_keeps_larger_side() {
        let g = two_cycles_and_bridge();
        let (scc, mapping) = condense_to_largest_scc(&g);
        assert_eq!(scc.num_nodes(), 3);
        assert_eq!(mapping, vec![0, 1, 2]);
        // Bridge edge to the dropped component must be gone.
        assert_eq!(scc.num_edges(), 4);
    }

    #[test]
    fn strongly_connected_graph_is_one_component() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        for i in 0..4u32 {
            b.add_edge(i, (i + 1) % 4, 1);
        }
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        let (scc, mapping) = condense_to_largest_scc(&g);
        assert_eq!(scc.num_nodes(), 4);
        assert_eq!(mapping.len(), 4);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_graph_condenses_to_empty() {
        let g = GraphBuilder::new().build();
        let (scc, mapping) = condense_to_largest_scc(&g);
        assert_eq!(scc.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node directed path; recursion-based Tarjan would blow the
        // stack, the iterative version must not.
        let n = 100_000u32;
        let mut b = GraphBuilder::with_capacity(n as usize, n as usize);
        for i in 0..n {
            b.add_node(Point::new(i as i32, 0));
        }
        for i in 0..n - 1 {
            b.add_edge(i, i + 1, 1);
        }
        let g = b.build();
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, n as usize);
    }
}
