//! Summary statistics used by the dataset registry (Table 2) and by the
//! grid hierarchy to size `h`.

use crate::graph::Graph;

/// Aggregate facts about a road network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Maximum node degree (max of in/out).
    pub max_degree: usize,
    /// Smallest edge weight.
    pub min_weight: u64,
    /// Largest edge weight.
    pub max_weight: u64,
    /// Largest pairwise L∞ coordinate distance, approximated by the bounding
    /// box side (exact for the max; the true `dmax` over node pairs equals
    /// the box side in at least one axis).
    pub dmax_linf: u64,
    /// Smallest *positive* pairwise L∞ distance between nodes. `None` when
    /// fewer than two distinct coordinates exist.
    pub dmin_linf: Option<u64>,
}

impl GraphStats {
    /// Computes statistics for `g`. `dmin` uses a grid-bucket sweep, which
    /// is `O(n)` expected for road-like data.
    pub fn compute(g: &Graph) -> Self {
        let (mut min_w, mut max_w) = (u64::MAX, 0u64);
        for (_, a) in g.edges() {
            min_w = min_w.min(a.weight as u64);
            max_w = max_w.max(a.weight as u64);
        }
        if g.num_edges() == 0 {
            min_w = 0;
        }
        let bb = g.bounding_box();
        let dmax = if bb.is_empty() { 0 } else { bb.square_side() };
        GraphStats {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            max_degree: g.max_degree(),
            min_weight: min_w,
            max_weight: max_w,
            dmax_linf: dmax,
            dmin_linf: min_positive_linf(g),
        }
    }

    /// The paper's `α = dmax / dmin` aspect ratio (L∞). Returns `None` for
    /// degenerate graphs.
    pub fn alpha(&self) -> Option<u64> {
        let dmin = self.dmin_linf?;
        if dmin == 0 || self.dmax_linf == 0 {
            return None;
        }
        Some(self.dmax_linf / dmin)
    }
}

/// Smallest positive L∞ distance between any two nodes.
///
/// Strategy: bucket nodes into a coarse grid sized so the expected bucket
/// occupancy is O(1), then compare each node with nodes in its 3×3 bucket
/// neighbourhood, shrinking the candidate answer. Falls back to exact
/// pairwise for tiny graphs.
fn min_positive_linf(g: &Graph) -> Option<u64> {
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    if n <= 64 {
        return min_positive_linf_exact(g);
    }
    let bb = g.bounding_box();
    let side = bb.square_side().max(1);
    // ~n buckets along each axis² → expected O(1) nodes per bucket.
    let cells_per_axis = (n as f64).sqrt().ceil() as u64;
    let cell = (side / cells_per_axis).max(1);

    use std::collections::HashMap;
    let mut buckets: HashMap<(u64, u64), Vec<u32>> = HashMap::new();
    for v in g.node_ids() {
        let p = g.coord(v);
        let bx = (p.x as i64 - bb.min_x as i64) as u64 / cell;
        let by = (p.y as i64 - bb.min_y as i64) as u64 / cell;
        buckets.entry((bx, by)).or_default().push(v);
    }

    let mut best: Option<u64> = None;
    for (&(bx, by), nodes) in &buckets {
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nb = (bx as i64 + dx, by as i64 + dy);
                if nb.0 < 0 || nb.1 < 0 {
                    continue;
                }
                let Some(neigh) = buckets.get(&(nb.0 as u64, nb.1 as u64)) else {
                    continue;
                };
                for &u in nodes {
                    for &v in neigh {
                        if u >= v && (dx, dy) == (0, 0) {
                            continue;
                        }
                        let d = g.coord(u).linf_distance(&g.coord(v));
                        if d > 0 {
                            best = Some(best.map_or(d, |b| b.min(d)));
                        }
                    }
                }
            }
        }
    }
    // If all nodes inside every 3×3 neighbourhood coincide (or buckets are
    // too coarse), fall back to exact.
    best.or_else(|| min_positive_linf_exact(g))
}

fn min_positive_linf_exact(g: &Graph) -> Option<u64> {
    let mut best: Option<u64> = None;
    for u in g.node_ids() {
        for v in (u + 1)..g.num_nodes() as u32 {
            let d = g.coord(u).linf_distance(&g.coord(v));
            if d > 0 {
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Point};

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(10, 0));
        b.add_node(Point::new(0, 3));
        b.add_edge(0, 1, 5);
        b.add_edge(1, 2, 8);
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 3);
        assert_eq!(s.num_edges, 2);
        assert_eq!(s.min_weight, 5);
        assert_eq!(s.max_weight, 8);
        assert_eq!(s.dmax_linf, 10);
        assert_eq!(s.dmin_linf, Some(3));
        assert_eq!(s.alpha(), Some(3));
    }

    #[test]
    fn degenerate_graphs() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.dmin_linf, None);
        assert_eq!(s.alpha(), None);

        let mut b = GraphBuilder::new();
        b.add_node(Point::new(5, 5));
        let s1 = GraphStats::compute(&b.build());
        assert_eq!(s1.dmin_linf, None);
    }

    #[test]
    fn coincident_points_ignored_for_dmin() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(4, 0));
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.dmin_linf, Some(4));
    }

    #[test]
    fn bucketed_dmin_matches_exact_on_larger_graph() {
        // 20×20 lattice with spacing 7 → dmin must be 7.
        let mut b = GraphBuilder::new();
        for y in 0..20 {
            for x in 0..20 {
                b.add_node(Point::new(x * 7, y * 7));
            }
        }
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.dmin_linf, Some(7));
    }
}
