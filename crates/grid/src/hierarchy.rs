//! The leveled grid geometry.

use ah_graph::{BoundingBox, Point};

use crate::region::Region;

/// A cell coordinate inside some grid `R_i`: column `x`, row `y`, both
/// counted from the grid's south-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    pub x: u32,
    pub y: u32,
}

impl Cell {
    /// Chebyshev (L∞) distance between two cells, in cells.
    pub fn chebyshev(&self, other: &Cell) -> u32 {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx.max(dy)
    }
}

/// The grid hierarchy `R_1 … R_h` over a bounding box.
///
/// All grids share the same origin (the box's min corner). `R_i`'s cell side
/// is `s1 · 2^(i-1)` where `s1` is the side of the finest cells, so every
/// `R_(i+1)` cell is exactly the union of 2×2 `R_i` cells, as the paper's
/// recursive-split construction requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridHierarchy {
    origin: Point,
    /// Number of grids (the paper's `h`). At least 1.
    h: u32,
    /// Cell side of the finest grid `R_1`.
    s1: u64,
}

/// Upper bound on `h`; the paper observes `h ≤ 26` even for planet-scale
/// networks at metre resolution.
pub const MAX_LEVELS: u32 = 26;

impl GridHierarchy {
    /// Fits a hierarchy to a bounding box. `max_levels` caps `h` (26 is
    /// the paper's planetary bound).
    ///
    /// `h` is chosen as the smallest value for which the finest cells have
    /// side 1 — since coordinates are integral, side-1 cells contain at most
    /// one node per distinct coordinate, matching the paper's stopping rule.
    ///
    /// # Panics
    /// Panics on an empty bounding box.
    pub fn fit(bb: BoundingBox, max_levels: u32) -> Self {
        assert!(!bb.is_empty(), "cannot fit a grid to an empty bounding box");
        let max_levels = max_levels.clamp(1, MAX_LEVELS);
        // Side of the covered square; +1 because coordinates are inclusive
        // (a box from 0 to 7 spans 8 coordinate units).
        let side = bb.square_side() + 1;
        // Smallest h with 2^(h+1) >= side, so that s1 == 1.
        let mut h = 1u32;
        while h < max_levels && (1u64 << (h + 1)) < side {
            h += 1;
        }
        let cells = 1u64 << (h + 1);
        let s1 = side.div_ceil(cells).max(1);
        GridHierarchy {
            origin: Point::new(bb.min_x, bb.min_y),
            h,
            s1,
        }
    }

    /// Fits a hierarchy to a point set following the paper's stopping rule:
    /// split until every finest cell contains at most one point (or the
    /// cells reach side 1 / the level cap). This keeps `h` minimal, so fine
    /// grid levels are never wasted on resolutions below the node spacing.
    ///
    /// # Panics
    /// Panics on an empty point set.
    pub fn fit_to_points(points: &[Point], max_levels: u32) -> Self {
        let bb = BoundingBox::of(points.iter().copied());
        assert!(!bb.is_empty(), "cannot fit a grid to an empty point set");
        let max_levels = max_levels.clamp(1, MAX_LEVELS);
        let side = bb.square_side() + 1;
        let origin = Point::new(bb.min_x, bb.min_y);
        for h in 1..=max_levels {
            let cells = 1u64 << (h + 1);
            let s1 = side.div_ceil(cells).max(1);
            if s1 == 1 || Self::occupancy_at_most_one(points, origin, s1) {
                return GridHierarchy { origin, h, s1 };
            }
        }
        let s1 = side.div_ceil(1u64 << (max_levels + 1)).max(1);
        GridHierarchy {
            origin,
            h: max_levels,
            s1,
        }
    }

    fn occupancy_at_most_one(points: &[Point], origin: Point, s1: u64) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(points.len());
        for p in points {
            let cx = (p.x as i64 - origin.x as i64) as u64 / s1;
            let cy = (p.y as i64 - origin.y as i64) as u64 / s1;
            if !seen.insert((cx, cy)) {
                return false;
            }
        }
        true
    }

    /// The number of grids `h`; grid levels run `1..=h`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.h
    }

    /// Origin (south-west corner) shared by all grids.
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Cell side length of grid `R_i`.
    ///
    /// # Panics
    /// Panics if `i` is outside `1..=h`.
    #[inline]
    pub fn cell_side(&self, i: u32) -> u64 {
        self.check_level(i);
        self.s1 << (i - 1)
    }

    /// Number of cells per axis of `R_i`: `2^(h+2-i)`.
    #[inline]
    pub fn cells_per_axis(&self, i: u32) -> u32 {
        self.check_level(i);
        1u32 << (self.h + 2 - i)
    }

    /// The cell of `R_i` containing point `p`. Points outside the fitted
    /// box are clamped to the boundary cells so that queries about slightly
    /// stale coordinates stay well-defined.
    pub fn cell_of(&self, i: u32, p: Point) -> Cell {
        let side = self.cell_side(i) as i64;
        let per_axis = self.cells_per_axis(i) as i64;
        let cx = ((p.x as i64 - self.origin.x as i64) / side).clamp(0, per_axis - 1);
        let cy = ((p.y as i64 - self.origin.y as i64) / side).clamp(0, per_axis - 1);
        Cell {
            x: cx as u32,
            y: cy as u32,
        }
    }

    /// True if some (3×3)-cell region of `R_i` covers both points — i.e.
    /// their cells are within Chebyshev distance 2 (the paper's proximity
    /// predicate; the union of all 3×3 regions covering `p` is the 5×5
    /// window centred on `p`'s cell).
    pub fn same_3x3_region(&self, i: u32, p: Point, q: Point) -> bool {
        self.cell_of(i, p).chebyshev(&self.cell_of(i, q)) <= 2
    }

    /// The coarsest grid level `j` such that *no* (3×3)-cell region of
    /// `R_j` covers both points, or `None` if even `R_h`'s regions cover
    /// them. Lemma 3 guarantees the shortest `p`→`q` path then climbs to
    /// hierarchy level `j` or above.
    pub fn separation_level(&self, p: Point, q: Point) -> Option<u32> {
        // Monotone in i: if a 3×3 region of R_i covers both, so does one of
        // R_(i+1) (cells only get coarser). Scan from the top.
        if self.same_3x3_region(self.h, p, q) {
            // Find the finest level where they are still covered, then the
            // next-finer one is the separation level (if any).
            let mut i = self.h;
            while i > 1 && self.same_3x3_region(i - 1, p, q) {
                i -= 1;
            }
            if i == 1 {
                None
            } else {
                Some(i - 1)
            }
        } else {
            Some(self.h)
        }
    }

    /// All (4×4)-cell regions of `R_i` (sliding window, stride one cell)
    /// that contain the given cell. At most 16; fewer near the grid edge.
    pub fn regions_containing_cell(&self, i: u32, c: Cell) -> Vec<Region> {
        let per_axis = self.cells_per_axis(i);
        debug_assert!(per_axis >= 4);
        let lo_x = c.x.saturating_sub(3);
        let hi_x = c.x.min(per_axis - 4);
        let lo_y = c.y.saturating_sub(3);
        let hi_y = c.y.min(per_axis - 4);
        let mut out = Vec::with_capacity(16);
        for rx in lo_x..=hi_x {
            for ry in lo_y..=hi_y {
                out.push(Region::new(i, rx, ry));
            }
        }
        out
    }

    /// The (4×4)-cell regions containing the cell of `p`.
    pub fn regions_containing_point(&self, i: u32, p: Point) -> Vec<Region> {
        self.regions_containing_cell(i, self.cell_of(i, p))
    }

    /// The three scalars that fully determine the hierarchy:
    /// `(origin, h, s1)`. Serialization hook for `ah_store`;
    /// [`GridHierarchy::from_raw_parts`] is the validated inverse.
    pub fn raw_parts(&self) -> (Point, u32, u64) {
        (self.origin, self.h, self.s1)
    }

    /// Rebuilds a hierarchy from its raw scalars (snapshot loading),
    /// rejecting level counts outside `1..=`[`MAX_LEVELS`] and a zero cell
    /// side.
    pub fn from_raw_parts(origin: Point, h: u32, s1: u64) -> Result<Self, &'static str> {
        if h == 0 || h > MAX_LEVELS {
            return Err("grid level count outside 1..=MAX_LEVELS");
        }
        if s1 == 0 {
            return Err("finest cell side must be positive");
        }
        Ok(GridHierarchy { origin, h, s1 })
    }

    fn check_level(&self, i: u32) {
        assert!(
            (1..=self.h).contains(&i),
            "grid level {i} outside 1..={}",
            self.h
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(side: i32) -> BoundingBox {
        BoundingBox::of([Point::new(0, 0), Point::new(side, side)])
    }

    #[test]
    fn fit_chooses_minimal_h() {
        // side = 8 coordinate units → 2^(h+1) >= 8 → h = 2.
        let g = GridHierarchy::fit(square(7), MAX_LEVELS);
        assert_eq!(g.levels(), 2);
        assert_eq!(g.cell_side(1), 1);
        assert_eq!(g.cell_side(2), 2);
        assert_eq!(g.cells_per_axis(2), 4); // R_h is always 4×4
        assert_eq!(g.cells_per_axis(1), 8);
    }

    #[test]
    fn fit_to_points_stops_at_single_occupancy() {
        // 8×8 lattice with spacing 100: cells of side ~100 already hold at
        // most one node, so h stays small instead of racing to side-1 cells.
        let pts: Vec<Point> = (0..8)
            .flat_map(|y| (0..8).map(move |x| Point::new(x * 100, y * 100)))
            .collect();
        let g = GridHierarchy::fit_to_points(&pts, MAX_LEVELS);
        // side = 701; h = 2 gives 8 cells per axis of side ceil(701/8) = 88:
        // occupancy 1 per cell.
        assert_eq!(g.levels(), 2);
        let mut seen = std::collections::HashSet::new();
        for p in &pts {
            assert!(seen.insert(g.cell_of(1, *p)), "two nodes share a cell");
        }
    }

    #[test]
    fn fit_to_points_with_coincident_points_caps_at_side_one() {
        let pts = vec![Point::new(0, 0), Point::new(0, 0), Point::new(500, 500)];
        let g = GridHierarchy::fit_to_points(&pts, MAX_LEVELS);
        assert_eq!(g.cell_side(1), 1);
    }

    #[test]
    fn fit_to_points_respects_cap() {
        let pts = vec![Point::new(0, 0), Point::new(1, 0), Point::new(1 << 20, 1 << 20)];
        let g = GridHierarchy::fit_to_points(&pts, 4);
        assert_eq!(g.levels(), 4);
    }

    #[test]
    fn fit_respects_cap() {
        let g = GridHierarchy::fit(square(1 << 20), 5);
        assert_eq!(g.levels(), 5);
        assert_eq!(g.cells_per_axis(5), 4);
        // s1 must make the finest grid still cover the whole box.
        let covered = g.cell_side(1) * g.cells_per_axis(1) as u64;
        assert!(covered >= (1 << 20) + 1);
    }

    #[test]
    fn nesting_is_exact() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS);
        for i in 1..g.levels() {
            assert_eq!(g.cell_side(i + 1), 2 * g.cell_side(i));
            assert_eq!(g.cells_per_axis(i), 2 * g.cells_per_axis(i + 1));
        }
        // A point's coarse cell is its fine cell halved.
        let p = Point::new(137, 42);
        for i in 1..g.levels() {
            let fine = g.cell_of(i, p);
            let coarse = g.cell_of(i + 1, p);
            assert_eq!(coarse.x, fine.x / 2);
            assert_eq!(coarse.y, fine.y / 2);
        }
    }

    #[test]
    fn cell_of_clamps_out_of_range() {
        let g = GridHierarchy::fit(square(15), MAX_LEVELS);
        let c = g.cell_of(1, Point::new(-100, 500));
        assert_eq!(c.x, 0);
        assert_eq!(c.y, g.cells_per_axis(1) - 1);
    }

    #[test]
    fn chebyshev_cells() {
        let a = Cell { x: 3, y: 7 };
        let b = Cell { x: 5, y: 6 };
        assert_eq!(a.chebyshev(&b), 2);
        assert_eq!(a.chebyshev(&a), 0);
    }

    #[test]
    fn same_3x3_region_predicate() {
        let g = GridHierarchy::fit(square(15), MAX_LEVELS); // h=3, R_1 16 cells
        // Cells (0,0) and (2,2): chebyshev 2 → coverable.
        assert!(g.same_3x3_region(1, Point::new(0, 0), Point::new(2, 2)));
        // Cells (0,0) and (3,0): chebyshev 3 → not coverable.
        assert!(!g.same_3x3_region(1, Point::new(0, 0), Point::new(3, 0)));
        // At the coarsest level (cells of side 4) these land in cells
        // (0,0) and (2,2): coverable by a 3×3 window.
        assert!(g.same_3x3_region(3, Point::new(0, 0), Point::new(11, 11)));
        // Opposite corners land in cells (0,0) and (3,3): not coverable
        // even by the coarsest grid's 3×3 windows.
        assert!(!g.same_3x3_region(3, Point::new(0, 0), Point::new(15, 15)));
    }

    #[test]
    fn separation_level_monotone_and_correct() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS); // h = 7
        let p = Point::new(0, 0);
        // Very close points: never separated.
        assert_eq!(g.separation_level(p, Point::new(1, 1)), None);
        // Distant points are separated at some level; verify the defining
        // property of the returned level.
        let q = Point::new(200, 10);
        let j = g.separation_level(p, q).expect("should separate");
        assert!(!g.same_3x3_region(j, p, q));
        if j < g.levels() {
            assert!(g.same_3x3_region(j + 1, p, q));
        }
    }

    #[test]
    fn separation_level_extremes() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS);
        // Opposite corners of the coarsest grid: cells (0,0) vs (3,3),
        // chebyshev 3 > 2, so they are separated even at R_h.
        let j = g
            .separation_level(Point::new(0, 0), Point::new(255, 255))
            .unwrap();
        assert_eq!(j, g.levels());
    }

    #[test]
    fn regions_containing_interior_cell() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS);
        let per_axis = g.cells_per_axis(1);
        assert!(per_axis >= 12);
        let regions = g.regions_containing_cell(1, Cell { x: 5, y: 6 });
        assert_eq!(regions.len(), 16);
        for r in &regions {
            assert!(r.contains_cell(Cell { x: 5, y: 6 }));
            assert!(r.x + 4 <= per_axis && r.y + 4 <= per_axis);
        }
    }

    #[test]
    fn regions_containing_corner_cell() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS);
        let regions = g.regions_containing_cell(1, Cell { x: 0, y: 0 });
        assert_eq!(regions.len(), 1);
        assert_eq!((regions[0].x, regions[0].y), (0, 0));
    }

    #[test]
    fn coarsest_grid_has_exactly_one_region() {
        let g = GridHierarchy::fit(square(63), MAX_LEVELS);
        let h = g.levels();
        assert_eq!(g.cells_per_axis(h), 4);
        let regions = g.regions_containing_cell(h, Cell { x: 2, y: 1 });
        assert_eq!(regions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty bounding box")]
    fn empty_box_panics() {
        GridHierarchy::fit(BoundingBox::EMPTY, MAX_LEVELS);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn level_zero_is_invalid() {
        let g = GridHierarchy::fit(square(7), MAX_LEVELS);
        g.cell_side(0);
    }

    #[test]
    fn raw_parts_roundtrip_and_validation() {
        let g = GridHierarchy::fit(square(255), MAX_LEVELS);
        let (origin, h, s1) = g.raw_parts();
        let g2 = GridHierarchy::from_raw_parts(origin, h, s1).unwrap();
        assert_eq!(g, g2);
        assert!(GridHierarchy::from_raw_parts(origin, 0, s1).is_err());
        assert!(GridHierarchy::from_raw_parts(origin, MAX_LEVELS + 1, s1).is_err());
        assert!(GridHierarchy::from_raw_parts(origin, h, 0).is_err());
    }

    #[test]
    fn single_point_box_is_fine() {
        let bb = BoundingBox::of([Point::new(5, 5)]);
        let g = GridHierarchy::fit(bb, MAX_LEVELS);
        assert_eq!(g.levels(), 1);
        let c = g.cell_of(1, Point::new(5, 5));
        assert_eq!(c, Cell { x: 0, y: 0 });
    }
}
