//! Square-grid hierarchy `R_1 … R_h` (paper Sections 2 and 3.1).
//!
//! The paper imposes a (4×4)-cell grid `R_h` that tightly covers the road
//! network and recursively splits each cell into 2×2 smaller cells until
//! every cell contains at most one node, producing grids
//! `R_1, …, R_h` where `R_i` has `2^(h+2-i) × 2^(h+2-i)` cells
//! (`R_1` finest, `R_h` the 4×4 grid). This crate provides:
//!
//! * [`GridHierarchy`] — cell geometry at every level, built from a
//!   bounding box,
//! * [`Region`] — a sliding (4×4)-cell region with its strips and bisectors
//!   (Definition 1 geometry),
//! * the 3×3 / 5×5 cover predicates behind the paper's *proximity
//!   constraint* (Sections 3.2 and 4.3).
//!
//! Grid levels are numbered `1..=h` exactly as in the paper.
//!
//! ```
//! use ah_graph::Point;
//! use ah_grid::{GridHierarchy, MAX_LEVELS};
//!
//! let pts = [Point::new(0, 0), Point::new(200, 40), Point::new(255, 255)];
//! let g = GridHierarchy::fit_to_points(&pts, MAX_LEVELS);
//! // Nearby points are never separated (Lemma 3's precondition fails);
//! // far-apart points separate at some grid level.
//! assert_eq!(g.separation_level(pts[0], Point::new(1, 1)), None);
//! assert!(g.separation_level(pts[0], pts[2]).is_some());
//! ```

mod hierarchy;
mod region;

pub use hierarchy::{Cell, GridHierarchy, MAX_LEVELS};
pub use region::{Axis, Region, StripSide};
