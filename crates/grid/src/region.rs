//! Sliding (4×4)-cell regions, their strips and bisectors (Definition 1,
//! Definition 2 geometry).

use ah_graph::Point;

use crate::hierarchy::{Cell, GridHierarchy};

/// One of the four outermost strips of a (4×4)-cell region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StripSide {
    West,
    East,
    South,
    North,
}

impl StripSide {
    /// The four sides in a fixed order.
    pub const ALL: [StripSide; 4] = [
        StripSide::West,
        StripSide::East,
        StripSide::South,
        StripSide::North,
    ];

    /// The strip on the opposite side of the region.
    pub fn opposite(self) -> StripSide {
        match self {
            StripSide::West => StripSide::East,
            StripSide::East => StripSide::West,
            StripSide::South => StripSide::North,
            StripSide::North => StripSide::South,
        }
    }

    /// The bisector separating this strip from its opposite.
    pub fn axis(self) -> Axis {
        match self {
            StripSide::West | StripSide::East => Axis::Vertical,
            StripSide::South | StripSide::North => Axis::Horizontal,
        }
    }
}

/// A bisector orientation: the *vertical* bisector separates west from east,
/// the *horizontal* one separates south from north.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Vertical,
    Horizontal,
}

impl Axis {
    /// Both orientations.
    pub const BOTH: [Axis; 2] = [Axis::Vertical, Axis::Horizontal];
}

/// A (4×4)-cell region of grid `R_level`, identified by its south-west cell
/// `(x, y)`; it covers cell columns `x..x+4` and rows `y..y+4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Region {
    pub level: u32,
    pub x: u32,
    pub y: u32,
}

impl Region {
    /// Creates the region of `R_level` whose south-west cell is `(x, y)`.
    pub fn new(level: u32, x: u32, y: u32) -> Self {
        Region { level, x, y }
    }

    /// True if the cell lies inside the region.
    pub fn contains_cell(&self, c: Cell) -> bool {
        (self.x..self.x + 4).contains(&c.x) && (self.y..self.y + 4).contains(&c.y)
    }

    /// True if the point's cell (at this region's level) lies inside.
    pub fn contains_point(&self, gh: &GridHierarchy, p: Point) -> bool {
        self.contains_cell(gh.cell_of(self.level, p))
    }

    /// True if the cell is within Chebyshev distance `ring` of the region
    /// (`ring = 0` is containment).
    pub fn contains_cell_with_ring(&self, c: Cell, ring: u32) -> bool {
        let lo_x = self.x.saturating_sub(ring);
        let lo_y = self.y.saturating_sub(ring);
        (lo_x..self.x + 4 + ring).contains(&c.x) && (lo_y..self.y + 4 + ring).contains(&c.y)
    }

    /// True if the cell belongs to the 2×2 centre of the region
    /// (Definition 2 excludes these from being border nodes).
    pub fn in_center_2x2(&self, c: Cell) -> bool {
        (self.x + 1..=self.x + 2).contains(&c.x) && (self.y + 1..=self.y + 2).contains(&c.y)
    }

    /// True if the cell lies in the given strip of this region.
    pub fn in_strip(&self, c: Cell, side: StripSide) -> bool {
        if !self.contains_cell(c) {
            return false;
        }
        match side {
            StripSide::West => c.x == self.x,
            StripSide::East => c.x == self.x + 3,
            StripSide::South => c.y == self.y,
            StripSide::North => c.y == self.y + 3,
        }
    }

    /// Side of the region's bisector a cell falls on. `false` = west/south,
    /// `true` = east/north. Well-defined for cells outside the region too
    /// (the bisector is an infinite line).
    pub fn bisector_side(&self, axis: Axis, c: Cell) -> bool {
        match axis {
            Axis::Vertical => c.x >= self.x + 2,
            Axis::Horizontal => c.y >= self.y + 2,
        }
    }

    /// True if the cell is in one of the two cell columns/rows adjacent to
    /// the bisector (Definition 1 excludes such endpoints from spanning
    /// paths).
    pub fn adjacent_to_bisector(&self, axis: Axis, c: Cell) -> bool {
        match axis {
            Axis::Vertical => c.x == self.x + 1 || c.x == self.x + 2,
            Axis::Horizontal => c.y == self.y + 1 || c.y == self.y + 2,
        }
    }

    /// True if an edge between cells `a` and `b` crosses the bisector
    /// (its endpoints lie on different sides).
    pub fn edge_crosses_bisector(&self, axis: Axis, a: Cell, b: Cell) -> bool {
        self.bisector_side(axis, a) != self.bisector_side(axis, b)
    }

    /// True if a pair of endpoint cells qualifies as spanning-path endpoints
    /// for the given bisector: different sides, neither adjacent to the
    /// bisector (Definition 1 conditions (i) and (ii)).
    pub fn valid_spanning_endpoints(&self, axis: Axis, a: Cell, b: Cell) -> bool {
        self.bisector_side(axis, a) != self.bisector_side(axis, b)
            && !self.adjacent_to_bisector(axis, a)
            && !self.adjacent_to_bisector(axis, b)
    }

    /// True if the edge between cells `a` and `b` crosses the boundary of
    /// one of the four strips of this region (the Definition 2 trigger for
    /// border nodes). Cell-based approximation: an edge crosses a strip
    /// boundary iff exactly one endpoint's cell lies inside that strip.
    pub fn edge_crosses_strip_boundary(&self, a: Cell, b: Cell) -> bool {
        if a == b {
            return false;
        }
        StripSide::ALL
            .iter()
            .any(|&s| self.in_strip(a, s) != self.in_strip(b, s))
    }

    /// Border-node test for the endpoint `c` of an edge `(c, other)`
    /// (Definition 2): the edge must cross a strip boundary, `c` must not be
    /// in the centre 2×2, and — a mild localization we add — `c` must lie
    /// within one cell ring of the region, so that "border nodes of `B`"
    /// stays a local notion even for long edges.
    pub fn is_border_endpoint(&self, c: Cell, other: Cell) -> bool {
        self.edge_crosses_strip_boundary(c, other)
            && !self.in_center_2x2(c)
            && self.contains_cell_with_ring(c, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(1, 10, 20)
    }

    fn cell(x: u32, y: u32) -> Cell {
        Cell { x, y }
    }

    #[test]
    fn containment() {
        let r = region();
        assert!(r.contains_cell(cell(10, 20)));
        assert!(r.contains_cell(cell(13, 23)));
        assert!(!r.contains_cell(cell(14, 20)));
        assert!(!r.contains_cell(cell(9, 21)));
    }

    #[test]
    fn ring_containment() {
        let r = region();
        assert!(r.contains_cell_with_ring(cell(9, 19), 1));
        assert!(r.contains_cell_with_ring(cell(14, 24), 1));
        assert!(!r.contains_cell_with_ring(cell(8, 20), 1));
        assert!(r.contains_cell_with_ring(cell(10, 20), 0));
    }

    #[test]
    fn center_cells() {
        let r = region();
        for x in 10..14 {
            for y in 20..24 {
                let expected = (11..=12).contains(&x) && (21..=22).contains(&y);
                assert_eq!(r.in_center_2x2(cell(x, y)), expected, "({x},{y})");
            }
        }
    }

    #[test]
    fn strips() {
        let r = region();
        assert!(r.in_strip(cell(10, 22), StripSide::West));
        assert!(r.in_strip(cell(13, 22), StripSide::East));
        assert!(r.in_strip(cell(12, 20), StripSide::South));
        assert!(r.in_strip(cell(12, 23), StripSide::North));
        // Corner cell belongs to two strips.
        assert!(r.in_strip(cell(10, 20), StripSide::West));
        assert!(r.in_strip(cell(10, 20), StripSide::South));
        // Outside the region, never in a strip.
        assert!(!r.in_strip(cell(9, 20), StripSide::West));
    }

    #[test]
    fn strip_side_helpers() {
        assert_eq!(StripSide::West.opposite(), StripSide::East);
        assert_eq!(StripSide::North.opposite(), StripSide::South);
        assert_eq!(StripSide::West.axis(), Axis::Vertical);
        assert_eq!(StripSide::South.axis(), Axis::Horizontal);
    }

    #[test]
    fn bisector_sides() {
        let r = region();
        assert!(!r.bisector_side(Axis::Vertical, cell(11, 22)));
        assert!(r.bisector_side(Axis::Vertical, cell(12, 22)));
        assert!(!r.bisector_side(Axis::Horizontal, cell(11, 21)));
        assert!(r.bisector_side(Axis::Horizontal, cell(11, 22)));
        // Works outside the region too.
        assert!(!r.bisector_side(Axis::Vertical, cell(2, 22)));
        assert!(r.bisector_side(Axis::Vertical, cell(40, 22)));
    }

    #[test]
    fn bisector_adjacency() {
        let r = region();
        assert!(r.adjacent_to_bisector(Axis::Vertical, cell(11, 20)));
        assert!(r.adjacent_to_bisector(Axis::Vertical, cell(12, 20)));
        assert!(!r.adjacent_to_bisector(Axis::Vertical, cell(10, 20)));
        assert!(!r.adjacent_to_bisector(Axis::Vertical, cell(13, 20)));
    }

    #[test]
    fn crossing_and_spanning() {
        let r = region();
        assert!(r.edge_crosses_bisector(Axis::Vertical, cell(11, 21), cell(12, 21)));
        assert!(!r.edge_crosses_bisector(Axis::Vertical, cell(10, 21), cell(11, 21)));
        // West strip ↔ east strip endpoints: valid.
        assert!(r.valid_spanning_endpoints(Axis::Vertical, cell(10, 21), cell(13, 22)));
        // Endpoint adjacent to the bisector: invalid.
        assert!(!r.valid_spanning_endpoints(Axis::Vertical, cell(11, 21), cell(13, 22)));
        // Same side: invalid.
        assert!(!r.valid_spanning_endpoints(Axis::Vertical, cell(10, 21), cell(10, 23)));
        // Endpoints beyond the region still qualify (AH's type-(b) paths).
        assert!(r.valid_spanning_endpoints(Axis::Vertical, cell(9, 21), cell(14, 22)));
    }

    #[test]
    fn strip_boundary_crossings() {
        let r = region();
        // West-strip cell to interior cell: crosses the west strip's inner
        // boundary.
        assert!(r.edge_crosses_strip_boundary(cell(10, 21), cell(11, 21)));
        // Inside the centre only: crosses nothing.
        assert!(!r.edge_crosses_strip_boundary(cell(11, 21), cell(12, 21)));
        // Leaving the region from the west strip.
        assert!(r.edge_crosses_strip_boundary(cell(10, 21), cell(9, 21)));
        // Same cell: nothing.
        assert!(!r.edge_crosses_strip_boundary(cell(10, 21), cell(10, 21)));
    }

    #[test]
    fn border_endpoint_rules() {
        let r = region();
        // West strip node with an edge into the interior: border node.
        assert!(r.is_border_endpoint(cell(10, 21), cell(11, 21)));
        // Its interior partner is in the centre 2×2 → not a border node.
        assert!(!r.is_border_endpoint(cell(11, 21), cell(10, 21)));
        // Node one ring outside with an edge into the west strip: border.
        assert!(r.is_border_endpoint(cell(9, 21), cell(10, 21)));
        // Node far outside: not border (locality rule).
        assert!(!r.is_border_endpoint(cell(5, 21), cell(10, 21)));
        // North strip corner via vertical crossing.
        assert!(r.is_border_endpoint(cell(13, 23), cell(13, 22)));
    }
}
