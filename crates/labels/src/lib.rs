//! **Hub labeling** — an exact distance-only oracle built by pruned
//! labeling over the contraction order.
//!
//! The AH hierarchy (and the CH baseline) answer a distance query by a
//! bidirectional *graph search* over the shortcut-augmented network.
//! Distance-only traffic can be served strictly faster by *hub labels*
//! in the style of Pruned Landmark Labeling (Akiba et al., SIGMOD 2013):
//! every node `u` stores two sorted arrays of `(hub, dist)` pairs —
//! `L_out(u)` with exact distances from `u` to a set of hubs, and
//! `L_in(u)` with exact distances from a set of hubs to `u` — such that
//! every shortest path `s → t` passes through at least one hub common to
//! `L_out(s)` and `L_in(t)` (the *2-hop cover* property). A query is
//! then a two-pointer merge of two sorted arrays:
//!
//! ```text
//! d(s, t) = min over h in L_out(s) ∩ L_in(t) of d(s, h) + d(h, t)
//! ```
//!
//! — no priority queue, no visited set, and perfectly linear memory
//! access, which is why labels dominate search hierarchies on the
//! distance-only workload class.
//!
//! # Construction
//!
//! [`LabelIndex::build`] reuses the contraction order the workspace
//! already computes for CH (`ChIndex::order()`; the same descending-rank
//! convention as `Hierarchy::rank`): hubs are processed from the most
//! important node downward, and each hub `h` runs one forward and one
//! backward *pruned* Dijkstra. When the search from `h` settles `u` at
//! distance `d`, the partially built labels are first consulted: if they
//! already certify a distance `≤ d` through a higher-ranked hub, `u` is
//! pruned — it receives no entry and relaxes no edges. Only
//! non-dominated entries survive, which is what keeps labels small
//! (close to the CH search-space size) instead of `Θ(n)` per node.
//!
//! Entries store the full [`Dist`] — length *and* nuance — so label
//! answers are bit-identical to every other engine in the workspace,
//! including the tie-break component (paper Appendix A).
//!
//! # Layout
//!
//! Labels are stored CSR-style: one flat [`LabelEntry`] array per
//! direction plus `n + 1` offsets, each node's slice sorted by hub id.
//! The flat layout is what the snapshot format persists verbatim
//! (`docs/FORMAT.md`, `labels` section) and what keeps the query's
//! two-pointer merge cache-friendly.
//!
//! ```
//! use ah_labels::LabelIndex;
//!
//! let g = ah_data::fixtures::lattice(4, 4, 10);
//! let ch = ah_ch::ChIndex::build(&g);
//! let labels = LabelIndex::build(&g, ch.order());
//! let want = ah_search::dijkstra_distance(&g, 0, 15).map(|d| d.length);
//! assert_eq!(labels.distance(0, 15), want);
//! assert_eq!(labels.distance(5, 5), Some(0));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Dist, Graph, NodeId, INFINITY};
use ah_obs::CostCounters;

pub mod scenario;

/// One hub label: the exact [`Dist`] between a node and `hub` (direction
/// depends on which side the entry lives in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelEntry {
    /// The hub node id.
    pub hub: NodeId,
    /// Exact distance node→hub (out side) or hub→node (in side).
    pub dist: Dist,
}

/// Size and shape summary of a [`LabelIndex`] (reported by the serving
/// benchmarks next to AH's and CH's index statistics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Number of labeled nodes.
    pub num_nodes: usize,
    /// Total entries across both directions.
    pub total_entries: usize,
    /// Mean entries per node per direction (the figure PLL papers report).
    pub avg_label_entries: f64,
    /// Largest single label array.
    pub max_label_entries: usize,
    /// In-memory size of the label arrays in bytes.
    pub bytes: usize,
}

/// A complete 2-hop labeling of one road network. Immutable after build;
/// queries need no per-thread scratch, so `&LabelIndex` is shared freely
/// across serving workers.
pub struct LabelIndex {
    out_offsets: Vec<u32>,
    out_entries: Vec<LabelEntry>,
    in_offsets: Vec<u32>,
    in_entries: Vec<LabelEntry>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LabelIndex>()
};

/// Per-build scratch for the pruned Dijkstra runs: node-indexed arrays
/// reset via an explicit touched list, so each hub's search pays only for
/// the nodes it actually visits.
struct Scratch {
    /// Tentative distance per node; `INFINITY` when untouched.
    dist: Vec<Dist>,
    settled: Vec<bool>,
    touched: Vec<NodeId>,
    /// Hub-indexed distances of the current hub's own labels (the other
    /// direction), for O(|label|) pruning checks; `INFINITY` when the
    /// node is not a hub of the current root.
    hub_dist: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            dist: vec![INFINITY; n],
            settled: vec![false; n],
            touched: Vec::new(),
            hub_dist: vec![INFINITY; n],
            heap: BinaryHeap::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INFINITY;
            self.settled[v as usize] = false;
        }
        self.touched.clear();
        self.heap.clear();
    }
}

impl LabelIndex {
    /// Builds the labeling for `g` using `order` as the hub order.
    ///
    /// `order` follows the CH convention (`ChIndex::order()`): `order[i]`
    /// is the node contracted `i`-th, so `order[n-1]` is the most
    /// important node and is processed first. Any permutation of the node
    /// ids yields a *correct* (exact) labeling; the contraction order is
    /// what makes it a *small* one.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..g.num_nodes()`.
    pub fn build(g: &Graph, order: &[NodeId]) -> LabelIndex {
        let n = g.num_nodes();
        assert_eq!(order.len(), n, "hub order must cover every node");
        let mut seen = vec![false; n];
        for &v in order {
            assert!(
                (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true),
                "hub order must be a permutation of the node ids"
            );
        }

        // Per-node growing labels, appended in hub (descending rank)
        // order; flattened into CSR at the end.
        let mut out_labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut in_labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut scratch = Scratch::new(n);

        for &hub in order.iter().rev() {
            // Forward search from `hub` fills L_in(u) = d(hub, u),
            // pruned against L_out(hub) ∘ L_in(u).
            Self::pruned_sweep(
                g,
                hub,
                Direction::Forward,
                &mut out_labels,
                &mut in_labels,
                &mut scratch,
            );
            // Backward search fills L_out(u) = d(u, hub), pruned against
            // L_out(u) ∘ L_in(hub).
            Self::pruned_sweep(
                g,
                hub,
                Direction::Backward,
                &mut out_labels,
                &mut in_labels,
                &mut scratch,
            );
        }

        // Queries merge by hub id, so re-sort each label from rank order
        // to id order (both strictly monotone per node — each hub's
        // search settles a node at most once).
        let flatten = |mut labels: Vec<Vec<LabelEntry>>| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut entries = Vec::new();
            offsets.push(0u32);
            for l in &mut labels {
                l.sort_unstable_by_key(|e| e.hub);
                entries.extend_from_slice(l);
                offsets.push(u32::try_from(entries.len()).expect("label arrays exceed u32"));
            }
            (offsets, entries)
        };
        let (out_offsets, out_entries) = flatten(out_labels);
        let (in_offsets, in_entries) = flatten(in_labels);
        LabelIndex {
            out_offsets,
            out_entries,
            in_offsets,
            in_entries,
        }
    }

    /// One pruned Dijkstra from `hub`: forward fills in-labels through
    /// out-edges, backward fills out-labels through in-edges.
    fn pruned_sweep(
        g: &Graph,
        hub: NodeId,
        direction: Direction,
        out_labels: &mut [Vec<LabelEntry>],
        in_labels: &mut [Vec<LabelEntry>],
        scratch: &mut Scratch,
    ) {
        // The hub's own labels on the opposite side feed the pruning
        // check: forward prunes via L_out(hub), backward via L_in(hub).
        let (own, filled): (&[LabelEntry], &mut [Vec<LabelEntry>]) = match direction {
            Direction::Forward => (&out_labels[hub as usize], in_labels),
            Direction::Backward => (&in_labels[hub as usize], out_labels),
        };
        for e in own {
            scratch.hub_dist[e.hub as usize] = e.dist;
        }

        scratch.heap.push(Reverse((Dist::ZERO, hub)));
        scratch.dist[hub as usize] = Dist::ZERO;
        scratch.touched.push(hub);
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if scratch.settled[u as usize] {
                continue;
            }
            scratch.settled[u as usize] = true;
            // Prune: if the labels built so far (all through strictly
            // higher-ranked hubs) already certify hub→u (or u→hub) at a
            // distance ≤ d, this entry is dominated — record nothing and
            // relax nothing. Lexicographic `Dist` order makes ties exact:
            // equal (length, nuance) means the same canonical path.
            let certified = filled[u as usize]
                .iter()
                .map(|e| scratch.hub_dist[e.hub as usize].concat(e.dist))
                .min()
                .unwrap_or(INFINITY);
            if certified <= d {
                continue;
            }
            filled[u as usize].push(LabelEntry { hub, dist: d });
            let arcs = match direction {
                Direction::Forward => g.out_edges(u),
                Direction::Backward => g.in_edges(u),
            };
            for a in arcs {
                let nd = d.step(a.weight as u64, a.nuance as u64);
                if nd < scratch.dist[a.head as usize] {
                    if scratch.dist[a.head as usize] == INFINITY {
                        scratch.touched.push(a.head);
                    }
                    scratch.dist[a.head as usize] = nd;
                    scratch.heap.push(Reverse((nd, a.head)));
                }
            }
        }

        for e in own {
            scratch.hub_dist[e.hub as usize] = INFINITY;
        }
        scratch.reset();
    }

    /// Number of labeled nodes.
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// `L_out(v)`: hubs reachable *from* `v`, sorted by hub id.
    pub fn out_labels(&self, v: NodeId) -> &[LabelEntry] {
        let (a, b) = (self.out_offsets[v as usize], self.out_offsets[v as usize + 1]);
        &self.out_entries[a as usize..b as usize]
    }

    /// `L_in(v)`: hubs that reach `v`, sorted by hub id.
    pub fn in_labels(&self, v: NodeId) -> &[LabelEntry] {
        let (a, b) = (self.in_offsets[v as usize], self.in_offsets[v as usize + 1]);
        &self.in_entries[a as usize..b as usize]
    }

    /// Exact distance with the nuance tie-break component, or `None` when
    /// `t` is unreachable from `s` — bit-identical to `AhQuery`,
    /// `ChQuery` and plain Dijkstra on `Dist`.
    pub fn distance_full(&self, s: NodeId, t: NodeId) -> Option<Dist> {
        let mut scratch = CostCounters::default();
        self.distance_full_with_cost(s, t, &mut scratch)
    }

    /// [`Self::distance_full`] with cost accounting: every label entry
    /// the two-pointer merge advances past is one
    /// `label_entries_merged` — the labels analogue of a settled node.
    pub fn distance_full_with_cost(
        &self,
        s: NodeId,
        t: NodeId,
        cost: &mut CostCounters,
    ) -> Option<Dist> {
        let (a, b) = (self.out_labels(s), self.in_labels(t));
        let (mut i, mut j) = (0, 0);
        let mut best = INFINITY;
        while i < a.len() && j < b.len() {
            match a[i].hub.cmp(&b[j].hub) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = a[i].dist.concat(b[j].dist);
                    if d < best {
                        best = d;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        cost.label_entries_merged += (i + j) as u64;
        (!best.is_infinite()).then_some(best)
    }

    /// Exact network distance from `s` to `t` (length only), or `None`
    /// when unreachable.
    pub fn distance(&self, s: NodeId, t: NodeId) -> Option<u64> {
        self.distance_full(s, t).map(|d| d.length)
    }

    /// Size and shape summary.
    pub fn stats(&self) -> LabelStats {
        let n = self.num_nodes();
        let total = self.out_entries.len() + self.in_entries.len();
        let max = (0..n as NodeId)
            .map(|v| self.out_labels(v).len().max(self.in_labels(v).len()))
            .max()
            .unwrap_or(0);
        LabelStats {
            num_nodes: n,
            total_entries: total,
            avg_label_entries: if n == 0 {
                0.0
            } else {
                total as f64 / (2 * n) as f64
            },
            max_label_entries: max,
            bytes: self.size_bytes(),
        }
    }

    /// In-memory size of the label arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of_val(self.out_offsets.as_slice())
            + std::mem::size_of_val(self.out_entries.as_slice())
            + std::mem::size_of_val(self.in_offsets.as_slice())
            + std::mem::size_of_val(self.in_entries.as_slice())
    }

    /// The raw CSR arrays `(out_offsets, out_entries, in_offsets,
    /// in_entries)` — what the snapshot format persists.
    pub fn raw_parts(&self) -> (&[u32], &[LabelEntry], &[u32], &[LabelEntry]) {
        (
            &self.out_offsets,
            &self.out_entries,
            &self.in_offsets,
            &self.in_entries,
        )
    }

    /// Reassembles an index from its raw arrays, re-checking every
    /// structural invariant (offset monotonicity, strict hub order,
    /// finite distances, hub ids in range) so a forged snapshot payload
    /// yields a typed error, never out-of-bounds label slices.
    pub fn from_raw_parts(
        out_offsets: Vec<u32>,
        out_entries: Vec<LabelEntry>,
        in_offsets: Vec<u32>,
        in_entries: Vec<LabelEntry>,
    ) -> Result<LabelIndex, &'static str> {
        if out_offsets.len() != in_offsets.len() || out_offsets.is_empty() {
            return Err("label offset arrays disagree on the node count");
        }
        let n = out_offsets.len() - 1;
        for (offsets, entries) in [(&out_offsets, &out_entries), (&in_offsets, &in_entries)] {
            if offsets[0] != 0 || offsets[n] as usize != entries.len() {
                return Err("label offsets do not span the entry array");
            }
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err("label offsets are not monotone");
                }
            }
            for v in 0..n {
                let slice = &entries[offsets[v] as usize..offsets[v + 1] as usize];
                for e in slice {
                    if e.hub as usize >= n {
                        return Err("label names a hub outside the graph");
                    }
                    if e.dist.is_infinite() {
                        return Err("label stores an infinite distance");
                    }
                }
                for w in slice.windows(2) {
                    if w[0].hub >= w[1].hub {
                        return Err("label entries are not strictly hub-sorted");
                    }
                }
            }
        }
        Ok(LabelIndex {
            out_offsets,
            out_entries,
            in_offsets,
            in_entries,
        })
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Backward,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_ch::ChIndex;
    use ah_search::dijkstra_distance;

    fn build(g: &Graph) -> LabelIndex {
        LabelIndex::build(g, ChIndex::build(g).order())
    }

    fn assert_exact(g: &Graph, labels: &LabelIndex) {
        for s in 0..g.num_nodes() as NodeId {
            for t in 0..g.num_nodes() as NodeId {
                assert_eq!(
                    labels.distance_full(s, t),
                    dijkstra_distance(g, s, t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn exact_on_small_fixtures() {
        for g in [
            ah_data::fixtures::lattice(5, 4, 12),
            ah_data::fixtures::ring(9),
            ah_data::fixtures::line(7, 10),
            ah_data::fixtures::figure1_like(),
        ] {
            let labels = build(&g);
            assert_exact(&g, &labels);
        }
    }

    #[test]
    fn exact_on_a_directed_road_like_grid() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 9,
            height: 9,
            one_way: 0.25,
            seed: 77,
            ..Default::default()
        });
        let labels = build(&g);
        assert_exact(&g, &labels);
    }

    #[test]
    fn labels_are_sorted_and_self_covering() {
        let g = ah_data::fixtures::lattice(6, 6, 10);
        let labels = build(&g);
        for v in 0..g.num_nodes() as NodeId {
            for side in [labels.out_labels(v), labels.in_labels(v)] {
                assert!(side.windows(2).all(|w| w[0].hub < w[1].hub));
            }
            assert_eq!(labels.distance_full(v, v), Some(Dist::ZERO));
        }
    }

    #[test]
    fn any_permutation_is_exact_just_bigger() {
        let g = ah_data::fixtures::lattice(4, 5, 11);
        let n = g.num_nodes() as NodeId;
        // A deliberately bad hub order: identity.
        let order: Vec<NodeId> = (0..n).collect();
        let labels = LabelIndex::build(&g, &order);
        assert_exact(&g, &labels);
    }

    #[test]
    fn raw_parts_roundtrip_and_forgeries_are_rejected() {
        let g = ah_data::fixtures::lattice(4, 4, 10);
        let labels = build(&g);
        let (oo, oe, io, ie) = labels.raw_parts();
        let rebuilt = LabelIndex::from_raw_parts(
            oo.to_vec(),
            oe.to_vec(),
            io.to_vec(),
            ie.to_vec(),
        )
        .unwrap();
        for (s, t) in [(0u32, 15u32), (3, 9), (7, 7)] {
            assert_eq!(rebuilt.distance_full(s, t), labels.distance_full(s, t));
        }

        let mut bad = oo.to_vec();
        bad[1] = bad[2] + 1; // non-monotone
        assert!(LabelIndex::from_raw_parts(bad, oe.to_vec(), io.to_vec(), ie.to_vec()).is_err());

        let mut bad = oe.to_vec();
        bad[0].hub = g.num_nodes() as NodeId; // out of range
        assert!(
            LabelIndex::from_raw_parts(oo.to_vec(), bad, io.to_vec(), ie.to_vec()).is_err()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let g = ah_data::fixtures::lattice(6, 5, 10);
        let labels = build(&g);
        let s = labels.stats();
        assert_eq!(s.num_nodes, g.num_nodes());
        assert!(s.total_entries >= 2 * g.num_nodes(), "every node self-labels");
        assert!(s.avg_label_entries >= 1.0);
        assert!(s.max_label_entries as f64 >= s.avg_label_entries);
        assert_eq!(s.bytes, labels.size_bytes());
        assert!(s.bytes > 0);
    }
}
