//! Scenario kernels over hub labels: bucket-style batched sweeps for
//! one-to-many / many-to-many tables, k-nearest-POI, and via-POI
//! detours.
//!
//! The classic bucket trick for batched distance tables (Knopp et al.'s
//! many-to-many CH) drops each target's *backward* search space into
//! per-node buckets, then runs each source's forward space once against
//! them. Hub labels make the same shape trivial: a node's backward
//! search space *is* its in-label. [`LabelIndex::many_to_many`] buckets
//! every target's in-label entries by hub and then scans each source's
//! out-label exactly once — `O(Σ|L_out(s)| + Σ|L_in(t)| + matches)`
//! instead of `|S|·|T|` independent merges.
//!
//! All kernels follow the workspace-wide scenario determinism contract
//! (see `ah_search::scenario`): ranking by `(length, node id)`,
//! unreachable candidates dropped. Answers are bit-identical to the
//! Dijkstra reference kernels because every underlying distance is.

use std::collections::HashMap;

use ah_graph::{Dist, NodeId, INFINITY};
use ah_obs::CostCounters;

use crate::LabelIndex;

/// Hub → `(target index, d(hub, target))` entries, the reusable half of
/// a batched sweep. Build once per target set with
/// [`LabelIndex::bucket_targets`], sweep any number of sources.
pub type TargetBuckets = HashMap<NodeId, Vec<(u32, Dist)>>;

impl LabelIndex {
    /// Buckets the in-labels of `targets` by hub, ready for
    /// [`Self::sweep_source`].
    pub fn bucket_targets(&self, targets: &[NodeId]) -> TargetBuckets {
        let mut scratch = CostCounters::default();
        self.bucket_targets_with_cost(targets, &mut scratch)
    }

    /// [`Self::bucket_targets`] with cost accounting: every in-label
    /// entry dropped into a bucket counts as one `label_entries_merged`.
    pub fn bucket_targets_with_cost(
        &self,
        targets: &[NodeId],
        cost: &mut CostCounters,
    ) -> TargetBuckets {
        let mut buckets: TargetBuckets = HashMap::new();
        for (j, &t) in targets.iter().enumerate() {
            let entries = self.in_labels(t);
            cost.label_entries_merged += entries.len() as u64;
            for e in entries {
                buckets
                    .entry(e.hub)
                    .or_default()
                    .push((j as u32, e.dist));
            }
        }
        buckets
    }

    /// One source's row of the distance table: scans `L_out(source)`
    /// once against the target buckets. `width` is the target count
    /// (the row length).
    pub fn sweep_source(
        &self,
        source: NodeId,
        buckets: &TargetBuckets,
        width: usize,
    ) -> Vec<Option<u64>> {
        let mut scratch = CostCounters::default();
        self.sweep_source_with_cost(source, buckets, width, &mut scratch)
    }

    /// [`Self::sweep_source`] with cost accounting: each out-label entry
    /// scanned and each bucket hit priced count as `label_entries_merged`.
    pub fn sweep_source_with_cost(
        &self,
        source: NodeId,
        buckets: &TargetBuckets,
        width: usize,
        cost: &mut CostCounters,
    ) -> Vec<Option<u64>> {
        let mut best = vec![INFINITY; width];
        let entries = self.out_labels(source);
        cost.label_entries_merged += entries.len() as u64;
        for e in entries {
            if let Some(hits) = buckets.get(&e.hub) {
                cost.label_entries_merged += hits.len() as u64;
                for &(j, dt) in hits {
                    let d = e.dist.concat(dt);
                    if d < best[j as usize] {
                        best[j as usize] = d;
                    }
                }
            }
        }
        best.into_iter()
            .map(|d| (!d.is_infinite()).then_some(d.length))
            .collect()
    }

    /// Full distance table `sources × targets` by one bucket build plus
    /// one out-label sweep per source (`None` = unreachable).
    pub fn many_to_many(
        &self,
        sources: &[NodeId],
        targets: &[NodeId],
    ) -> Vec<Vec<Option<u64>>> {
        let mut scratch = CostCounters::default();
        self.many_to_many_with_cost(sources, targets, &mut scratch)
    }

    /// [`Self::many_to_many`] with cost accounting.
    pub fn many_to_many_with_cost(
        &self,
        sources: &[NodeId],
        targets: &[NodeId],
        cost: &mut CostCounters,
    ) -> Vec<Vec<Option<u64>>> {
        let buckets = self.bucket_targets_with_cost(targets, cost);
        sources
            .iter()
            .map(|&s| self.sweep_source_with_cost(s, &buckets, targets.len(), cost))
            .collect()
    }

    /// Distances from `source` to each of `targets`; row `i` of
    /// [`Self::many_to_many`] with a single source.
    pub fn one_to_many(&self, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
        let buckets = self.bucket_targets(targets);
        self.sweep_source(source, &buckets, targets.len())
    }

    /// [`Self::one_to_many`] with cost accounting.
    pub fn one_to_many_with_cost(
        &self,
        source: NodeId,
        targets: &[NodeId],
        cost: &mut CostCounters,
    ) -> Vec<Option<u64>> {
        let buckets = self.bucket_targets_with_cost(targets, cost);
        self.sweep_source_with_cost(source, &buckets, targets.len(), cost)
    }

    /// The `k` nearest `candidates` from `source` by network distance,
    /// sorted ascending by `(distance, node id)`; unreachable candidates
    /// dropped. One batched sweep prices every candidate.
    pub fn knn(&self, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
        let mut scratch = CostCounters::default();
        self.knn_with_cost(source, candidates, k, &mut scratch)
    }

    /// [`Self::knn`] with cost accounting.
    pub fn knn_with_cost(
        &self,
        source: NodeId,
        candidates: &[NodeId],
        k: usize,
        cost: &mut CostCounters,
    ) -> Vec<(NodeId, u64)> {
        let row = self.one_to_many_with_cost(source, candidates, cost);
        let mut found: Vec<(u64, NodeId)> = row
            .iter()
            .zip(candidates)
            .filter_map(|(d, &p)| d.map(|d| (d, p)))
            .collect();
        found.sort_unstable();
        found.truncate(k);
        found.into_iter().map(|(d, p)| (p, d)).collect()
    }

    /// The optimal detour `s → p → t` over `candidates`: returns
    /// `(poi, d(s,poi), d(poi,t))` minimizing `(total, poi)`, or `None`
    /// when no candidate has both legs reachable. Two batched sweeps
    /// (forward legs from `s`, backward legs into `t`) price every
    /// candidate.
    pub fn via(
        &self,
        s: NodeId,
        t: NodeId,
        candidates: &[NodeId],
    ) -> Option<(NodeId, u64, u64)> {
        let mut scratch = CostCounters::default();
        self.via_with_cost(s, t, candidates, &mut scratch)
    }

    /// [`Self::via`] with cost accounting.
    pub fn via_with_cost(
        &self,
        s: NodeId,
        t: NodeId,
        candidates: &[NodeId],
        cost: &mut CostCounters,
    ) -> Option<(NodeId, u64, u64)> {
        let to = self.one_to_many_with_cost(s, candidates, cost);
        // Backward legs: a 1-wide many-to-many with the candidate set as
        // sources — the bucket holds only L_in(t).
        let from: Vec<Option<u64>> = {
            let buckets = self.bucket_targets_with_cost(&[t], cost);
            candidates
                .iter()
                .map(|&p| self.sweep_source_with_cost(p, &buckets, 1, cost)[0])
                .collect()
        };
        let mut best: Option<(u64, NodeId, u64, u64)> = None;
        for ((&p, a), b) in candidates.iter().zip(&to).zip(&from) {
            let (Some(a), Some(b)) = (a, b) else { continue };
            let total = a.saturating_add(*b);
            let better = match best {
                None => true,
                Some((bt, bp, _, _)) => total < bt || (total == bt && p < bp),
            };
            if better {
                best = Some((total, p, *a, *b));
            }
        }
        best.map(|(_, p, a, b)| (p, a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_ch::ChIndex;
    use ah_graph::Graph;
    use ah_search::scenario::PoiSet;
    use ah_search::{dijkstra_distance, ScenarioEngine};

    fn grid() -> Graph {
        ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 8,
            height: 8,
            one_way: 0.25,
            seed: 90,
            ..Default::default()
        })
    }

    fn build(g: &Graph) -> LabelIndex {
        LabelIndex::build(g, ChIndex::build(g).order())
    }

    #[test]
    fn many_to_many_matches_dijkstra() {
        let g = grid();
        let labels = build(&g);
        let last = g.num_nodes() as u32 - 1;
        let sources = [0u32, 9, 30, last];
        let targets = [5u32, 0, 44, last, 17];
        let table = labels.many_to_many(&sources, &targets);
        for (i, &s) in sources.iter().enumerate() {
            for (j, &t) in targets.iter().enumerate() {
                assert_eq!(
                    table[i][j],
                    dijkstra_distance(&g, s, t).map(|d| d.length),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn one_to_many_is_row_zero() {
        let g = grid();
        let labels = build(&g);
        let targets = [3u32, 8, 21, 50];
        assert_eq!(
            labels.one_to_many(7, &targets),
            labels.many_to_many(&[7], &targets)[0]
        );
    }

    #[test]
    fn knn_and_via_agree_with_the_dijkstra_kernels() {
        let g = grid();
        let labels = build(&g);
        let pois = PoiSet::synthetic(g.num_nodes(), 4, 5);
        let mut eng = ScenarioEngine::new();
        for cat in 0..4 {
            let cands = pois.category(cat);
            let far = g.num_nodes() as u32 - 3;
            assert_eq!(labels.knn(12, cands, 4), eng.knn(&g, 12, cands, 4), "knn cat {cat}");
            let got = labels.via(2, far, cands);
            let want = eng
                .via(&g, 2, far, cands)
                .map(|v| (v.poi, v.to_poi, v.from_poi));
            assert_eq!(got, want, "via cat {cat}");
        }
    }

    #[test]
    fn unreachable_targets_are_none() {
        // Two disconnected components.
        let mut b = ah_graph::GraphBuilder::new();
        for i in 0..5 {
            b.add_node(ah_graph::Point::new(i, 0));
        }
        b.add_bidirectional_edge(0, 1, 2);
        b.add_bidirectional_edge(2, 3, 2);
        b.add_bidirectional_edge(3, 4, 2);
        let g = b.build();
        let labels = build(&g);
        assert_eq!(labels.one_to_many(0, &[1, 2, 4]), vec![Some(2), None, None]);
        assert_eq!(labels.knn(0, &[2, 4], 3), vec![]);
        assert_eq!(labels.via(0, 1, &[3, 4]), None);
    }
}
