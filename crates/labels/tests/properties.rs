//! Structural properties of the labeling, checked over randomized
//! small road networks:
//!
//! 1. every per-node label array is **strictly hub-sorted** (the merge
//!    query's precondition),
//! 2. every entry is **dominance-pruned**: no entry is beaten by a
//!    two-hop combination through a different hub, and each entry's
//!    distance is exactly what the labeling reports for that
//!    node-to-hub query,
//! 3. the reported metric satisfies the **triangle inequality** over
//!    sampled node triples.

use ah_ch::ChIndex;
use ah_labels::{LabelEntry, LabelIndex};
use proptest::prelude::*;

fn build(width: u32, height: u32, seed: u64, one_way: f64) -> (ah_graph::Graph, LabelIndex) {
    let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width,
        height,
        seed,
        one_way,
        ..Default::default()
    });
    let ch = ChIndex::build(&g);
    let labels = LabelIndex::build(&g, ch.order());
    (g, labels)
}

/// Min over common hubs of `left` × `right`, skipping hub `skip`.
fn two_hop_excluding(
    left: &[LabelEntry],
    right: &[LabelEntry],
    skip: ah_graph::NodeId,
) -> Option<ah_graph::Dist> {
    let (mut i, mut j) = (0, 0);
    let mut best: Option<ah_graph::Dist> = None;
    while i < left.len() && j < right.len() {
        let (a, b) = (&left[i], &right[j]);
        if a.hub == b.hub {
            if a.hub != skip {
                let d = a.dist.concat(b.dist);
                if best.is_none_or(|cur| d < cur) {
                    best = Some(d);
                }
            }
            i += 1;
            j += 1;
        } else if a.hub < b.hub {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn labels_are_strictly_sorted_and_dominance_pruned(
        width in 3u32..8,
        height in 3u32..8,
        seed in 0u64..1_000,
        one_way in 0u32..3,
    ) {
        let (g, labels) = build(width, height, seed, f64::from(one_way) * 0.1);
        for v in 0..g.num_nodes() as u32 {
            for (side, own) in [("out", labels.out_labels(v)), ("in", labels.in_labels(v))] {
                for pair in own.windows(2) {
                    prop_assert!(
                        pair[0].hub < pair[1].hub,
                        "{side}-labels of {v} not strictly hub-sorted: {pair:?}"
                    );
                }
                for e in own {
                    // The entry itself must be the exact node↔hub
                    // distance the labeling reports...
                    let (s, t) = match side {
                        "out" => (v, e.hub),
                        _ => (e.hub, v),
                    };
                    prop_assert_eq!(
                        labels.distance_full(s, t),
                        Some(e.dist),
                        "entry ({}, {:?}) in {}-labels of {} is not the query answer",
                        e.hub, e.dist, side, v
                    );
                    // ...and no two-hop path through a *different* hub
                    // may beat it, else pruning failed to drop it.
                    let via = two_hop_excluding(
                        labels.out_labels(s),
                        labels.in_labels(t),
                        e.hub,
                    );
                    if let Some(d) = via {
                        prop_assert!(
                            d >= e.dist,
                            "entry ({}, {:?}) of {} dominated via another hub: {:?}",
                            e.hub, e.dist, v, d
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn triangle_inequality_over_sampled_triples(
        seed in 0u64..1_000,
        triples in proptest::collection::vec((0usize..10_000, 0usize..10_000, 0usize..10_000), 40..41),
    ) {
        let (g, labels) = build(7, 7, seed, 0.1);
        let n = g.num_nodes();
        for (a, b, c) in triples {
            let (a, b, c) = ((a % n) as u32, (b % n) as u32, (c % n) as u32);
            if let (Some(ab), Some(bc)) = (labels.distance(a, b), labels.distance(b, c)) {
                let ac = labels.distance(a, c);
                prop_assert!(
                    ac.is_some_and(|d| d <= ab + bc),
                    "d({a},{c}) = {ac:?} > d({a},{b}) + d({b},{c}) = {}",
                    ab + bc
                );
            }
        }
    }
}
