//! A minimal **blocking** HTTP/1.1 client for the edge's tests, load
//! generators and ops probes.
//!
//! This is the consumer-side counterpart of [`crate::http`]: it
//! understands exactly the subset the edge emits — status line,
//! headers, `Content-Length`-framed bodies, keep-alive and pipelining.
//! Responses a read pulls past the current one are carried over to the
//! next [`Client::recv`] call, so deeply pipelined exchanges parse
//! correctly. It is intentionally synchronous (one `TcpStream`, no
//! poller): load generators split it into a paced writer and a
//! sequential reader via [`Client::from_stream`] + `try_clone`.

use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Extracts the `"distance"` value from a query-response body:
    /// `Some(d)` for a number, `None` for JSON `null` (also `None` on
    /// non-query bodies).
    pub fn distance(&self) -> Option<u64> {
        let s = std::str::from_utf8(&self.body).ok()?;
        let rest = s.split("\"distance\":").nth(1)?;
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

/// A pipelining-aware blocking HTTP client over one `TcpStream`.
pub struct Client {
    stream: TcpStream,
    carry: Vec<u8>,
}

impl Client {
    /// Connects with a 30 s read timeout and `TCP_NODELAY`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let _ = stream.set_nodelay(true);
        Ok(Client::from_stream(stream))
    }

    /// Wraps an existing stream (e.g. a `try_clone` used as the read
    /// half of a paced open-loop connection).
    pub fn from_stream(stream: TcpStream) -> Client {
        Client {
            stream,
            carry: Vec::new(),
        }
    }

    /// The underlying stream (for raw writes, timeouts, `try_clone`).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Writes raw bytes (pipelined requests, partial requests…).
    pub fn send(&mut self, raw: &[u8]) -> io::Result<()> {
        self.stream.write_all(raw)
    }

    /// Sends `GET <target>` and reads one response.
    pub fn get(&mut self, target: &str) -> io::Result<Response> {
        self.send(format!("GET {target} HTTP/1.1\r\nHost: c\r\n\r\n").as_bytes())?;
        self.recv()
    }

    /// Sends `POST <target>` with a JSON body and reads one response.
    pub fn post_json(&mut self, target: &str, body: &[u8]) -> io::Result<Response> {
        let mut raw = format!(
            "POST {target} HTTP/1.1\r\nHost: c\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(body);
        self.send(&raw)?;
        self.recv()
    }

    /// Reads one response (head + `Content-Length` body), carrying any
    /// extra bytes over to the next call. EOF mid-response yields
    /// `ErrorKind::UnexpectedEof`.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = self.carry.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "EOF before response head (carry: {:?})",
                        String::from_utf8_lossy(&self.carry)
                    ),
                ));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.carry[..head_end])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        while self.carry.len() < head_end + len {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF mid-body"));
            }
            self.carry.extend_from_slice(&chunk[..n]);
        }
        let body = self.carry[head_end..head_end + len].to_vec();
        self.carry.drain(..head_end + len);
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// Reads to end-of-stream. `Ok(true)` means the server closed with
    /// a clean EOF and no unconsumed response bytes — the signature of
    /// a graceful drain; `Ok(false)` means stray bytes arrived first.
    /// Errors (reset, timeout) surface as `Err`.
    pub fn read_eof(&mut self) -> io::Result<bool> {
        if !self.carry.is_empty() {
            return Ok(false);
        }
        let mut chunk = [0u8; 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(true),
                Ok(_) => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
