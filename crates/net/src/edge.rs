//! The network edge: an event-looped HTTP front door over the serving
//! queue.
//!
//! One thread runs a readiness loop ([`crate::sys::Poller`]: epoll on
//! Linux, `poll` elsewhere) that owns *all* sockets: it accepts
//! connections, reads and parses pipelined HTTP requests, and writes
//! responses — never blocking, never spawning per connection. Query
//! work is handed to `workers` threads running
//! [`ah_server::Server::serve_queue`], each with its own reusable
//! backend session, through the same bounded MPMC queue the closed-loop
//! harness uses. That queue is the **admission window**: when it is
//! full, [`BoundedQueue::try_push`] hands the request straight back and
//! the edge answers `429 Too Many Requests` with a `Retry-After` hint —
//! overload sheds load at the door instead of growing buffers.
//!
//! Per-connection state machines enforce the rest of the paranoia a
//! public listener needs: header/body size caps (`431`/`413`), malformed
//! input classification (`400`), a pipelining cap that simply stops
//! reading a socket until its backlog drains (TCP back-pressure does the
//! rest), read/write/idle timeouts, and a connection cap that sheds
//! with `503`.
//!
//! Responses are written strictly in pipeline order per connection:
//! each parsed request claims a *slot*; backend completions fill slots
//! out of order but only the front slot's bytes ever enter the socket.
//!
//! **Graceful shutdown** (via [`EdgeHandle::shutdown`] or the
//! `/admin/shutdown` endpoint when enabled) follows the drain contract
//! of [`ah_server::Server::serve_queue`]: stop accepting and reading,
//! close the job queue, let workers drain every admitted request, flush
//! every response, then close connections and return.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ah_obs::{now_ns, CostCounters, Counter, Gauge, Metric, Registry, SloPolicy};
use ah_server::{
    trace_kind, BoundedQueue, DistanceBackend, Job, MatrixRequest, Request, Response,
    ScenarioResult, Server, Span, Stage, Tracer, TryPushError,
};

use crate::http::{self, HttpError, HttpLimits, ParseOutcome};
use crate::sys::{Event, Poller, PollerKind, WakePipe};

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the wake pipe's read end.
const WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

/// Routing tag carried through the job queue: (connection token, slot id).
type Tag = (u64, u64);

/// Worker → event-loop handoff: the response headline, the optional
/// scenario payload (via/knn/matrix bodies), and the sampled span.
type Completions = Vec<(Tag, Response, Option<Box<ScenarioResult>>, Option<Box<Span>>)>;

/// Upper bound on `k` for `/v1/knn` — bounds the response body the
/// same way `max_write_backlog` bounds everything else.
const MAX_KNN_K: u32 = 256;

/// Per-side cap on `/v1/matrix` dimensions. A table beyond it is
/// refused `413` (same class as an oversized body): 64×64 is already
/// 4096 point answers in one response.
pub const MAX_MATRIX_DIM: usize = 64;

/// Statuses the edge emits, in reporting order.
pub const STATUSES: [u16; 11] = [200, 202, 400, 404, 405, 408, 409, 413, 429, 431, 503];

/// Admin hook behind `POST /admin/reload-delta`: kick off a delta
/// reload of the serving index. Implementations must not block — the
/// event loop calls this inline, so a slow reload belongs on a
/// background thread (the [`ah_server::DeltaReloader`] impl spawns one
/// and answers `202 Accepted` immediately).
pub trait ReloadHandler: Sync {
    /// Start reloading from the delta snapshot at `path`. `Ok` carries
    /// a JSON body answered with `202`; `Err` carries the HTTP status
    /// and a human-readable detail string.
    fn reload(&self, path: &str) -> Result<String, (u16, String)>;
}

impl ReloadHandler for Arc<ah_server::DeltaReloader> {
    fn reload(&self, path: &str) -> Result<String, (u16, String)> {
        use ah_server::ReloadError;
        match self.start_from_file(path) {
            Ok(()) => Ok(format!(
                "{{\"status\":\"reloading\",\"path\":{}}}",
                http::json_string(path)
            )),
            Err(ReloadError::Busy) => Err((409, "a reload is already in progress".to_string())),
            Err(ReloadError::Delta(e)) => Err((409, e.to_string())),
            Err(ReloadError::Snapshot(e)) => Err((400, e.to_string())),
        }
    }
}

/// Tuning knobs for the edge.
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Worker threads draining the job queue (0 clamps to 1).
    pub workers: usize,
    /// Bounded job-queue depth — the admission window. Requests beyond
    /// it are answered `429`.
    pub queue_capacity: usize,
    /// Maximum simultaneously open connections; excess accepts are shed
    /// with a best-effort `503` and an immediate close.
    pub max_connections: usize,
    /// Maximum unanswered pipelined requests per connection; past it the
    /// edge stops reading that socket until slots drain.
    pub max_pipeline: usize,
    /// Maximum buffered unsent response bytes per connection; past it
    /// the edge stops reading that socket and stops converting answered
    /// pipeline slots into response bytes (a client that sends requests
    /// but never reads responses cannot grow the write buffer without
    /// bound — the write timeout then reaps it).
    pub max_write_backlog: usize,
    /// Maximum buffered unparsed request bytes per connection; past it
    /// the edge stops reading that socket until parsing catches up, so
    /// a client pipelining faster than the edge serves cannot grow the
    /// read buffer without bound. Must exceed
    /// `limits.max_head_bytes + limits.max_body_bytes` (one whole
    /// request) or parsing could deadlock; the constructor-free config
    /// leaves that to the operator.
    pub max_read_backlog: usize,
    /// HTTP parsing caps (head/body bytes, header count).
    pub limits: HttpLimits,
    /// How long a partially received request may stall before the
    /// connection is answered `408` and closed.
    pub read_timeout: Duration,
    /// How long a pending write may stall before the connection is
    /// dropped (the peer stopped reading).
    pub write_timeout: Duration,
    /// How long a connection may sit idle (no request in flight) before
    /// it is closed.
    pub idle_timeout: Duration,
    /// Value of the `Retry-After` header on `429`/`503` responses.
    pub retry_after_secs: u32,
    /// Readiness backend (epoll on Linux by default, poll elsewhere).
    pub poller: PollerKind,
    /// Expose `GET /admin/shutdown` (for loopback smoke tests and
    /// supervised deployments; leave off on untrusted networks).
    pub allow_shutdown: bool,
    /// Service-level objectives evaluated by `GET /readyz` and
    /// `GET /debug/slo` against the server's rolling windows (which
    /// also absorb the edge's own `429`/`503` rejections as errors).
    /// The default policy has no active objective: `/readyz` always
    /// answers `200`.
    pub slo: SloPolicy,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            queue_capacity: 1024,
            max_connections: 1024,
            max_pipeline: 64,
            max_write_backlog: 256 * 1024,
            max_read_backlog: 64 * 1024,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            retry_after_secs: 1,
            poller: PollerKind::default(),
            allow_shutdown: false,
            slo: SloPolicy::default(),
        }
    }
}

/// Edge-level counters (connection and response accounting; query-level
/// latency lives in [`ah_server::ServerMetrics`]). Every field is an
/// `Arc<ah_obs::Counter>` so the identical objects live in the server's
/// [`Registry`] (see [`EdgeMetrics::register_into`]) while the event
/// loop keeps bumping them lock-free; readable from any thread via
/// [`EdgeHandle::metrics`].
#[derive(Debug, Default)]
pub struct EdgeMetrics {
    connections: Arc<Counter>,
    connections_closed: Arc<Counter>,
    shed_connections: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    timeouts: Arc<Counter>,
    responses: [Arc<Counter>; STATUSES.len()],
}

impl EdgeMetrics {
    fn count_response(&self, status: u16) {
        if let Some(i) = STATUSES.iter().position(|&s| s == status) {
            self.responses[i].inc();
        }
    }

    /// Registers every edge counter under its stable name (the
    /// per-status response counters carry a `code` label), so one
    /// [`Registry::render`] emits the whole edge block alongside the
    /// serving engine's histograms. Re-registration replaces the
    /// series, never double-counts.
    pub fn register_into(&self, reg: &Registry) {
        reg.register(
            "ah_edge_connections_total",
            &[],
            "Connections accepted over the edge's lifetime",
            Metric::Counter(Arc::clone(&self.connections)),
        );
        reg.register(
            "ah_edge_connections_closed_total",
            &[],
            "Connections closed (any reason)",
            Metric::Counter(Arc::clone(&self.connections_closed)),
        );
        reg.register(
            "ah_edge_shed_connections_total",
            &[],
            "Connections shed at accept time (connection cap)",
            Metric::Counter(Arc::clone(&self.shed_connections)),
        );
        reg.register(
            "ah_edge_timeouts_total",
            &[],
            "Connections reaped by read/write/idle timeout",
            Metric::Counter(Arc::clone(&self.timeouts)),
        );
        reg.register(
            "ah_edge_bytes_in_total",
            &[],
            "Request bytes read off sockets",
            Metric::Counter(Arc::clone(&self.bytes_in)),
        );
        reg.register(
            "ah_edge_bytes_out_total",
            &[],
            "Response bytes written to sockets",
            Metric::Counter(Arc::clone(&self.bytes_out)),
        );
        for (i, &status) in STATUSES.iter().enumerate() {
            let code = status.to_string();
            reg.register(
                "ah_edge_responses_total",
                &[("code", &code)],
                "Responses sent, by status code",
                Metric::Counter(Arc::clone(&self.responses[i])),
            );
        }
    }

    /// Responses sent with `status`.
    pub fn responses(&self, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|&s| s == status)
            .map_or(0, |i| self.responses[i].get())
    }

    /// Total responses sent, any status.
    pub fn total_responses(&self) -> u64 {
        self.responses.iter().map(|c| c.get()).sum()
    }

    /// Connections accepted over the edge's lifetime.
    pub fn connections(&self) -> u64 {
        self.connections.get()
    }

    /// Connections closed (any reason).
    pub fn connections_closed(&self) -> u64 {
        self.connections_closed.get()
    }

    /// Connections shed at accept time (connection cap).
    pub fn shed_connections(&self) -> u64 {
        self.shed_connections.get()
    }

    /// Request bytes read off sockets.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.get()
    }

    /// Response bytes written to sockets.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.get()
    }

    /// Connections reaped by read/write/idle timeout.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.get()
    }
}

/// Gauges and mirror counters the event loop refreshes just before
/// each [`Registry::render`]: point-in-time state (open connections,
/// queue depth) plus totals owned by other subsystems (the queue's
/// rejected count, the serving engine's query count) re-exposed under
/// their historical `/metrics` names via [`Counter::store`].
struct EdgeMirrors {
    backend: Arc<Gauge>,
    build_info: Arc<Gauge>,
    uptime: Arc<Gauge>,
    /// When this edge began serving — drives `ah_uptime_seconds`.
    started: Instant,
    connections_open: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    queue_capacity: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    queue_high_water: Arc<Gauge>,
    queue_rejected: Arc<Counter>,
    server_queries: Arc<Counter>,
}

impl EdgeMirrors {
    fn new(reg: &Registry, backend_name: &str) -> Self {
        let backend = reg.gauge(
            "ah_edge_backend",
            &[("name", backend_name)],
            "The distance backend serving this edge (always 1)",
        );
        backend.set(1);
        let format_version = ah_store::VERSION.to_string();
        let build_info = reg.gauge(
            "ah_build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("format_version", &format_version),
                ("backend", backend_name),
            ],
            "Build and serving identity (value is always 1)",
        );
        build_info.set(1);
        let uptime = reg.gauge(
            "ah_uptime_seconds",
            &[],
            "Seconds since this edge began serving",
        );
        EdgeMirrors {
            backend,
            build_info,
            uptime,
            started: Instant::now(),
            connections_open: reg.gauge("ah_edge_connections_open", &[], "Connections currently open"),
            in_flight: reg.gauge(
                "ah_edge_in_flight",
                &[],
                "Requests admitted to the queue whose completions are still due",
            ),
            queue_capacity: reg.gauge(
                "ah_queue_capacity",
                &[],
                "Bounded admission-queue capacity",
            ),
            queue_depth: reg.gauge("ah_queue_depth", &[], "Admission-queue depth at scrape time"),
            queue_high_water: reg.gauge(
                "ah_queue_high_water",
                &[],
                "Deepest the admission queue has been",
            ),
            queue_rejected: reg.counter(
                "ah_queue_rejected_total",
                &[],
                "Requests refused at admission (answered 429)",
            ),
            server_queries: reg.counter(
                "ah_server_queries_total",
                &[],
                "Queries served by the engine over its lifetime",
            ),
        }
    }
}

/// State shared between the event loop, the workers and [`EdgeHandle`]s.
struct Shared {
    stop: AtomicBool,
    waker: WakePipe,
    metrics: EdgeMetrics,
}

/// A clonable remote control for a running edge: request graceful
/// shutdown and read live metrics from any thread.
#[derive(Clone)]
pub struct EdgeHandle {
    shared: Arc<Shared>,
}

impl EdgeHandle {
    /// Begins graceful shutdown: stop accepting, drain admitted
    /// requests, flush responses, close. [`EdgeServer::serve`] returns
    /// once the drain completes.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.waker.wake();
    }

    /// Whether shutdown has been requested.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Live edge counters.
    pub fn metrics(&self) -> &EdgeMetrics {
        &self.shared.metrics
    }
}

/// Final accounting returned by [`EdgeServer::serve`].
#[derive(Debug, Clone)]
pub struct EdgeReport {
    /// `(status, count)` for every status the edge emits, in
    /// [`STATUSES`] order.
    pub responses_by_status: Vec<(u16, u64)>,
    /// Connections accepted.
    pub connections: u64,
    /// Connections shed at accept (connection cap).
    pub shed_connections: u64,
    /// Requests rejected at admission (the `429` source; equals the job
    /// queue's rejected counter).
    pub rejected: u64,
    /// Deepest the job queue got.
    pub queue_high_water: usize,
    /// Request bytes read.
    pub bytes_in: u64,
    /// Response bytes written.
    pub bytes_out: u64,
    /// Connections reaped by timeout.
    pub timeouts: u64,
    /// Readiness backend that served the run.
    pub poller: &'static str,
}

/// One pipelined exchange: claimed when the request is parsed, filled
/// when its response bytes are ready, flushed strictly in claim order.
struct Slot {
    id: u64,
    keep_alive: bool,
    state: SlotState,
    /// Sampled trace span returned by the worker with the completion;
    /// stamped `Serialize` when the response bytes were rendered, and
    /// finished (with `Flush`) once those bytes clear the socket.
    span: Option<Box<Span>>,
}

enum SlotState {
    /// Admitted to the backend; context to render the eventual response.
    Waiting(PendingQuery),
    /// Response bytes ready to enter the write buffer.
    Ready(Vec<u8>),
}

/// What an admitted request asked for — everything the event loop
/// needs to render its response body once the worker's completion
/// arrives. The matrix dimensions are kept so the renderer can emit a
/// fully-masked table even if the worker returned no payload.
#[derive(Clone, Copy)]
enum PendingQuery {
    Distance { src: u32, dst: u32 },
    Path { src: u32, dst: u32 },
    Via { src: u32, dst: u32, cat: u32 },
    Knn { src: u32, cat: u32, k: u32 },
    Matrix { rows: usize, cols: usize },
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    slots: VecDeque<Slot>,
    next_slot: u64,
    last_activity: Instant,
    /// When the partial request at the head of `rbuf` started waiting
    /// for its remaining bytes. Unlike `last_activity` this does NOT
    /// reset on every received byte, so a client trickling one byte per
    /// second cannot hold a request open past the read timeout.
    partial_since: Option<Instant>,
    /// When the pending write backlog appeared. Measured separately
    /// from `last_activity` so a client that keeps *sending* while
    /// never *reading* still trips the write timeout.
    write_stalled_since: Option<Instant>,
    /// No more reads: peer EOF, fatal request, shutdown, or scheduled close.
    read_shut: bool,
    /// Close once every slot is answered and flushed.
    close_after_flush: bool,
    /// Socket error — close immediately, abandon pending writes.
    dead: bool,
    /// Interest currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
    /// Lifetime response bytes moved into `wbuf` / confirmed written to
    /// the socket. `wbuf` itself is compacted after every flush, so
    /// span flush accounting runs on these absolute counters instead.
    bytes_queued: u64,
    bytes_flushed: u64,
    /// Spans awaiting their flush stamp, each due once `bytes_flushed`
    /// reaches the recorded mark (responses leave `wbuf` in FIFO order,
    /// so the front span is always the next due).
    pending_spans: VecDeque<(u64, Box<Span>)>,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            slots: VecDeque::new(),
            next_slot: 0,
            last_activity: now,
            partial_since: None,
            write_stalled_since: None,
            read_shut: false,
            close_after_flush: false,
            dead: false,
            reg_read: true,
            reg_write: false,
            bytes_queued: 0,
            bytes_flushed: 0,
            pending_spans: VecDeque::new(),
        }
    }

    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Everything answered and on the wire?
    fn drained(&self) -> bool {
        self.slots.is_empty() && !self.has_pending_write()
    }

    fn push_ready(&mut self, keep_alive: bool, bytes: Vec<u8>) {
        let id = self.next_slot;
        self.next_slot += 1;
        self.slots.push_back(Slot {
            id,
            keep_alive,
            state: SlotState::Ready(bytes),
            span: None,
        });
    }
}

/// A bound, not-yet-serving edge. [`EdgeServer::bind`] then
/// [`EdgeServer::serve`] (which blocks until shutdown).
pub struct EdgeServer {
    listener: TcpListener,
    cfg: EdgeConfig,
    shared: Arc<Shared>,
}

impl EdgeServer {
    /// Binds the listening socket (non-blocking) without serving yet, so
    /// the caller can learn the ephemeral port and keep an
    /// [`EdgeHandle`] before traffic starts.
    pub fn bind(addr: impl ToSocketAddrs, cfg: EdgeConfig) -> io::Result<EdgeServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(EdgeServer {
            listener,
            cfg,
            shared: Arc::new(Shared {
                stop: AtomicBool::new(false),
                waker: WakePipe::new()?,
                metrics: EdgeMetrics::default(),
            }),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote control usable from other threads while `serve` runs.
    pub fn handle(&self) -> EdgeHandle {
        EdgeHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serves until shutdown is requested, then drains and returns the
    /// final accounting. Queries run on `cfg.workers` threads through
    /// `server`'s cache and metrics against `backend`; the calling
    /// thread becomes the event loop.
    pub fn serve(
        self,
        server: &Server,
        backend: &dyn DistanceBackend,
    ) -> io::Result<EdgeReport> {
        self.serve_with_admin(server, backend, None)
    }

    /// [`EdgeServer::serve`], additionally exposing
    /// `POST /admin/reload-delta?path=...` wired to `reload`. Like
    /// `/admin/shutdown`, the endpoint is for loopback smoke tests and
    /// supervised deployments — leave it unwired on untrusted networks.
    pub fn serve_with_admin(
        self,
        server: &Server,
        backend: &dyn DistanceBackend,
        reload: Option<&dyn ReloadHandler>,
    ) -> io::Result<EdgeReport> {
        let EdgeServer {
            listener,
            cfg,
            shared,
        } = self;
        let workers = cfg.workers.max(1);
        let jobs: BoundedQueue<Job<Tag>> = BoundedQueue::new(cfg.queue_capacity);
        // Enqueue→dequeue waits land straight in the engine's lifetime
        // histogram (`ah_queue_wait_seconds`).
        jobs.set_wait_histogram(Arc::clone(&server.metrics().queue_wait));
        // The edge reports into the server's registry: one render is the
        // whole /metrics document.
        shared.metrics.register_into(server.registry());
        let mirrors = EdgeMirrors::new(server.registry(), backend.name());
        let completions: Mutex<Completions> = Mutex::new(Vec::new());

        let result = std::thread::scope(|scope| {
            for _ in 0..workers {
                let jobs = &jobs;
                let completions = &completions;
                let shared = &shared;
                scope.spawn(move || {
                    server.serve_queue(backend, jobs, |tag, resp, payload, span| {
                        let mut done = completions.lock().unwrap();
                        let was_empty = done.is_empty();
                        done.push((tag, resp, payload, span));
                        drop(done);
                        // A non-empty list already has a wake pending;
                        // skipping the syscall batches completions.
                        if was_empty {
                            shared.waker.wake();
                        }
                    });
                });
            }

            let mut ev_loop = EventLoop {
                cfg: &cfg,
                listener: Some(listener),
                poller: Poller::new(cfg.poller)?,
                shared: &shared,
                server,
                jobs: &jobs,
                completions: &completions,
                conns: HashMap::new(),
                next_token: FIRST_CONN,
                in_flight: 0,
                failed_tags: std::collections::HashSet::new(),
                next_req_id: 0,
                num_nodes: backend.num_nodes(),
                jobs_closed: false,
                mirrors,
                reload,
            };
            let out = ev_loop.run();
            // Whatever happened in the loop, release the workers.
            jobs.close();
            out
        });

        // Fold final queue saturation into the serving metrics so
        // report consumers (BENCH JSON, /metrics scrapes of a later
        // incarnation) see it.
        server.metrics().record_queue(&jobs);

        result.map(|()| {
            let m = &shared.metrics;
            EdgeReport {
                responses_by_status: STATUSES.iter().map(|&s| (s, m.responses(s))).collect(),
                connections: m.connections(),
                shed_connections: m.shed_connections(),
                rejected: jobs.rejected(),
                queue_high_water: jobs.high_water(),
                bytes_in: m.bytes_in(),
                bytes_out: m.bytes_out(),
                timeouts: m.timeouts(),
                poller: cfg.poller.name(),
            }
        })
    }
}

/// Everything the event loop touches, borrowed for the scope of one
/// [`EdgeServer::serve`] call.
struct EventLoop<'a> {
    cfg: &'a EdgeConfig,
    listener: Option<TcpListener>,
    poller: Poller,
    shared: &'a Shared,
    server: &'a Server,
    jobs: &'a BoundedQueue<Job<Tag>>,
    completions: &'a Mutex<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Requests admitted to the queue whose completions are still due.
    in_flight: usize,
    /// Tags answered 503 by [`EventLoop::fail_waiting_slots`] (worker
    /// crash); their late completions must not be double-counted.
    failed_tags: std::collections::HashSet<Tag>,
    next_req_id: u64,
    num_nodes: usize,
    jobs_closed: bool,
    mirrors: EdgeMirrors,
    reload: Option<&'a dyn ReloadHandler>,
}

impl EventLoop<'_> {
    fn run(&mut self) -> io::Result<()> {
        let listener_fd = self.listener.as_ref().unwrap().as_raw_fd();
        self.poller.register(listener_fd, LISTENER, true, false)?;
        self.poller
            .register(self.shared.waker.read_fd(), WAKER, true, false)?;

        let mut events: Vec<Event> = Vec::new();
        loop {
            if !self.jobs_closed && self.jobs.is_closed() {
                // We did not close the queue, so a worker's panic guard
                // did (see `Server::serve_queue`). Completions for the
                // waiting slots may never arrive: answer them 503 and
                // drain what can still be flushed — the worker's panic
                // then propagates when the thread scope joins.
                self.jobs_closed = true;
                self.fail_waiting_slots();
                self.shared.stop.store(true, Ordering::Relaxed);
            }
            if self.shared.stop.load(Ordering::Relaxed) {
                self.enter_drain()?;
                if self.conns.is_empty() {
                    break;
                }
            }
            self.poller.wait(&mut events, 50)?;
            let now = Instant::now();
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    LISTENER => self.accept_ready(now)?,
                    WAKER => self.shared.waker.drain(),
                    token => self.service_conn(token, ev, now)?,
                }
            }
            self.drain_completions(now)?;
            self.sweep_timeouts(now)?;
        }
        Ok(())
    }

    /// Transition into draining: close the listener, stop reading every
    /// socket, close the job queue (workers drain the backlog), and
    /// schedule every connection to close once flushed.
    fn enter_drain(&mut self) -> io::Result<()> {
        if let Some(listener) = self.listener.take() {
            self.poller.deregister(listener.as_raw_fd())?;
            // Dropped here: pending SYNs get RST, new clients see ECONNREFUSED.
        }
        if !self.jobs_closed {
            self.jobs.close();
            self.jobs_closed = true;
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let now = Instant::now();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_shut = true;
                conn.close_after_flush = true;
            }
            self.pump_and_settle(token, now)?;
        }
        Ok(())
    }

    /// Emergency path for a crashed worker pool: every slot still
    /// waiting on a completion is answered `503` so its connection can
    /// flush and close instead of hanging on an answer that will never
    /// come. Only the first failed slot per connection is counted as a
    /// response — the `Connection: close` it carries discards everything
    /// pipelined behind it, so later 503s are never delivered. Failed
    /// tags are remembered so a surviving worker's late completion for
    /// one of them does not decrement `in_flight` a second time.
    fn fail_waiting_slots(&mut self) {
        for (&token, conn) in &mut self.conns {
            let mut first_on_conn = true;
            for slot in &mut conn.slots {
                if matches!(slot.state, SlotState::Waiting { .. }) {
                    if first_on_conn {
                        self.shared.metrics.count_response(503);
                        first_on_conn = false;
                    }
                    let body = http::json_error("backend failure");
                    slot.keep_alive = false;
                    slot.state = SlotState::Ready(http::response(
                        503,
                        "application/json",
                        &body,
                        false,
                        &[],
                    ));
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.failed_tags.insert((token, slot.id));
                }
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) -> io::Result<()> {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return Ok(());
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.cfg.max_connections {
                        // Shed at the door: best-effort 503, then close.
                        self.shared.metrics.shed_connections.inc();
                        self.shared.metrics.count_response(503);
                        self.server.slo_windows().record(now_ns(), 0, true);
                        let _ = stream.set_nonblocking(true);
                        let body = http::json_error("connection limit reached");
                        let retry = self.cfg.retry_after_secs.to_string();
                        let resp = http::response(
                            503,
                            "application/json",
                            &body,
                            false,
                            &[("Retry-After", &retry)],
                        );
                        let _ = (&stream).write(&resp);
                        continue;
                    }
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller.register(stream.as_raw_fd(), token, true, false)?;
                    self.conns.insert(token, Conn::new(stream, now));
                    self.shared.metrics.connections.inc();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Anything else — ECONNABORTED (transient, safe to retry
                // next tick) but also EMFILE/ENFILE, where accept fails
                // *without* dequeuing the pending connection. Return to
                // the event loop instead of retrying inline: the
                // level-triggered poller re-offers the listener next
                // wait, so existing connections keep being serviced
                // instead of livelocking in this accept loop.
                Err(_) => return Ok(()),
            }
        }
    }

    /// Handles one readiness event for a connection: write what can be
    /// written, read and parse what arrived, then settle registration
    /// and close-state.
    fn service_conn(&mut self, token: u64, ev: Event, now: Instant) -> io::Result<()> {
        let Some(conn) = self.conns.get_mut(&token) else {
            return Ok(()); // closed earlier in this batch
        };

        if ev.hangup && conn.read_shut {
            // The kernel reports errors/hangups even with an empty
            // interest set. A read-shut connection will not observe
            // them through a read, so without this the level-triggered
            // poller would re-deliver the event every wait (a busy
            // spin) while a backend completion is still pending. The
            // peer is gone either way — its response is undeliverable.
            conn.dead = true;
        }
        if ev.writable {
            pump_write(
                conn,
                &self.shared.metrics,
                self.server.tracer(),
                now,
                self.cfg.max_write_backlog,
            );
        }
        if ev.readable && !conn.read_shut && !conn.dead {
            read_some(conn, &self.shared.metrics, now, self.cfg);
        }
        self.pump_and_settle(token, now)
    }

    /// Parses every complete pipelined request buffered on `conn` and
    /// routes each one (immediate response, or admission to the queue).
    /// Consumed bytes are tracked as an offset and drained from the
    /// read buffer once at the end — one memmove per pass, not one per
    /// request, so deep pipelined bursts parse in linear time.
    fn parse_conn(&mut self, token: u64, stopping: bool) {
        let mut pos = 0usize;
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // connection gone; its buffers went with it
            };
            if conn.dead
                || conn.close_after_flush
                || stopping
                || conn.slots.len() >= self.cfg.max_pipeline
            {
                break;
            }
            match http::parse_request(&conn.rbuf[pos..], &self.cfg.limits) {
                ParseOutcome::Incomplete => {
                    if conn.read_shut && conn.rbuf.len() > pos {
                        // Peer half-closed mid-request: nothing to answer.
                        conn.rbuf.clear();
                        pos = 0;
                        conn.close_after_flush = true;
                    }
                    break;
                }
                ParseOutcome::Error(err) => {
                    // answer_parse_error clears the whole buffer.
                    pos = 0;
                    self.answer_parse_error(token, err);
                    break;
                }
                ParseOutcome::Request(req) => {
                    pos += req.consumed;
                    let keep = req.keep_alive;
                    self.route(token, req);
                    if !keep {
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.read_shut = true;
                            conn.close_after_flush = true;
                        }
                        break;
                    }
                }
            }
        }
        if pos > 0 {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.rbuf.drain(..pos);
            }
        }
    }

    /// Fatal framing error: answer with its status and schedule close —
    /// request boundaries can no longer be trusted.
    fn answer_parse_error(&mut self, token: u64, err: HttpError) {
        let status = err.status();
        self.shared.metrics.count_response(status);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let body = http::json_error(err.detail());
        conn.push_ready(
            false,
            http::response(status, "application/json", &body, false, &[]),
        );
        conn.rbuf.clear();
        conn.read_shut = true;
        conn.close_after_flush = true;
    }

    /// Routes one well-framed request: answer immediately (health,
    /// metrics, admin, errors) or admit a query to the job queue —
    /// rejecting with `429 Retry-After` when the admission window is
    /// full.
    fn route(&mut self, token: u64, req: http::ParsedRequest) {
        let keep = req.keep_alive;
        let path = http::path_of(&req.target);

        if req.method == "POST" && path == "/admin/reload-delta" {
            let Some(handler) = self.reload else {
                self.respond_now(token, 404, keep, http::json_error("unknown path"));
                return;
            };
            let Some(p) = http::query_param(&req.target, "path") else {
                self.respond_now(
                    token,
                    400,
                    keep,
                    http::json_error("path query parameter is required"),
                );
                return;
            };
            match handler.reload(p) {
                Ok(body) => self.respond_now(token, 202, keep, body.into_bytes()),
                Err((status, detail)) => {
                    let body = format!("{{\"error\":{}}}", http::json_string(&detail));
                    self.respond_now(token, status, keep, body.into_bytes());
                }
            }
            return;
        }
        if req.method == "POST" && path == "/v1/matrix" {
            match parse_matrix_body(&req.body) {
                Ok(m) => self.admit(
                    token,
                    PendingQuery::Matrix {
                        rows: m.sources.len(),
                        cols: m.targets.len(),
                    },
                    Some(Box::new(m)),
                    keep,
                ),
                Err((status, detail)) => {
                    self.respond_now(token, status, keep, http::json_error(detail));
                }
            }
            return;
        }
        if req.method != "GET" {
            self.respond_now(
                token,
                405,
                keep,
                http::json_error("only GET (and POST /v1/matrix) is supported"),
            );
            return;
        }
        match path {
            "/healthz" => {
                let body = format!(
                    "{{\"status\":\"ok\",\"nodes\":{},\"open_connections\":{}}}",
                    self.num_nodes,
                    self.conns.len()
                )
                .into_bytes();
                self.respond_now(token, 200, keep, body);
            }
            "/metrics" => {
                let body = self.render_metrics().into_bytes();
                self.shared.metrics.count_response(200);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.push_ready(
                        keep,
                        http::response(200, "text/plain; version=0.0.4", &body, keep, &[]),
                    );
                }
            }
            "/readyz" => {
                // Readiness keys off the SLO policy's fast window: a
                // tripped objective degrades to 503 within seconds and
                // recovers as soon as the bad seconds age out. The
                // probe itself is never recorded as traffic.
                let status = self.cfg.slo.evaluate(self.server.slo_windows(), now_ns());
                let code = if status.ready { 200 } else { 503 };
                self.respond_now(token, code, keep, status.to_json().into_bytes());
            }
            "/debug/slo" => {
                let status = self.cfg.slo.evaluate(self.server.slo_windows(), now_ns());
                self.respond_now(token, 200, keep, status.to_json().into_bytes());
            }
            "/debug/traces" => {
                let body = self.server.tracer().traces_json().into_bytes();
                self.respond_now(token, 200, keep, body);
            }
            "/admin/shutdown" if self.cfg.allow_shutdown => {
                self.shared.stop.store(true, Ordering::Relaxed);
                self.respond_now(token, 200, keep, b"{\"status\":\"draining\"}".to_vec());
            }
            "/v1/distance" | "/v1/path" => {
                let is_path = path == "/v1/path";
                let (src, dst) = match (
                    http::query_param(&req.target, "src").and_then(|v| v.parse::<u32>().ok()),
                    http::query_param(&req.target, "dst").and_then(|v| v.parse::<u32>().ok()),
                ) {
                    (Some(s), Some(d)) => (s, d),
                    _ => {
                        // Well-framed but unusable: answer 400 and keep
                        // the connection (framing is intact).
                        self.respond_now(
                            token,
                            400,
                            keep,
                            http::json_error("src and dst must be u32 query parameters"),
                        );
                        return;
                    }
                };
                let pending = if is_path {
                    PendingQuery::Path { src, dst }
                } else {
                    PendingQuery::Distance { src, dst }
                };
                self.admit(token, pending, None, keep);
            }
            "/v1/via" => {
                let parsed = (
                    http::query_param(&req.target, "src").and_then(|v| v.parse::<u32>().ok()),
                    http::query_param(&req.target, "dst").and_then(|v| v.parse::<u32>().ok()),
                    http::query_param(&req.target, "cat").and_then(|v| v.parse::<u32>().ok()),
                );
                let (Some(src), Some(dst), Some(cat)) = parsed else {
                    self.respond_now(
                        token,
                        400,
                        keep,
                        http::json_error("src, dst and cat must be u32 query parameters"),
                    );
                    return;
                };
                self.admit(token, PendingQuery::Via { src, dst, cat }, None, keep);
            }
            "/v1/knn" => {
                let parsed = (
                    http::query_param(&req.target, "src").and_then(|v| v.parse::<u32>().ok()),
                    http::query_param(&req.target, "cat").and_then(|v| v.parse::<u32>().ok()),
                    http::query_param(&req.target, "k").and_then(|v| v.parse::<u32>().ok()),
                );
                let (Some(src), Some(cat), Some(k)) = parsed else {
                    self.respond_now(
                        token,
                        400,
                        keep,
                        http::json_error("src, cat and k must be u32 query parameters"),
                    );
                    return;
                };
                if k == 0 || k > MAX_KNN_K {
                    self.respond_now(
                        token,
                        400,
                        keep,
                        http::json_error("k must be between 1 and 256"),
                    );
                    return;
                }
                self.admit(token, PendingQuery::Knn { src, cat, k }, None, keep);
            }
            _ => {
                self.respond_now(token, 404, keep, http::json_error("unknown path"));
            }
        }
    }

    /// Admission control: claim a pipeline slot and try to enqueue; a
    /// full queue turns the slot into an immediate `429`. Sampled
    /// requests get their trace span here — parse and enqueue stamped
    /// at the edge, the rest by whichever worker pops the job (a
    /// rejected request's span is finished immediately with its
    /// rejection status, leaving an honest partial trace).
    fn admit(
        &mut self,
        token: u64,
        pending: PendingQuery,
        batch: Option<Box<MatrixRequest>>,
        keep: bool,
    ) {
        let id = self.next_req_id;
        self.next_req_id += 1;
        let request = match pending {
            PendingQuery::Distance { src, dst } => Request::distance(id, src, dst),
            PendingQuery::Path { src, dst } => Request::path(id, src, dst),
            PendingQuery::Via { src, dst, cat } => Request::via(id, src, dst, cat),
            PendingQuery::Knn { src, cat, k } => Request::knn(id, src, cat, k),
            PendingQuery::Matrix { .. } => Request::matrix(id),
        };
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let slot_id = conn.next_slot;
        conn.next_slot += 1;
        let mut span = self.server.tracer().start(trace_kind(request.kind));
        if let Some(s) = span.as_deref_mut() {
            s.stamp(Stage::Enqueue);
        }
        match self.jobs.try_push(Job {
            req: request,
            batch,
            span,
            tag: (token, slot_id),
        }) {
            Ok(()) => {
                self.in_flight += 1;
                conn.slots.push_back(Slot {
                    id: slot_id,
                    keep_alive: keep,
                    state: SlotState::Waiting(pending),
                    span: None,
                });
            }
            Err(TryPushError::Full(job)) => {
                // The admission window is full: shed *this* request,
                // keep the connection — the client is told when to come
                // back. (try_push already counted the rejection.)
                if let Some(s) = job.span {
                    self.server.tracer().finish(s, 429);
                }
                self.shared.metrics.count_response(429);
                // A shed request is an error in the same windows the
                // SLO policy evaluates — overload burns the budget.
                self.server.slo_windows().record(now_ns(), 0, true);
                let retry = self.cfg.retry_after_secs.to_string();
                let body = http::json_error("server overloaded, retry later");
                conn.slots.push_back(Slot {
                    id: slot_id,
                    keep_alive: keep,
                    state: SlotState::Ready(http::response(
                        429,
                        "application/json",
                        &body,
                        keep,
                        &[("Retry-After", &retry)],
                    )),
                    span: None,
                });
            }
            Err(TryPushError::Closed(job)) => {
                // Shutting down: this request arrived after the drain
                // began.
                if let Some(s) = job.span {
                    self.server.tracer().finish(s, 503);
                }
                self.shared.metrics.count_response(503);
                self.server.slo_windows().record(now_ns(), 0, true);
                let body = http::json_error("shutting down");
                conn.slots.push_back(Slot {
                    id: slot_id,
                    keep_alive: false,
                    state: SlotState::Ready(http::response(
                        503,
                        "application/json",
                        &body,
                        false,
                        &[],
                    )),
                    span: None,
                });
                conn.read_shut = true;
                conn.close_after_flush = true;
            }
        }
    }

    /// Queues an immediate JSON response on the connection.
    fn respond_now(&mut self, token: u64, status: u16, keep: bool, body: Vec<u8>) {
        self.shared.metrics.count_response(status);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.push_ready(
                keep,
                http::response(status, "application/json", &body, keep, &[]),
            );
        }
    }

    /// Moves worker completions into their slots and flushes the
    /// affected connections.
    fn drain_completions(&mut self, now: Instant) -> io::Result<()> {
        let done = std::mem::take(&mut *self.completions.lock().unwrap());
        if done.is_empty() {
            return Ok(());
        }
        let mut touched: Vec<u64> = Vec::with_capacity(done.len());
        for ((token, slot_id), resp, payload, span) in done {
            if self.failed_tags.remove(&(token, slot_id)) {
                // fail_waiting_slots already answered this slot (503)
                // and accounted for it; a surviving worker's late
                // completion must not decrement in_flight again.
                if let Some(s) = span {
                    self.server.tracer().finish(s, 503);
                }
                continue;
            }
            self.in_flight = self.in_flight.saturating_sub(1);
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while the query ran (span
                          // dropped unfinished — nothing was delivered)
            };
            let Some(slot) = conn.slots.iter_mut().find(|s| s.id == slot_id) else {
                continue;
            };
            if let SlotState::Waiting(pending) = slot.state {
                let body = match pending {
                    PendingQuery::Distance { src, dst } => {
                        render_query_json(src, dst, false, &resp)
                    }
                    PendingQuery::Path { src, dst } => render_query_json(src, dst, true, &resp),
                    PendingQuery::Via { src, dst, cat } => {
                        render_via_json(src, dst, cat, &resp, payload.as_deref())
                    }
                    PendingQuery::Knn { src, cat, k } => {
                        render_knn_json(src, cat, k, payload.as_deref())
                    }
                    PendingQuery::Matrix { rows, cols } => {
                        render_matrix_json(rows, cols, payload.as_deref())
                    }
                };
                // The worker drained the kernel-side cost in
                // `timed_serve`; the response body size is only known
                // here, so `bytes_out` joins the same per-kind families
                // (and the sampled span) at serialize time.
                let mut out_cost = CostCounters::default();
                out_cost.bytes_out = body.len() as u64;
                self.server
                    .metrics()
                    .cost
                    .record(pending_cost_kind(pending), &out_cost);
                slot.state = SlotState::Ready(http::response(
                    200,
                    "application/json",
                    &body,
                    slot.keep_alive,
                    &[],
                ));
                if let Some(mut s) = span {
                    s.stamp(Stage::Serialize);
                    s.add_cost(&out_cost);
                    slot.span = Some(s);
                }
                self.shared.metrics.count_response(200);
                touched.push(token);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            self.pump_and_settle(token, now)?;
        }
        Ok(())
    }

    /// Drives a connection as far as it can go without new input —
    /// alternating flush (which frees pipeline slots) and parse (which
    /// fills them from buffered bytes) until neither makes progress —
    /// then reconciles poller interest with what the connection still
    /// wants, and closes it when it is finished (or dead).
    ///
    /// The alternation matters: after the *last* completion of a burst
    /// flushes, no further event would arrive to parse the rest of a
    /// deeply pipelined read buffer; looping here is what keeps a
    /// backlog larger than `max_pipeline` moving.
    fn pump_and_settle(&mut self, token: u64, now: Instant) -> io::Result<()> {
        let stopping = self.shared.stop.load(Ordering::Relaxed);
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return Ok(());
            };
            let before = (
                conn.slots.len(),
                conn.rbuf.len(),
                conn.wbuf.len() - conn.wpos,
            );
            pump_write(
                conn,
                &self.shared.metrics,
                self.server.tracer(),
                now,
                self.cfg.max_write_backlog,
            );
            self.parse_conn(token, stopping);
            let Some(conn) = self.conns.get_mut(&token) else {
                return Ok(());
            };
            let after = (
                conn.slots.len(),
                conn.rbuf.len(),
                conn.wbuf.len() - conn.wpos,
            );
            if before == after {
                break;
            }
        }
        let conn = self.conns.get_mut(&token).expect("checked in loop");
        // Start (or clear) the partial-request clock: bytes left in the
        // read buffer with no request in flight can only be an
        // incomplete head/body awaiting the rest.
        if !conn.rbuf.is_empty() && conn.slots.is_empty() && !conn.read_shut {
            conn.partial_since.get_or_insert(now);
        } else {
            conn.partial_since = None;
        }
        // Same idea for the write side: the clock runs from when the
        // backlog appeared, not from the peer's last send.
        if conn.has_pending_write() {
            conn.write_stalled_since.get_or_insert(now);
        } else {
            conn.write_stalled_since = None;
        }
        let finished = conn.drained() && (conn.close_after_flush || conn.read_shut);
        if conn.dead || finished {
            let conn = self.conns.remove(&token).unwrap();
            self.poller.deregister(conn.stream.as_raw_fd())?;
            self.shared.metrics.connections_closed.inc();
            return Ok(());
        }

        let want_read = !conn.read_shut
            && conn.slots.len() < self.cfg.max_pipeline
            && conn.rbuf.len() < self.cfg.max_read_backlog
            && conn.wbuf.len() - conn.wpos < self.cfg.max_write_backlog;
        let want_write = conn.has_pending_write();
        if want_read != conn.reg_read || want_write != conn.reg_write {
            conn.reg_read = want_read;
            conn.reg_write = want_write;
            self.poller
                .modify(conn.stream.as_raw_fd(), token, want_read, want_write)?;
        }
        Ok(())
    }

    /// Enforces read/write/idle timeouts across all connections.
    fn sweep_timeouts(&mut self, now: Instant) -> io::Result<()> {
        let mut expired: Vec<(u64, bool)> = Vec::new(); // (token, hard drop)
        for (&token, conn) in &self.conns {
            let idle = now.duration_since(conn.last_activity);
            // The clocks are checked independently — an armed (but not
            // yet expired) write-stall clock must not shadow the
            // read-stall check, or a client keeping a token write
            // backlog alive could trickle a partial request forever.
            let write_stalled = conn
                .write_stalled_since
                .is_some_and(|t0| now.duration_since(t0) > self.cfg.write_timeout);
            let read_stalled = conn
                .partial_since
                .is_some_and(|t0| now.duration_since(t0) > self.cfg.read_timeout);
            if write_stalled {
                expired.push((token, true)); // peer stopped reading
            } else if read_stalled {
                // Measured from when the partial request *started*, not
                // from the last byte — trickling bytes buys no time.
                expired.push((token, false)); // stalled mid-request → 408
            } else if conn.slots.is_empty()
                && !conn.has_pending_write()
                && idle > self.cfg.idle_timeout
            {
                expired.push((token, true)); // idle keep-alive, close silently
            }
        }
        for (token, hard) in expired {
            self.shared.metrics.timeouts.inc();
            if hard {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.dead = true;
                }
            } else {
                self.shared.metrics.count_response(408);
                if let Some(conn) = self.conns.get_mut(&token) {
                    if std::env::var_os("AH_EDGE_DEBUG").is_some() {
                        eprintln!(
                            "[edge-debug] 408: rbuf={} ({:?}) slots={} wbuf={} reg_read={} reg_write={}",
                            conn.rbuf.len(),
                            String::from_utf8_lossy(&conn.rbuf[..conn.rbuf.len().min(80)]),
                            conn.slots.len(),
                            conn.wbuf.len() - conn.wpos,
                            conn.reg_read,
                            conn.reg_write,
                        );
                    }
                    let body = http::json_error("request timed out");
                    conn.push_ready(
                        false,
                        http::response(408, "application/json", &body, false, &[]),
                    );
                    conn.rbuf.clear();
                    conn.read_shut = true;
                    conn.close_after_flush = true;
                }
            }
            self.pump_and_settle(token, now)?;
        }
        Ok(())
    }

    /// Prometheus text exposition: refresh the point-in-time gauges and
    /// mirror counters, then render the server's registry — edge
    /// counters, admission-queue saturation, the serving engine's
    /// latency/queue-wait histograms (`_bucket`/`_sum`/`_count`) and
    /// the tracer's per-stage durations, all in one document.
    fn render_metrics(&self) -> String {
        let mi = &self.mirrors;
        mi.backend.set(1);
        mi.build_info.set(1);
        mi.uptime.set(mi.started.elapsed().as_secs());
        mi.connections_open.set(self.conns.len() as u64);
        mi.in_flight.set(self.in_flight as u64);
        mi.queue_capacity.set(self.jobs.capacity() as u64);
        mi.queue_depth.set(self.jobs.len() as u64);
        mi.queue_high_water.set(self.jobs.high_water() as u64);
        mi.queue_rejected.store(self.jobs.rejected());
        mi.server_queries.store(self.server.metrics().latency.count());
        self.server.registry().render()
    }
}

/// Maps a pending edge query onto the serving layer's cost-kind index
/// (the same order [`trace_kind`] and `COST_KIND_NAMES` use).
fn pending_cost_kind(pending: PendingQuery) -> usize {
    match pending {
        PendingQuery::Distance { .. } => 0,
        PendingQuery::Path { .. } => 1,
        PendingQuery::Via { .. } => 2,
        PendingQuery::Knn { .. } => 3,
        PendingQuery::Matrix { .. } => 4,
    }
}

/// Renders the JSON body of a completed query response.
fn render_query_json(src: u32, dst: u32, is_path: bool, resp: &Response) -> Vec<u8> {
    let distance = match resp.distance {
        Some(d) => d.to_string(),
        None => "null".to_string(),
    };
    if is_path {
        let hops = match resp.hops {
            Some(h) => h.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"src\":{src},\"dst\":{dst},\"distance\":{distance},\"hops\":{hops}}}"
        )
        .into_bytes()
    } else {
        format!(
            "{{\"src\":{src},\"dst\":{dst},\"distance\":{distance},\"cache_hit\":{}}}",
            resp.cache_hit
        )
        .into_bytes()
    }
}

/// Renders the JSON body of a completed `/v1/via` response. No payload
/// means no POI of the category was reachable: every answer field is
/// `null`, mirroring an unreachable `/v1/distance`.
fn render_via_json(
    src: u32,
    dst: u32,
    cat: u32,
    resp: &Response,
    payload: Option<&ScenarioResult>,
) -> Vec<u8> {
    let mut out = format!("{{\"src\":{src},\"dst\":{dst},\"cat\":{cat},");
    match payload {
        Some(ScenarioResult::Via(a)) => {
            out.push_str(&format!(
                "\"poi\":{},\"total\":{},\"to_poi\":{},\"from_poi\":{},",
                a.poi, a.total, a.to_poi, a.from_poi
            ));
        }
        _ => out.push_str("\"poi\":null,\"total\":null,\"to_poi\":null,\"from_poi\":null,"),
    }
    out.push_str(&format!("\"cache_hit\":{}}}", resp.cache_hit));
    out.into_bytes()
}

/// Renders the JSON body of a completed `/v1/knn` response. The
/// results array is already sorted by `(distance, poi)` and truncated
/// to `k` by the engine; fewer than `k` entries means the category ran
/// out of reachable POIs.
fn render_knn_json(src: u32, cat: u32, k: u32, payload: Option<&ScenarioResult>) -> Vec<u8> {
    let mut out = format!("{{\"src\":{src},\"cat\":{cat},\"k\":{k},\"results\":[");
    if let Some(ScenarioResult::Knn(results)) = payload {
        for (i, &(poi, d)) in results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"poi\":{poi},\"distance\":{d}}}"));
        }
    }
    out.push_str("]}");
    out.into_bytes()
}

/// Renders the JSON body of a completed `/v1/matrix` response:
/// row-major `distances`, one row per source, `null` cells for
/// unreachable or out-of-range pairs. A missing payload (worker could
/// not produce a table) renders as a fully-masked `rows`×`cols` table
/// so the body shape always matches the request.
fn render_matrix_json(rows: usize, cols: usize, payload: Option<&ScenarioResult>) -> Vec<u8> {
    let mut out = format!("{{\"rows\":{rows},\"cols\":{cols},\"distances\":[");
    let table: Option<&Vec<Vec<Option<u64>>>> = match payload {
        Some(ScenarioResult::Matrix(t)) => Some(t),
        _ => None,
    };
    for r in 0..rows {
        if r > 0 {
            out.push(',');
        }
        out.push('[');
        for c in 0..cols {
            if c > 0 {
                out.push(',');
            }
            match table.and_then(|t| t.get(r)).and_then(|row| row.get(c)) {
                Some(Some(d)) => out.push_str(&d.to_string()),
                _ => out.push_str("null"),
            }
        }
        out.push(']');
    }
    out.push_str("]}");
    out.into_bytes()
}

/// Parses the `POST /v1/matrix` body:
/// `{"sources":[u32,...],"targets":[u32,...]}` (key order free,
/// whitespace tolerated, no other JSON accepted). Malformed bodies are
/// `400`; tables over [`MAX_MATRIX_DIM`] per side are `413`, the same
/// class as an oversized body. Hand-rolled like every other JSON
/// surface in this workspace — no serde.
fn parse_matrix_body(body: &[u8]) -> Result<MatrixRequest, (u16, &'static str)> {
    let text = std::str::from_utf8(body).map_err(|_| (400u16, "body must be UTF-8 JSON"))?;
    let trimmed = text.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err((400, "body must be a JSON object"));
    }
    let sources = extract_u32_array(trimmed, "sources")?;
    let targets = extract_u32_array(trimmed, "targets")?;
    if sources.is_empty() || targets.is_empty() {
        return Err((400, "sources and targets must be non-empty"));
    }
    if sources.len() > MAX_MATRIX_DIM || targets.len() > MAX_MATRIX_DIM {
        return Err((413, "matrix dimensions exceed the per-side cap"));
    }
    Ok(MatrixRequest { sources, targets })
}

/// Pulls `"key": [u32, ...]` out of a JSON object body.
fn extract_u32_array(text: &str, key: &str) -> Result<Vec<u32>, (u16, &'static str)> {
    let needle = format!("\"{key}\"");
    let at = text
        .find(&needle)
        .ok_or((400u16, "sources and targets arrays are required"))?;
    let rest = text[at + needle.len()..].trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or((400u16, "expected ':' after key"))?
        .trim_start();
    let rest = rest
        .strip_prefix('[')
        .ok_or((400u16, "sources and targets must be arrays"))?;
    let end = rest.find(']').ok_or((400u16, "unterminated array"))?;
    let inner = rest[..end].trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| (400u16, "array elements must be u32 node ids"))
        })
        .collect()
}

/// Reads whatever the socket has (until `WouldBlock`, EOF, or a
/// backlog cap suggests stopping), appending to the connection's parse
/// buffer. The read-backlog cap also bounds how long one fast sender
/// can occupy the event loop in a single pass.
fn read_some(conn: &mut Conn, metrics: &EdgeMetrics, now: Instant, cfg: &EdgeConfig) {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if conn.slots.len() >= cfg.max_pipeline || conn.rbuf.len() >= cfg.max_read_backlog {
            return; // stop reading; TCP back-pressure takes over
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_shut = true;
                return;
            }
            Ok(n) => {
                metrics.bytes_in.add(n as u64);
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
                if n < chunk.len() {
                    return; // drained the socket buffer
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Moves ready front slots into the write buffer (strict pipeline
/// order) and writes as much as the socket accepts. Slot conversion
/// stops once the unsent backlog reaches `max_write_backlog`, so a
/// peer that never reads cannot turn buffered requests into unbounded
/// response bytes — parked `Ready` slots count against the pipeline
/// cap, which in turn halts parsing and (via the settle gate) reading.
///
/// Sampled spans ride along: a slot entering the write buffer records
/// the byte mark its response ends at, and once the socket has
/// accepted that many lifetime bytes the span is stamped `Flush` and
/// finished — the trace ends when the *last byte* clears, not when the
/// response is merely buffered.
fn pump_write(
    conn: &mut Conn,
    metrics: &EdgeMetrics,
    tracer: &Tracer,
    now: Instant,
    max_write_backlog: usize,
) {
    loop {
        while let Some(front) = conn.slots.front() {
            if !matches!(front.state, SlotState::Ready(_)) {
                break;
            }
            if conn.wbuf.len() - conn.wpos >= max_write_backlog {
                break; // backlog cap: leave the slot parked
            }
            let slot = conn.slots.pop_front().unwrap();
            let SlotState::Ready(bytes) = slot.state else {
                unreachable!()
            };
            conn.wbuf.extend_from_slice(&bytes);
            conn.bytes_queued += bytes.len() as u64;
            if let Some(span) = slot.span {
                conn.pending_spans.push_back((conn.bytes_queued, span));
            }
            if !slot.keep_alive {
                // This response is the last one this connection will
                // carry; anything the client pipelined after it is
                // abandoned by protocol (dropped slots take their
                // unfinished spans with them).
                conn.read_shut = true;
                conn.close_after_flush = true;
                conn.slots.clear();
                break;
            }
        }
        if !conn.has_pending_write() {
            conn.wbuf.clear();
            conn.wpos = 0;
            return;
        }
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.wpos += n;
                conn.bytes_flushed += n as u64;
                while conn
                    .pending_spans
                    .front()
                    .is_some_and(|p| p.0 <= conn.bytes_flushed)
                {
                    let (_, mut span) = conn.pending_spans.pop_front().unwrap();
                    span.stamp(Stage::Flush);
                    tracer.finish(span, 200);
                }
                metrics.bytes_out.add(n as u64);
                conn.last_activity = now;
                // Any progress restarts the write-stall clock (the
                // settle pass re-arms it if a backlog remains), so the
                // write timeout measures *stalls*, not slow-but-steady
                // consumption.
                conn.write_stalled_since = None;
                if !conn.has_pending_write() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    // Loop again: more slots may have become movable.
                    if conn.slots.is_empty() {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reclaim the flushed prefix before parking: retaining
                // it would let a long-lived connection's buffer grow
                // with total bytes sent rather than with its backlog.
                if conn.wpos > 0 {
                    conn.wbuf.drain(..conn.wpos);
                    conn.wpos = 0;
                }
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}
