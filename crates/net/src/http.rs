//! A minimal, incremental HTTP/1.1 request parser and response builder.
//!
//! The edge speaks just enough HTTP for query traffic: `GET` requests
//! with keep-alive and pipelining, no chunked encoding, bodies only
//! tolerated up to a small cap (captured for the handful of POST
//! endpoints, e.g. `/v1/matrix`). The parser is
//! *incremental*: it is handed whatever bytes have arrived so far and
//! either returns a complete request (with how many bytes it consumed),
//! asks for more ([`ParseOutcome::Incomplete`]), or classifies the input
//! as irrecoverable ([`ParseOutcome::Error`]) — `400` for malformed
//! framing, `431` for oversized headers, `413` for oversized bodies.
//! It never panics on any byte sequence (fuzzed in `tests/parser_fuzz.rs`)
//! and never buffers beyond the configured caps, which is what keeps a
//! slow- or garbage-sending client from holding memory hostage.
//!
//! Line endings: CRLF per RFC 9112, with bare LF tolerated (curl-style
//! hand-written requests). Header *names* are matched ASCII
//! case-insensitively; values are trimmed of surrounding whitespace.

/// Caps enforced during parsing.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (432 → `431` beyond).
    pub max_head_bytes: usize,
    /// Maximum tolerated `Content-Length` (bodies are discarded; larger
    /// ones are answered `413` and the connection closed).
    pub max_body_bytes: usize,
    /// Maximum number of header lines (counts toward `431`).
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 4 * 1024,
            max_headers: 64,
        }
    }
}

/// A complete parsed request: head plus the (cap-bounded) body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Request method, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target as received: path plus optional `?query`.
    pub target: String,
    /// The request body, complete up to `Content-Length` (which the
    /// limits cap at [`HttpLimits::max_body_bytes`]); empty for the
    /// GET traffic that dominates the edge.
    pub body: Vec<u8>,
    /// Whether the connection persists after this exchange
    /// (HTTP/1.1 default yes, HTTP/1.0 default no, `Connection` header
    /// overrides either way).
    pub keep_alive: bool,
    /// Total bytes this request occupied in the input (head + body) —
    /// the caller drains this many before parsing the next pipelined
    /// request.
    pub consumed: usize,
}

/// Irrecoverable classification of a request. The connection is closed
/// after the error response — framing can no longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// `400 Bad Request`: malformed request line, header or length.
    BadRequest(&'static str),
    /// `431 Request Header Fields Too Large`: head exceeds the cap.
    HeadersTooLarge,
    /// `413 Content Too Large`: declared body exceeds the cap.
    BodyTooLarge,
}

impl HttpError {
    /// The status code this error is answered with.
    pub fn status(self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::HeadersTooLarge => 431,
            HttpError::BodyTooLarge => 413,
        }
    }

    /// Human-readable detail for the JSON error body.
    pub fn detail(self) -> &'static str {
        match self {
            HttpError::BadRequest(d) => d,
            HttpError::HeadersTooLarge => "request head exceeds limit",
            HttpError::BodyTooLarge => "request body exceeds limit",
        }
    }
}

/// Result of attempting to parse one request from buffered input.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseOutcome {
    /// The buffer holds no complete request yet — read more.
    Incomplete,
    /// One complete request; the caller drains `.consumed` bytes.
    Request(ParsedRequest),
    /// The input can no longer be framed; answer and close.
    Error(HttpError),
}

/// Locates the end of the head: the index *past* the blank line.
/// Accepts `\r\n\r\n` and bare `\n\n` (and the `\n\r\n` mix that
/// lenient line endings produce).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            let rest = &buf[i + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if rest.len() >= 2 && rest[0] == b'\r' && rest[1] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: &HttpLimits) -> ParseOutcome {
    let head_end = match find_head_end(buf) {
        Some(end) => {
            if end > limits.max_head_bytes {
                return ParseOutcome::Error(HttpError::HeadersTooLarge);
            }
            end
        }
        None => {
            // No blank line yet: either genuinely partial, or the peer
            // is streaming an unbounded head.
            if buf.len() >= limits.max_head_bytes {
                return ParseOutcome::Error(HttpError::HeadersTooLarge);
            }
            return ParseOutcome::Incomplete;
        }
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(s) => s,
        Err(_) => return ParseOutcome::Error(HttpError::BadRequest("head is not UTF-8")),
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    // Request line: METHOD SP target SP HTTP/1.x
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => return ParseOutcome::Error(HttpError::BadRequest("malformed request line")),
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return ParseOutcome::Error(HttpError::BadRequest("malformed method"));
    }
    if !target.starts_with('/') {
        return ParseOutcome::Error(HttpError::BadRequest("target must be absolute path"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return ParseOutcome::Error(HttpError::BadRequest("unsupported HTTP version")),
    };

    // Headers.
    let mut keep_alive = http11;
    let mut content_length: Option<usize> = None;
    let mut n_headers = 0usize;
    for line in lines {
        if line.is_empty() {
            break; // blank line ends the head (trailing split artifacts too)
        }
        n_headers += 1;
        if n_headers > limits.max_headers {
            return ParseOutcome::Error(HttpError::HeadersTooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseOutcome::Error(HttpError::BadRequest("header without colon"));
        };
        if name.is_empty() || name.ends_with(' ') || name.ends_with('\t') {
            // RFC 9112 §5.1: no whitespace between field name and colon.
            return ParseOutcome::Error(HttpError::BadRequest("malformed header name"));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            // Token list; `close` and `keep-alive` are what matter here.
            for tok in value.split(',') {
                let tok = tok.trim();
                if tok.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if tok.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                // RFC 9112 §6.3: conflicting duplicate Content-Length
                // values are a framing attack (request smuggling behind
                // an intermediary that honours the other one) — reject.
                Ok(n) if content_length.is_none() || content_length == Some(n) => {
                    content_length = Some(n)
                }
                Ok(_) => {
                    return ParseOutcome::Error(HttpError::BadRequest(
                        "conflicting content-length",
                    ))
                }
                Err(_) => {
                    return ParseOutcome::Error(HttpError::BadRequest("bad content-length"))
                }
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // The query edge has no use for request bodies; chunked
            // framing is refused outright rather than half-supported.
            return ParseOutcome::Error(HttpError::BadRequest(
                "transfer-encoding not supported",
            ));
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return ParseOutcome::Error(HttpError::BodyTooLarge);
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return ParseOutcome::Incomplete; // body still arriving
    }

    ParseOutcome::Request(ParsedRequest {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        body: buf[head_end..total].to_vec(),
        keep_alive,
        consumed: total,
    })
}

/// Extracts a query-string parameter from a request target
/// (`/v1/distance?src=3&dst=9` → `query_param(target, "src") == Some("3")`).
/// No percent-decoding: the edge's parameters are plain integers.
pub fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = target.split_once('?')?;
    for pair in query.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == key {
            return Some(v);
        }
    }
    None
}

/// The path component of a request target (everything before `?`).
pub fn path_of(target: &str) -> &str {
    target.split_once('?').map_or(target, |(p, _)| p)
}

/// Standard reason phrase for the statuses the edge emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one HTTP/1.1 response. `extra` headers are emitted
/// verbatim (e.g. `("Retry-After", "1")` on 429s); `keep_alive: false`
/// adds `Connection: close` so well-behaved clients stop pipelining.
pub fn response(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", status, reason(status)).as_bytes(),
    );
    out.extend_from_slice(format!("Content-Type: {content_type}\r\n").as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    if !keep_alive {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    for (k, v) in extra {
        out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// A JSON error body: `{"error":"..."}` (the detail strings are all
/// static ASCII, so no escaping is needed).
pub fn json_error(detail: &str) -> Vec<u8> {
    format!("{{\"error\":\"{detail}\"}}").into_bytes()
}

/// `s` as a quoted JSON string, escaping quotes, backslashes, and
/// control characters — for values that come from the wire (file
/// paths, error details) rather than static literals.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> ParseOutcome {
        parse_request(bytes, &HttpLimits::default())
    }

    #[test]
    fn parses_a_plain_get() {
        let out = parse(b"GET /v1/distance?src=1&dst=2 HTTP/1.1\r\nHost: x\r\n\r\n");
        let ParseOutcome::Request(req) = out else {
            panic!("{out:?}")
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/v1/distance?src=1&dst=2");
        assert!(req.keep_alive);
        assert_eq!(
            req.consumed,
            b"GET /v1/distance?src=1&dst=2 HTTP/1.1\r\nHost: x\r\n\r\n".len()
        );
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseOutcome::Request(req) = parse(two) else {
            panic!()
        };
        assert_eq!(req.target, "/a");
        let ParseOutcome::Request(req2) = parse(&two[req.consumed..]) else {
            panic!()
        };
        assert_eq!(req2.target, "/b");
        assert_eq!(req.consumed + req2.consumed, two.len());
    }

    #[test]
    fn truncated_input_is_incomplete_at_every_prefix() {
        let full = b"GET /v1/path?src=0&dst=5 HTTP/1.1\r\nHost: h\r\nConnection: close\r\n\r\n";
        for cut in 0..full.len() {
            match parse(&full[..cut]) {
                ParseOutcome::Incomplete => {}
                other => panic!("prefix {cut}: {other:?}"),
            }
        }
        let ParseOutcome::Request(req) = parse(full) else {
            panic!()
        };
        assert!(!req.keep_alive, "Connection: close honoured");
    }

    #[test]
    fn http10_defaults_to_close_keepalive_overrides() {
        let ParseOutcome::Request(r) = parse(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(!r.keep_alive);
        let ParseOutcome::Request(r) =
            parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
        else {
            panic!()
        };
        assert!(r.keep_alive);
        let ParseOutcome::Request(r) = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!()
        };
        assert!(!r.keep_alive);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let ParseOutcome::Request(r) = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n") else {
            panic!()
        };
        assert_eq!(r.target, "/healthz");
        assert_eq!(r.consumed, 31);
    }

    #[test]
    fn malformed_inputs_classify_as_400() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",                                // no version
            b"GET / HTTP/2.0\r\n\r\n",                       // unsupported version
            b"GET / HTTP/1.1 extra\r\n\r\n",                 // trailing token
            b"G@T / HTTP/1.1\r\n\r\n",                       // bad method chars
            b"GET relative HTTP/1.1\r\n\r\n",                // non-absolute target
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",        // header without colon
            b"GET / HTTP/1.1\r\nName : v\r\n\r\n",           // space before colon
            b"GET / HTTP/1.1\r\nContent-Length: pear\r\n\r\n", // bad length
            b"POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 5\r\n\r\n", // conflict
            b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",                  // not UTF-8
        ] {
            match parse(bad) {
                ParseOutcome::Error(e) => {
                    assert_eq!(e.status(), 400, "{:?}", String::from_utf8_lossy(bad))
                }
                other => panic!("{:?} → {other:?}", String::from_utf8_lossy(bad)),
            }
        }
    }

    #[test]
    fn oversized_heads_classify_as_431() {
        let limits = HttpLimits {
            max_head_bytes: 128,
            ..Default::default()
        };
        // Complete but oversized head.
        let mut big = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 200));
        big.extend_from_slice(b"\r\n\r\n");
        assert_eq!(
            parse_request(&big, &limits),
            ParseOutcome::Error(HttpError::HeadersTooLarge)
        );
        // Endless head with no blank line: rejected once past the cap,
        // instead of buffering forever.
        let endless = vec![b'a'; 128];
        assert_eq!(
            parse_request(&endless, &limits),
            ParseOutcome::Error(HttpError::HeadersTooLarge)
        );
        // Too many headers.
        let mut many = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            many.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
        }
        many.extend_from_slice(b"\r\n");
        assert_eq!(
            parse_request(&many, &HttpLimits::default()),
            ParseOutcome::Error(HttpError::HeadersTooLarge)
        );
    }

    #[test]
    fn bodies_are_captured_up_to_cap_and_413_beyond() {
        // A POST with a small body parses (and keeps the body bytes) and
        // consumes head + body so the next pipelined request aligns.
        let with_body = b"POST /v1/distance HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET";
        let ParseOutcome::Request(req) = parse(with_body) else {
            panic!()
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert_eq!(&with_body[req.consumed..], b"GET");
        // GETs carry no body.
        let ParseOutcome::Request(get) = parse(b"GET / HTTP/1.1\r\n\r\n") else {
            panic!()
        };
        assert!(get.body.is_empty());
        // Body still in flight → Incomplete.
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel"),
            ParseOutcome::Incomplete
        );
        // Over the cap → 413 without waiting for the body.
        let out = parse(b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert_eq!(out, ParseOutcome::Error(HttpError::BodyTooLarge));
    }

    #[test]
    fn query_params_and_paths() {
        let t = "/v1/distance?src=3&dst=9&x=";
        assert_eq!(query_param(t, "src"), Some("3"));
        assert_eq!(query_param(t, "dst"), Some("9"));
        assert_eq!(query_param(t, "x"), Some(""));
        assert_eq!(query_param(t, "nope"), None);
        assert_eq!(query_param("/healthz", "src"), None);
        assert_eq!(path_of(t), "/v1/distance");
        assert_eq!(path_of("/healthz"), "/healthz");
    }

    #[test]
    fn response_framing() {
        let r = response(429, "application/json", b"{}", true, &[("Retry-After", "1")]);
        let s = String::from_utf8(r).unwrap();
        assert!(s.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(!s.contains("Connection: close"));
        assert!(s.ends_with("\r\n\r\n{}"));

        let r = response(400, "application/json", &json_error("nope"), false, &[]);
        let s = String::from_utf8(r).unwrap();
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("{\"error\":\"nope\"}"));
    }
}
