//! **The async network edge** — turning the closed-loop serving harness
//! into an open HTTP service.
//!
//! Everything below `ah_net` answers queries in microseconds; this crate
//! makes those answers reachable over a socket while surviving what real
//! traffic does to a listener: slow clients, garbage bytes, pipelined
//! bursts, and load beyond capacity. It is deliberately dependency-free
//! (the build environment has no registry access — no tokio, no mio):
//!
//! * [`sys`](crate::PollerKind): a readiness poller over raw file
//!   descriptors — `epoll(7)` via direct libc declarations on Linux,
//!   portable `poll(2)` everywhere Unix, both selectable so tests cover
//!   each — plus a self-pipe waker for worker→loop signalling.
//! * [`http`]: an incremental HTTP/1.1 subset parser (GET, keep-alive,
//!   pipelining, header/body caps, never panics) and response builder.
//! * [`EdgeServer`]: the single-threaded event loop owning all sockets,
//!   handing parsed queries to [`ah_server::Server::serve_queue`]
//!   workers through the bounded MPMC queue. **Admission control falls
//!   out of the queue bound**: a full queue answers `429 Too Many
//!   Requests` + `Retry-After` instead of buffering, so memory stays
//!   bounded under any offered load.
//!
//! Wire protocol, overload semantics and tuning guidance live in
//! `docs/EDGE.md`. The serving path:
//!
//! ```text
//!   clients ⇄ TCP ⇄ event loop (parse, admission, ordered writes)
//!                      │ BoundedQueue::try_push   full → 429
//!                      ▼
//!                worker threads (Server::serve_queue, per-thread sessions,
//!                shared LRU cache + metrics)
//!                      │ completions + wake pipe
//!                      ▼
//!                event loop fills pipeline slots, writes in order
//! ```
//!
//! ```no_run
//! use ah_core::{AhIndex, BuildConfig};
//! use ah_net::{EdgeConfig, EdgeServer};
//! use ah_server::{AhBackend, Server, ServerConfig};
//!
//! let g = ah_data::fixtures::lattice(8, 8, 12);
//! let idx = AhIndex::build(&g, &BuildConfig::default());
//! let server = Server::new(ServerConfig::with_workers(4));
//! let edge = EdgeServer::bind("127.0.0.1:8080", EdgeConfig::default()).unwrap();
//! let handle = edge.handle(); // move to another thread: handle.shutdown()
//! # let _ = handle;
//! let report = edge.serve(&server, &AhBackend::new(&idx)).unwrap();
//! println!("accepted {} connections", report.connections);
//! ```

#[cfg(unix)]
pub mod blocking;
#[cfg(unix)]
mod edge;
#[cfg(unix)]
pub mod http;
#[cfg(unix)]
mod sys;

#[cfg(unix)]
pub use edge::{EdgeConfig, EdgeHandle, EdgeMetrics, EdgeReport, EdgeServer, ReloadHandler, STATUSES};
#[cfg(unix)]
pub use sys::PollerKind;
