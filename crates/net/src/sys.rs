//! Readiness polling without dependencies.
//!
//! The container (and CI) have no registry access, so the event loop
//! cannot lean on `mio` or `tokio`. Instead this module declares the
//! handful of libc symbols the Rust standard library already links —
//! `epoll_*` on Linux, `poll` everywhere Unix — and wraps them in a
//! small [`Poller`] facade plus a pipe-based [`WakePipe`] that lets
//! worker threads interrupt a blocked wait.
//!
//! Two interchangeable backends:
//!
//! * [`PollerKind::Epoll`] (Linux only, the default there): one
//!   `epoll_create1` instance, O(ready) wakeups.
//! * [`PollerKind::Poll`] (every Unix): a rebuilt `pollfd` array per
//!   wait, O(registered) — the portable fallback, and also selectable
//!   on Linux so tests exercise both code paths on one machine.
//!
//! Everything here is level-triggered: the edge reads/writes until
//! `WouldBlock` and keeps interest flags in sync with what it still
//! wants to do, so no readiness is ever lost.

#![cfg(unix)]

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_ulong, c_void};

// Symbols provided by the platform libc that std already links; declaring
// them here adds no cargo dependency.
extern "C" {
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int)
        -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4; // BSD family

/// Which readiness backend drives the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// `epoll(7)` — Linux only; O(ready) wakeups.
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)` — every Unix; the portable fallback.
    Poll,
}

impl Default for PollerKind {
    fn default() -> Self {
        #[cfg(target_os = "linux")]
        {
            PollerKind::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            PollerKind::Poll
        }
    }
}

impl PollerKind {
    /// Backend name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            PollerKind::Epoll => "epoll",
            PollerKind::Poll => "poll",
        }
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or peer hung up — a read will observe EOF/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup. These conditions are reported by the kernel
    /// even with an empty interest set, so a consumer that has stopped
    /// reading must act on this flag (close the connection) or the
    /// level-triggered poller will re-deliver the event forever.
    pub hangup: bool,
}

/// Level-triggered readiness poller over raw file descriptors.
pub(crate) enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    pub fn new(kind: PollerKind) -> io::Result<Poller> {
        match kind {
            #[cfg(target_os = "linux")]
            PollerKind::Epoll => Ok(Poller::Epoll(EpollPoller::new()?)),
            PollerKind::Poll => Ok(Poller::Poll(PollPoller::new())),
        }
    }

    /// Starts watching `fd`; future events carry `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_ADD, fd, token, r, w),
            Poller::Poll(p) => {
                p.fds.insert(fd, (token, r, w));
                Ok(())
            }
        }
    }

    /// Updates the interest set of an already-registered `fd`.
    pub fn modify(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_MOD, fd, token, r, w),
            Poller::Poll(p) => {
                p.fds.insert(fd, (token, r, w));
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Must be called *before* the descriptor is
    /// closed (closing an epoll-registered fd leaks the registration).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(EPOLL_CTL_DEL, fd, 0, false, false),
            Poller::Poll(p) => {
                p.fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks up to `timeout_ms` for readiness; appends events to `out`
    /// (cleared first). A negative timeout blocks indefinitely.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(out, timeout_ms),
            Poller::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

// ---------------------------------------------------------------- epoll

#[cfg(target_os = "linux")]
const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
const EPOLLIN: u32 = 0x1;
#[cfg(target_os = "linux")]
const EPOLLOUT: u32 = 0x4;
#[cfg(target_os = "linux")]
const EPOLLERR: u32 = 0x8;
#[cfg(target_os = "linux")]
const EPOLLHUP: u32 = 0x10;
#[cfg(target_os = "linux")]
const EPOLL_CLOEXEC: c_int = 0o2000000;

/// The kernel ABI packs `epoll_event` on x86-64 (and only there).
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
pub(crate) struct EpollPoller {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: if r { EPOLLIN } else { 0 } | if w { EPOLLOUT } else { 0 },
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(()); // EINTR: treat as a timeout tick
            }
            return Err(err);
        }
        for ev in &self.buf[..n as usize] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                // Errors and hangups surface as readability so the next
                // read observes the failure and the connection is reaped.
                readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

// ----------------------------------------------------------------- poll

#[repr(C)]
pub(crate) struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;
const POLLNVAL: i16 = 0x20;

pub(crate) struct PollPoller {
    /// fd → (token, read interest, write interest).
    fds: HashMap<RawFd, (u64, bool, bool)>,
    scratch: Vec<PollFd>,
    tokens: Vec<u64>,
}

impl PollPoller {
    fn new() -> Self {
        PollPoller {
            fds: HashMap::new(),
            scratch: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.scratch.clear();
        self.tokens.clear();
        for (&fd, &(token, r, w)) in &self.fds {
            self.scratch.push(PollFd {
                fd,
                events: if r { POLLIN } else { 0 } | if w { POLLOUT } else { 0 },
                revents: 0,
            });
            self.tokens.push(token);
        }
        let n = unsafe {
            poll(
                self.scratch.as_mut_ptr(),
                self.scratch.len() as c_ulong,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (pfd, &token) in self.scratch.iter().zip(&self.tokens) {
            let bits = pfd.revents;
            if bits == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: bits & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0,
                writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                hangup: bits & (POLLERR | POLLHUP | POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- waker

/// A self-pipe: worker threads write one byte to wake the event loop out
/// of its poller wait; the loop drains the pipe and processes whatever
/// the workers left in the completion list.
///
/// Both ends are non-blocking. A full pipe simply drops the wake byte —
/// harmless, because a full pipe already guarantees a pending wakeup.
pub(crate) struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// Raw fds are plain integers; concurrent one-byte writes are atomic.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    pub fn new() -> io::Result<Self> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                let err = io::Error::last_os_error();
                unsafe {
                    close(fds[0]);
                    close(fds[1]);
                }
                return Err(err);
            }
        }
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The readable end, for registration with the [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller (callable from any thread; never blocks).
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.write_fd, &byte as *const u8 as *const c_void, 1) };
    }

    /// Drains pending wake bytes (event-loop side).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::fd::AsRawFd;

    fn kinds() -> Vec<PollerKind> {
        #[cfg(target_os = "linux")]
        {
            vec![PollerKind::Epoll, PollerKind::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![PollerKind::Poll]
        }
    }

    #[test]
    fn wake_pipe_round_trips() {
        let w = WakePipe::new().unwrap();
        w.wake();
        w.wake();
        w.drain(); // must not block even after multiple wakes
        w.drain(); // and must not block when empty
    }

    #[test]
    fn both_backends_see_socket_readiness() {
        for kind in kinds() {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();

            let mut poller = Poller::new(kind).unwrap();
            poller
                .register(listener.as_raw_fd(), 7, true, false)
                .unwrap();

            // Nothing pending: a short wait returns no events.
            let mut events = Vec::new();
            poller.wait(&mut events, 10).unwrap();
            assert!(events.is_empty(), "{}: spurious event", kind.name());

            // A connection attempt makes the listener readable.
            let mut client = std::net::TcpStream::connect(addr).unwrap();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: accept readiness missed",
                kind.name()
            );
            let (mut peer, _) = listener.accept().unwrap();

            // The accepted socket is immediately writable.
            poller.register(peer.as_raw_fd(), 9, false, true).unwrap();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 9 && e.writable),
                "{}: write readiness missed",
                kind.name()
            );

            // Data from the client makes it readable after a modify.
            poller.modify(peer.as_raw_fd(), 9, true, false).unwrap();
            client.write_all(b"ping").unwrap();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 9 && e.readable),
                "{}: read readiness missed",
                kind.name()
            );
            let mut buf = [0u8; 8];
            peer.set_nonblocking(true).unwrap();
            assert_eq!(peer.read(&mut buf).unwrap(), 4);

            poller.deregister(peer.as_raw_fd()).unwrap();
            poller.deregister(listener.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn waker_interrupts_a_long_wait() {
        for kind in kinds() {
            let w = std::sync::Arc::new(WakePipe::new().unwrap());
            let mut poller = Poller::new(kind).unwrap();
            poller.register(w.read_fd(), 1, true, false).unwrap();

            let w2 = w.clone();
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                w2.wake();
            });
            let start = std::time::Instant::now();
            let mut events = Vec::new();
            // Without the wake this would block for 5 s.
            poller.wait(&mut events, 5000).unwrap();
            assert!(start.elapsed().as_secs() < 4, "{}: not woken", kind.name());
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
            w.drain();
            t.join().unwrap();
        }
    }
}
