//! Loopback tests of `POST /admin/reload-delta`: the edge answers `202`
//! and keeps serving while the reload rebuilds in the background, the
//! patched index is published to in-flight clients without reconnecting,
//! and the failure modes classify (missing handler → 404, missing
//! parameter → 400, stale delta → 409).

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ah_core::{AhIndex, BuildConfig};
use ah_graph::{WeightChange, WeightDelta};
use ah_net::{EdgeConfig, EdgeServer};
use ah_search::dijkstra_distance;
use ah_server::{DeltaReloader, ServerConfig, SnapshotBackend, SnapshotServer};
use ah_store::{Snapshot, SnapshotContents};

struct Client(ah_net::blocking::Client);

fn connect(addr: SocketAddr) -> Client {
    let mut inner = ah_net::blocking::Client::connect(addr).unwrap();
    inner
        .stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    Client(inner)
}

impl Client {
    fn get(&mut self, target: &str) -> (u16, Vec<u8>) {
        self.0
            .send(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let resp = self.0.recv().expect("read response");
        (resp.status, resp.body)
    }

    fn post(&mut self, target: &str) -> (u16, Vec<u8>) {
        self.0
            .send(
                format!("POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        let resp = self.0.recv().expect("read response");
        (resp.status, resp.body)
    }

    fn distance(&mut self, s: u32, t: u32) -> Option<u64> {
        let (status, body) = self.get(&format!("/v1/distance?src={s}&dst={t}"));
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        let text = String::from_utf8(body).unwrap();
        if text.contains("null") {
            return None;
        }
        let tail = text.split("\"distance\":").nth(1).expect("distance key");
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        Some(digits.parse().unwrap())
    }
}

fn delta_file(name: &str, g: &ah_graph::Graph, delta: &WeightDelta) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ah_admin_{name}_{}.snap", std::process::id()));
    Snapshot::write(&path, SnapshotContents::new().graph(g).delta(delta)).unwrap();
    path
}

#[test]
fn reload_endpoint_publishes_the_patched_index_mid_connection() {
    let g = ah_data::fixtures::lattice(6, 6, 10);
    let cfg = BuildConfig::default();
    let idx = Arc::new(AhIndex::build(&g, &cfg));
    let snap = Arc::new(SnapshotServer::new(idx, ServerConfig::with_workers(2)));
    let reloader = Arc::new(DeltaReloader::new(Arc::clone(&snap), g.clone(), cfg));
    reloader.register_into(snap.server().registry(), &[]);

    // Re-weight both arcs out of node 0 so every route from 0 changes.
    let delta = WeightDelta::new(
        &g,
        [WeightChange::new(0, 1, 97), WeightChange::new(0, 6, 97)],
    )
    .unwrap();
    let patched = delta.apply(&g).unwrap().graph;
    let path = delta_file("publish", &g, &delta);

    let edge = EdgeServer::bind("127.0.0.1:0", EdgeConfig::default()).unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let snap2 = Arc::clone(&snap);
        let rel2 = Arc::clone(&reloader);
        let serving = scope.spawn(move || {
            let backend = SnapshotBackend::new(&snap2);
            edge.serve_with_admin(snap2.server(), &backend, Some(&rel2))
        });

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut client = connect(addr);
        let before = client.distance(0, 35).expect("connected lattice");
        assert_eq!(
            Some(before),
            dijkstra_distance(&g, 0, 35).map(|d| d.length)
        );

        let (status, body) = client.post(&format!(
            "/admin/reload-delta?path={}",
            path.display()
        ));
        assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
        assert!(String::from_utf8_lossy(&body).contains("reloading"));

        // The same connection — no reconnect — observes the swap once
        // the background rebuild publishes.
        reloader.wait().expect("flight recorded").expect("reload ok");
        let after = client.distance(0, 35).expect("still connected");
        assert_eq!(
            Some(after),
            dijkstra_distance(&patched, 0, 35).map(|d| d.length)
        );
        assert_ne!(before, after, "the delta must move the answer");

        // Replaying the now-stale delta is refused with 409 and the
        // serving generation stays where it was.
        let (status, body) = client.post(&format!(
            "/admin/reload-delta?path={}",
            path.display()
        ));
        assert_eq!(status, 409, "{}", String::from_utf8_lossy(&body));
        assert_eq!(snap.generation(), 1);

        // Missing the path parameter is a client error, not a 500.
        let (status, _) = client.post("/admin/reload-delta");
        assert_eq!(status, 400);

        // The generation gauge flows into /metrics.
        let (status, body) = client.get("/metrics");
        assert_eq!(status, 200);
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("ah_index_generation 1"), "{text}");
        assert!(text.contains("ah_reload_swaps_total 1"), "{text}");
        }));

        handle.shutdown();
        let report = serving.join().expect("edge thread").expect("serve io");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
        let count = |code: u16| {
            report
                .responses_by_status
                .iter()
                .find(|(s, _)| *s == code)
                .map(|(_, n)| *n)
        };
        assert_eq!(count(202), Some(1));
        assert_eq!(count(409), Some(1));
    });
    std::fs::remove_file(&path).ok();
}

#[test]
fn reload_endpoint_is_404_without_a_handler_and_post_elsewhere_is_405() {
    let g = ah_data::fixtures::lattice(4, 4, 10);
    let cfg = BuildConfig::default();
    let idx = Arc::new(AhIndex::build(&g, &cfg));
    let snap = Arc::new(SnapshotServer::new(idx, ServerConfig::with_workers(1)));

    let edge = EdgeServer::bind("127.0.0.1:0", EdgeConfig::default()).unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let snap2 = Arc::clone(&snap);
        let serving = scope.spawn(move || {
            let backend = SnapshotBackend::new(&snap2);
            edge.serve(snap2.server(), &backend)
        });

        let outcome = std::panic::catch_unwind(|| {
            let mut client = connect(addr);
            let (status, _) = client.post("/admin/reload-delta?path=/nowhere");
            assert_eq!(status, 404, "no handler wired: the route must not exist");
            let (status, _) = client.post("/v1/distance?src=0&dst=1");
            assert_eq!(status, 405, "POST to a query route stays a method error");
        });

        handle.shutdown();
        serving.join().expect("edge thread").expect("serve io");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

#[test]
fn reload_with_an_unreadable_snapshot_is_a_client_error() {
    let g = ah_data::fixtures::lattice(4, 4, 10);
    let cfg = BuildConfig::default();
    let idx = Arc::new(AhIndex::build(&g, &cfg));
    let snap = Arc::new(SnapshotServer::new(idx, ServerConfig::with_workers(1)));
    let reloader = Arc::new(DeltaReloader::new(Arc::clone(&snap), g.clone(), cfg));

    let edge = EdgeServer::bind("127.0.0.1:0", EdgeConfig::default()).unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let snap2 = Arc::clone(&snap);
        let rel2 = Arc::clone(&reloader);
        let serving = scope.spawn(move || {
            let backend = SnapshotBackend::new(&snap2);
            edge.serve_with_admin(snap2.server(), &backend, Some(&rel2))
        });

        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut client = connect(addr);
            let (status, body) = client.post("/admin/reload-delta?path=/no/such/file.snap");
            assert_eq!(status, 400, "{}", String::from_utf8_lossy(&body));
            assert_eq!(snap.generation(), 0, "a failed reload must not publish");
        }));

        handle.shutdown();
        serving.join().expect("edge thread").expect("serve io");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}
