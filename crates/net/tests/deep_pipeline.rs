//! A pipelined backlog far deeper than `max_pipeline` must keep
//! flowing: flushes free slots, freed slots admit buffered requests,
//! with no dependence on further socket readability events.

use std::time::Duration;

use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{DijkstraBackend, Server, ServerConfig};

#[test]
fn deep_pipeline_never_stalls() {
    let g = ah_data::fixtures::ring(32);
    let backend = DijkstraBackend::new(&g);
    let server = Server::new(ServerConfig::with_workers(2));
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 2,
            max_pipeline: 8,
            // Short timeouts: a stall fails fast instead of hanging.
            read_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));
        let outcome = std::panic::catch_unwind(|| {
            let mut c = ah_net::blocking::Client::connect(addr).unwrap();
            let mut burst = String::new();
            const N: usize = 300;
            for i in 0..N {
                burst.push_str(&format!(
                    "GET /v1/distance?src={}&dst={} HTTP/1.1\r\n\r\n",
                    i % 32,
                    (i * 5 + 3) % 32
                ));
            }
            c.send(burst.as_bytes()).unwrap();
            for served in 0..N {
                let resp = c.recv().expect("pipelined response");
                assert_eq!(resp.status, 200, "resp {served}: {}", resp.text());
            }
        });
        handle.shutdown();
        let report = serving.join().unwrap().unwrap();
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
        assert_eq!(report.timeouts, 0, "no connection may stall");
        assert_eq!(
            report
                .responses_by_status
                .iter()
                .find(|&&(s, _)| s == 200)
                .unwrap()
                .1,
            300
        );
    });
}
