//! Loopback tests of the edge event loop over real sockets: protocol
//! conformance, pipelining, admission control (429), shutdown draining,
//! connection caps and timeouts — all against `127.0.0.1` with plain
//! blocking `TcpStream` clients.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use ah_net::{EdgeConfig, EdgeHandle, EdgeReport, EdgeServer, PollerKind};
use ah_server::{
    BackendSession, DijkstraBackend, DistanceBackend, Server, ServerConfig,
};

fn poller_kinds() -> Vec<PollerKind> {
    #[cfg(target_os = "linux")]
    {
        vec![PollerKind::Epoll, PollerKind::Poll]
    }
    #[cfg(not(target_os = "linux"))]
    {
        vec![PollerKind::Poll]
    }
}

/// Binds an edge, runs it on a scoped thread, hands `(addr, handle)` to
/// the client closure, then shuts down gracefully and returns the
/// report. Shutdown happens even when the client closure panics, so a
/// failing assertion fails the test instead of hanging the scope.
fn with_edge<F>(
    cfg: EdgeConfig,
    server_cfg: ServerConfig,
    backend: &dyn DistanceBackend,
    client: F,
) -> EdgeReport
where
    F: FnOnce(SocketAddr, &EdgeHandle),
{
    let server = Server::new(server_cfg);
    let edge = EdgeServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, backend));
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(addr, &handle)));
        handle.shutdown();
        let report = serving.join().expect("edge thread").expect("serve io");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
        report
    })
}

/// Thin adapter over [`ah_net::blocking::Client`] keeping the
/// `(status, headers-map, body)` shape these tests assert against.
struct Client(ah_net::blocking::Client);

fn connect(addr: SocketAddr) -> Client {
    let mut inner = ah_net::blocking::Client::connect(addr).unwrap();
    inner
        .stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    Client(inner)
}

impl Client {
    fn send(&mut self, raw: &[u8]) {
        self.0.send(raw).unwrap();
    }

    fn stream(&mut self) -> &mut TcpStream {
        self.0.stream()
    }

    /// Reads one HTTP response. Returns `(status, headers, body)`.
    fn recv(&mut self) -> (u16, HashMap<String, String>, Vec<u8>) {
        let resp = self.0.recv().expect("read response");
        (resp.status, resp.headers.into_iter().collect(), resp.body)
    }

    fn get(&mut self, target: &str) -> (u16, HashMap<String, String>, Vec<u8>) {
        self.send(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
        self.recv()
    }

    /// Asserts the server closes the connection without further data.
    fn expect_eof(&mut self) {
        assert!(self.0.read_eof().expect("clean EOF"), "expected clean EOF");
    }
}

#[test]
fn serves_distance_path_healthz_metrics_on_both_pollers() {
    let g = ah_data::fixtures::lattice(6, 6, 10);
    let backend = DijkstraBackend::new(&g);
    for kind in poller_kinds() {
        let cfg = EdgeConfig {
            workers: 2,
            poller: kind,
            ..Default::default()
        };
        let report = with_edge(cfg, ServerConfig::with_workers(2), &backend, |addr, handle| {
            assert!(!handle.is_stopping(), "fresh edge is not draining");
            let mut c = connect(addr);
            // Distance with a known answer.
            let want = ah_search::dijkstra_distance(&g, 0, 35).unwrap().length;
            let (status, _, body) = c.get("/v1/distance?src=0&dst=35");
            assert_eq!(status, 200);
            let body = String::from_utf8(body).unwrap();
            assert!(
                body.contains(&format!("\"distance\":{want}")),
                "{body} (want {want})"
            );
            // Path on the same keep-alive connection.
            let (status, _, body) = c.get("/v1/path?src=0&dst=35");
            assert_eq!(status, 200);
            assert!(String::from_utf8(body).unwrap().contains("\"hops\":"));
            // Unreachable → JSON null, still 200.
            let (status, _, body) = c.get("/v1/distance?src=0&dst=99999");
            assert_eq!(status, 200);
            assert!(String::from_utf8(body).unwrap().contains("\"distance\":null"));
            // Health and metrics.
            let (status, _, body) = c.get("/healthz");
            assert_eq!(status, 200);
            assert!(String::from_utf8(body).unwrap().contains("\"status\":\"ok\""));
            let (status, headers, body) = c.get("/metrics");
            assert_eq!(status, 200);
            assert!(headers["content-type"].starts_with("text/plain"));
            let text = String::from_utf8(body).unwrap();
            assert!(text.contains("ah_queue_capacity"), "{text}");
            assert!(text.contains("ah_server_queries_total"), "{text}");
            assert!(
                handle.metrics().total_responses() >= 5,
                "live metrics visible through the handle"
            );
        });
        assert_eq!(report.poller, kind.name());
        assert_eq!(report.connections, 1);
        assert!(report.responses_by_status.iter().any(|&(s, n)| s == 200 && n >= 5));
    }
}

#[test]
fn pipelined_requests_answer_in_order() {
    let g = ah_data::fixtures::ring(16);
    let backend = DijkstraBackend::new(&g);
    let cfg = EdgeConfig {
        workers: 3,
        ..Default::default()
    };
    with_edge(cfg, ServerConfig::with_workers(3), &backend, |addr, _| {
        let mut c = connect(addr);
        let mut burst = String::new();
        for i in 0..20u32 {
            burst.push_str(&format!(
                "GET /v1/distance?src={}&dst={} HTTP/1.1\r\n\r\n",
                i % 16,
                (i * 3 + 1) % 16
            ));
        }
        c.send(burst.as_bytes());
        for i in 0..20u32 {
            let (status, _, body) = c.recv();
            assert_eq!(status, 200);
            let body = String::from_utf8(body).unwrap();
            // Responses must come back in request order even though
            // three workers complete them out of order.
            assert!(
                body.starts_with(&format!("{{\"src\":{}", i % 16)),
                "response {i} out of order: {body}"
            );
            let want = ah_search::dijkstra_distance(&g, i % 16, (i * 3 + 1) % 16)
                .unwrap()
                .length;
            assert!(body.contains(&format!("\"distance\":{want}")), "{body}");
        }
    });
}

#[test]
fn protocol_errors_classify_400_431_404_405() {
    let g = ah_data::fixtures::ring(8);
    let backend = DijkstraBackend::new(&g);
    let cfg = EdgeConfig {
        // Small head cap so one write carries the whole oversized head
        // (keeps the 431 exchange free of transport races).
        limits: ah_net::http::HttpLimits {
            max_head_bytes: 512,
            ..Default::default()
        },
        ..Default::default()
    };
    with_edge(
        cfg,
        ServerConfig::with_workers(1),
        &backend,
        |addr, _| {
            // Malformed request line → 400, connection closed.
            let mut c = connect(addr);
            c.send(b"GARBAGE\r\n\r\n");
            let (status, headers, _) = c.recv();
            assert_eq!(status, 400);
            assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
            c.expect_eof();

            // Oversized head → 431, closed.
            let mut c = connect(addr);
            let mut big = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
            big.extend(vec![b'a'; 1024]);
            big.extend_from_slice(b"\r\n\r\n");
            c.send(&big);
            let (status, _, _) = c.recv();
            assert_eq!(status, 431);

            // Missing params → 400 but connection survives.
            let mut c = connect(addr);
            let (status, _, _) = c.get("/v1/distance?src=1");
            assert_eq!(status, 400);
            let (status, _, _) = c.get("/v1/distance?src=1&dst=notanumber");
            assert_eq!(status, 400);
            // Unknown path → 404; non-GET → 405; both keep the connection.
            let (status, _, _) = c.get("/v2/teleport?src=1&dst=2");
            assert_eq!(status, 404);
            c.send(b"POST /v1/distance HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi");
            let (status, _, _) = c.recv();
            assert_eq!(status, 405);
            // …and the connection still works afterwards.
            let (status, _, _) = c.get("/healthz");
            assert_eq!(status, 200);
        },
    );
}

/// A backend whose sessions block at a gate until the test opens it —
/// makes overload and drain behaviour deterministic.
struct GateBackend {
    nodes: usize,
    open: Mutex<bool>,
    open_cv: Condvar,
    entered: Mutex<usize>,
    entered_cv: Condvar,
}

impl GateBackend {
    fn new(nodes: usize) -> Self {
        GateBackend {
            nodes,
            open: Mutex::new(false),
            open_cv: Condvar::new(),
            entered: Mutex::new(0),
            entered_cv: Condvar::new(),
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.open_cv.notify_all();
    }

    /// Blocks until at least `n` queries have reached the gate.
    fn wait_for_entered(&self, n: usize) {
        let entered = self.entered.lock().unwrap();
        let _g = self
            .entered_cv
            .wait_timeout_while(entered, Duration::from_secs(10), |e| *e < n)
            .unwrap();
    }
}

struct GateSession<'a>(&'a GateBackend);

impl DistanceBackend for GateBackend {
    fn name(&self) -> &'static str {
        "Gate"
    }
    fn num_nodes(&self) -> usize {
        self.nodes
    }
    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(GateSession(self))
    }
}

impl BackendSession for GateSession<'_> {
    fn distance(&mut self, s: u32, t: u32) -> Option<u64> {
        {
            let mut entered = self.0.entered.lock().unwrap();
            *entered += 1;
            self.0.entered_cv.notify_all();
        }
        let open = self.0.open.lock().unwrap();
        let _g = self
            .0
            .open_cv
            .wait_timeout_while(open, Duration::from_secs(10), |o| !*o)
            .unwrap();
        Some(u64::from(s) * 1000 + u64::from(t))
    }
    fn path(&mut self, _s: u32, _t: u32) -> Option<ah_graph::Path> {
        None
    }
}

#[test]
fn overload_sheds_429_and_drains_accepted_requests_through_shutdown() {
    // Queue capacity 2, one worker blocked at the gate: of 8 requests,
    // exactly 1 (held by the worker) + 2 (queued) are accepted and the
    // other 5 are rejected with 429 — while shutdown, requested *before*
    // the gate opens, must still complete every accepted request.
    let backend = GateBackend::new(1000);
    let cfg = EdgeConfig {
        workers: 1,
        queue_capacity: 2,
        max_pipeline: 64,
        retry_after_secs: 7,
        ..Default::default()
    };
    let server_cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 0,
        batch_size: 1,
        ..Default::default()
    };
    let report = with_edge(cfg, server_cfg, &backend, |addr, handle| {
        let mut c = connect(addr);
        // First request reaches the gate → the worker holds it.
        c.send(b"GET /v1/distance?src=1&dst=2 HTTP/1.1\r\n\r\n");
        backend.wait_for_entered(1);
        // Seven more: 2 fill the queue, 5 must bounce with 429.
        let mut burst = String::new();
        for i in 2..9u32 {
            burst.push_str(&format!("GET /v1/distance?src={i}&dst=0 HTTP/1.1\r\n\r\n"));
        }
        c.send(burst.as_bytes());

        // Begin graceful shutdown while 3 accepted requests are still
        // unanswered; then open the gate. Drain ordering means all 3
        // must complete and flush before the edge exits.
        std::thread::sleep(Duration::from_millis(100)); // let the edge ingest the burst
        handle.shutdown();
        assert!(handle.is_stopping());
        backend.release();

        let mut statuses = Vec::new();
        let mut retry_after = None;
        for _ in 0..8 {
            let (status, headers, _) = c.recv();
            statuses.push(status);
            if status == 429 {
                retry_after = headers.get("retry-after").cloned();
            }
        }
        assert_eq!(
            statuses.iter().filter(|&&s| s == 200).count(),
            3,
            "1 in-worker + 2 queued accepted: {statuses:?}"
        );
        assert_eq!(
            statuses.iter().filter(|&&s| s == 429).count(),
            5,
            "the rest shed: {statuses:?}"
        );
        assert_eq!(retry_after.as_deref(), Some("7"), "Retry-After hint");
        // Responses stay in pipeline order: the three accepted ones are
        // requests 0..=2, so statuses must be sorted 200s-then-429s.
        assert_eq!(statuses, vec![200, 200, 200, 429, 429, 429, 429, 429]);
        // After the drain the edge closes the connection.
        c.expect_eof();
    });
    // The rejected count in the admission metrics matches what the
    // client observed, and memory stayed bounded by the queue capacity.
    assert_eq!(report.rejected, 5);
    assert!(report.queue_high_water <= 2, "{}", report.queue_high_water);
    assert_eq!(
        report
            .responses_by_status
            .iter()
            .find(|&&(s, _)| s == 429)
            .unwrap()
            .1,
        5
    );
}

#[test]
fn connection_cap_sheds_with_503() {
    let g = ah_data::fixtures::ring(8);
    let backend = DijkstraBackend::new(&g);
    let cfg = EdgeConfig {
        max_connections: 1,
        ..Default::default()
    };
    with_edge(cfg, ServerConfig::with_workers(1), &backend, |addr, _| {
        let mut c1 = connect(addr);
        let (status, _, _) = c1.get("/healthz");
        assert_eq!(status, 200); // c1 is established and counted
        let mut c2 = connect(addr);
        let (status, headers, _) = c2.recv();
        assert_eq!(status, 503);
        assert!(headers.contains_key("retry-after"));
        // c1 keeps working.
        let (status, _, _) = c1.get("/v1/distance?src=0&dst=3");
        assert_eq!(status, 200);
    });
}

#[test]
fn stalled_partial_request_gets_408_and_idle_connections_are_reaped() {
    let g = ah_data::fixtures::ring(8);
    let backend = DijkstraBackend::new(&g);
    let cfg = EdgeConfig {
        read_timeout: Duration::from_millis(120),
        idle_timeout: Duration::from_millis(250),
        ..Default::default()
    };
    with_edge(cfg, ServerConfig::with_workers(1), &backend, |addr, _| {
        // Half a request, then silence → 408 and close.
        let mut stalled = connect(addr);
        stalled.send(b"GET /v1/dist");
        let (status, _, _) = stalled.recv();
        assert_eq!(status, 408);
        stalled.expect_eof();

        // An idle keep-alive connection is closed silently.
        let mut idle = connect(addr);
        let (status, _, _) = idle.get("/healthz");
        assert_eq!(status, 200);
        idle.expect_eof();

        // A trickling client (one byte at a time, each under the
        // activity threshold) must NOT defeat the read timeout: the
        // clock runs from when the partial request started.
        let mut trickle = connect(addr);
        trickle
            .stream()
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let start = std::time::Instant::now();
        let mut got = Vec::new();
        let mut chunk = [0u8; 256];
        for _ in 0..80 {
            let _ = trickle.stream().write(b"G"); // may EPIPE once reaped
            match trickle.stream().read(&mut chunk) {
                Ok(n) if n > 0 => {
                    got.extend_from_slice(&chunk[..n]);
                    break;
                }
                _ => {}
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            got.starts_with(b"HTTP/1.1 408"),
            "no 408 while trickling: {:?}",
            String::from_utf8_lossy(&got)
        );
        assert!(
            start.elapsed() < Duration::from_millis(1000),
            "trickling deferred the read timeout: {:?}",
            start.elapsed()
        );
    });
}

#[test]
fn http10_and_connection_close_are_honoured() {
    let g = ah_data::fixtures::ring(8);
    let backend = DijkstraBackend::new(&g);
    with_edge(
        EdgeConfig::default(),
        ServerConfig::with_workers(1),
        &backend,
        |addr, _| {
            // HTTP/1.0 without keep-alive: answered then closed.
            let mut c = connect(addr);
            c.send(b"GET /v1/distance?src=0&dst=2 HTTP/1.0\r\n\r\n");
            let (status, headers, _) = c.recv();
            assert_eq!(status, 200);
            assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
            c.expect_eof();

            // Explicit Connection: close on 1.1.
            let mut c = connect(addr);
            c.send(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
            let (status, _, _) = c.recv();
            assert_eq!(status, 200);
            c.expect_eof();
        },
    );
}

/// A backend whose sessions always panic — the edge must fail fast
/// (503 the stranded request, drain, propagate the panic at join)
/// instead of hanging on a completion that will never arrive.
struct AlwaysPanicBackend;
struct AlwaysPanicSession;

impl DistanceBackend for AlwaysPanicBackend {
    fn name(&self) -> &'static str {
        "AlwaysPanic"
    }
    fn num_nodes(&self) -> usize {
        8
    }
    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(AlwaysPanicSession)
    }
}

impl BackendSession for AlwaysPanicSession {
    fn distance(&mut self, _s: u32, _t: u32) -> Option<u64> {
        panic!("injected backend bug");
    }
    fn path(&mut self, _s: u32, _t: u32) -> Option<ah_graph::Path> {
        panic!("injected backend bug");
    }
}

#[test]
fn worker_panic_fails_fast_with_503_instead_of_hanging() {
    let backend = AlwaysPanicBackend;
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 0,
        batch_size: 1,
        ..Default::default()
    });
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));
        let mut c = connect(addr);
        // Three pipelined requests: one reaches the panicking session,
        // the other two sit admitted behind it.
        c.send(
            b"GET /v1/distance?src=0&dst=1 HTTP/1.1\r\n\r\n\
              GET /v1/distance?src=1&dst=2 HTTP/1.1\r\n\r\n\
              GET /v1/distance?src=2&dst=3 HTTP/1.1\r\n\r\n",
        );
        // The stranded requests are answered with one 503 (its
        // `Connection: close` discards the rest of the pipeline), the
        // connection closes, and the worker's panic propagates out of
        // serve() — the test completing at all proves no hang.
        let (status, headers, _) = c.recv();
        assert_eq!(status, 503);
        assert_eq!(headers.get("connection").map(String::as_str), Some("close"));
        c.expect_eof();
        let err = serving.join();
        assert!(err.is_err(), "backend panic must propagate");
    });
}

#[test]
fn admin_shutdown_endpoint_drains_when_enabled() {
    let g = ah_data::fixtures::ring(8);
    let backend = DijkstraBackend::new(&g);

    // Disabled (default): 404.
    with_edge(
        EdgeConfig::default(),
        ServerConfig::with_workers(1),
        &backend,
        |addr, _| {
            let mut c = connect(addr);
            let (status, _, _) = c.get("/admin/shutdown");
            assert_eq!(status, 404);
        },
    );

    // Enabled: 200 + the serve loop exits without an external handle.
    let server = Server::new(ServerConfig::with_workers(1));
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            allow_shutdown: true,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    let report = std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));
        let mut c = connect(addr);
        let (status, _, body) = c.get("/admin/shutdown");
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("draining"));
        serving.join().unwrap().unwrap()
    });
    assert_eq!(report.connections, 1);
}
