//! Property-based fuzzing of the incremental HTTP parser (vendored
//! proptest): arbitrary byte soup, mutated/truncated real requests, and
//! split-across-reads delivery must never panic, never mis-frame, and
//! always classify errors as the right status (400 malformed / 431
//! oversized head / 413 oversized body).

use ah_net::http::{parse_request, HttpError, HttpLimits, ParseOutcome};
use proptest::prelude::*;

/// A pool of request templates — valid ones, borderline ones, and
/// broken ones — that mutation starts from.
const TEMPLATES: &[&[u8]] = &[
    b"GET /v1/distance?src=1&dst=2 HTTP/1.1\r\nHost: x\r\n\r\n",
    b"GET /v1/path?src=100&dst=2000 HTTP/1.1\r\nConnection: close\r\n\r\n",
    b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    b"GET / HTTP/1.1\r\n\r\n",
    b"POST /v1/distance HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody",
    b"GET /metrics HTTP/1.1\nHost: lf-only\n\n",
    b"GARBAGE\r\n\r\n",
    b"GET / HTTP/2.0\r\n\r\n",
    b"GET / HTTP/1.1\r\nBroken-Header\r\n\r\n",
    b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
    b"\xff\xfe\x00\x01\r\n\r\n",
];

/// Exhaustively checks the parser invariants on one input under the
/// given limits. Returns the outcome for further classification.
fn check_invariants(input: &[u8], limits: &HttpLimits) -> ParseOutcome {
    let out = parse_request(input, limits); // must not panic, ever
    match &out {
        ParseOutcome::Request(req) => {
            assert!(req.consumed <= input.len(), "consumed beyond input");
            assert!(req.consumed > 0, "a request cannot be zero bytes");
            assert!(!req.method.is_empty());
            assert!(req.target.starts_with('/'));
        }
        ParseOutcome::Error(e) => {
            assert!(
                matches!(e.status(), 400 | 413 | 431),
                "unexpected classification {}",
                e.status()
            );
        }
        ParseOutcome::Incomplete => {
            // An incomplete head may not exceed the cap (else it must
            // have been classified 431) unless a declared body is what
            // is still missing.
            if !input.is_empty() {
                assert!(
                    input.len() < limits.max_head_bytes + limits.max_body_bytes,
                    "unbounded buffering: {} bytes still Incomplete",
                    input.len()
                );
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary byte soup never panics and never classifies outside
    /// the 400/413/431 set.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        check_invariants(&bytes, &HttpLimits::default());
        // Tight limits hit the cap branches more often.
        check_invariants(
            &bytes,
            &HttpLimits { max_head_bytes: 32, max_body_bytes: 8, max_headers: 2 },
        );
    }

    /// Mutated templates (byte flips, truncation, duplication) never
    /// panic; full valid templates still parse.
    #[test]
    fn mutated_requests_never_panic(
        (tpl, cut, flip_at, flip_to, dup) in (
            0usize..TEMPLATES.len(),
            0usize..64,
            0usize..64,
            0u8..=255,
            0usize..3,
        )
    ) {
        let mut bytes = TEMPLATES[tpl].to_vec();
        if !bytes.is_empty() {
            let at = flip_at % bytes.len();
            bytes[at] = flip_to;
        }
        let cut = cut % (bytes.len() + 1);
        bytes.truncate(cut);
        for _ in 0..dup {
            let b2 = bytes.clone();
            bytes.extend_from_slice(&b2);
        }
        check_invariants(&bytes, &HttpLimits::default());
    }

    /// Split-across-reads delivery: feeding any prefix must yield
    /// Incomplete or an error — never a framed request before its last
    /// byte arrived — and the full buffer must parse exactly like the
    /// one-shot parse.
    #[test]
    fn truncation_is_prefix_stable(tpl in 0usize..TEMPLATES.len(), cut in 0usize..64) {
        let full = TEMPLATES[tpl];
        let limits = HttpLimits::default();
        let whole = check_invariants(full, &limits);
        let cut = cut % (full.len() + 1);
        match check_invariants(&full[..cut], &limits) {
            ParseOutcome::Request(req) => {
                // A complete parse from a prefix must be byte-identical
                // to the full parse (the request really ended there).
                match whole {
                    ParseOutcome::Request(w) => prop_assert_eq!(w.consumed, req.consumed),
                    other => panic!("prefix parsed but full input gave {other:?}"),
                }
            }
            ParseOutcome::Incomplete => {}
            ParseOutcome::Error(e) => {
                // Errors visible in a prefix must persist in the full
                // input (classification is stable as bytes arrive) —
                // except BodyTooLarge, which can only soften framing
                // errors… it cannot: assert stability outright.
                match check_invariants(full, &limits) {
                    ParseOutcome::Error(_) => {}
                    other => panic!("prefix errored {e:?} but full input gave {other:?}"),
                }
            }
        }
    }

    /// Pipelined streams of valid requests frame exactly: repeatedly
    /// parsing and draining consumes every request, and any split point
    /// mid-stream stays Incomplete until the boundary arrives.
    #[test]
    fn pipelined_framing_is_exact(
        picks in proptest::collection::vec(0usize..5, 1..6),
        split in 0usize..512,
    ) {
        // Only well-formed templates here (the first five are valid).
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for &p in &picks {
            stream.extend_from_slice(TEMPLATES[p]);
            boundaries.push(stream.len());
        }
        let limits = HttpLimits::default();

        // Whole-stream framing: each parse consumes exactly one
        // template.
        let mut off = 0;
        for (i, &end) in boundaries.iter().enumerate() {
            match parse_request(&stream[off..], &limits) {
                ParseOutcome::Request(req) => {
                    prop_assert_eq!(off + req.consumed, end, "request {} misframed", i);
                    off = end;
                }
                other => panic!("request {i} did not parse: {other:?}"),
            }
        }
        prop_assert_eq!(off, stream.len());

        // Split delivery: a prefix cut anywhere inside request k parses
        // requests 0..k fully and reports Incomplete for the tail.
        let split = split % (stream.len() + 1);
        let mut off = 0;
        loop {
            match parse_request(&stream[off..split], &limits) {
                ParseOutcome::Request(req) => {
                    let end = off + req.consumed;
                    prop_assert!(
                        boundaries.contains(&end),
                        "split parse ended at {} which is not a boundary",
                        end
                    );
                    off = end;
                }
                ParseOutcome::Incomplete => break,
                ParseOutcome::Error(e) => panic!("valid stream classified {e:?}"),
            }
            if off == split {
                break;
            }
        }
    }
}

/// Non-proptest spot checks of the exact classification table (the
/// fuzz cases above assert "no panic + sane class"; these pin the
/// specific statuses the edge documents in docs/EDGE.md).
#[test]
fn classification_table() {
    let limits = HttpLimits::default();
    let cases: &[(&[u8], u16)] = &[
        (b"BAD\rLINE\r\n\r\n", 400),
        (b"GET / HTTP/9.9\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nNo-Colon\r\n\r\n", 400),
        (b"POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n", 413),
    ];
    for (input, want) in cases {
        match parse_request(input, &limits) {
            ParseOutcome::Error(e) => assert_eq!(e.status(), *want, "{:?}", e),
            other => panic!("{:?} → {other:?}", String::from_utf8_lossy(input)),
        }
    }
    // 431 from the cap.
    let tight = HttpLimits {
        max_head_bytes: 40,
        ..Default::default()
    };
    assert!(matches!(
        parse_request(
            b"GET /a/very/long/path/exceeding/everything HTTP/1.1\r\n\r\n",
            &tight
        ),
        ParseOutcome::Error(HttpError::HeadersTooLarge)
    ));
}
