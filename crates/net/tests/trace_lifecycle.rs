//! End-to-end trace lifecycle over a loopback edge: with 1-in-1
//! sampling, every query answered 200 must leave a *complete* span
//! (all seven stages stamped, in monotonic order, totalling no more
//! than the observed wall clock), and `/debug/traces` must serve a
//! well-formed JSON document describing them.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{
    DijkstraBackend, Server, ServerConfig, SpanRecord, TraceConfig,
};

fn get(addr: SocketAddr, target: &str) -> (u16, Vec<u8>) {
    let mut c = ah_net::blocking::Client::connect(addr).unwrap();
    c.stream()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    c.send(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .unwrap();
    let resp = c.recv().expect("response");
    (resp.status, resp.body)
}

/// Minimal JSON well-formedness check (the workspace serde is an
/// offline stub): consumes one value, returns the rest of the input.
/// Panics on malformed input — that *is* the assertion.
fn json_value(s: &[u8]) -> &[u8] {
    let s = skip_ws(s);
    match s.first().expect("truncated JSON") {
        b'{' => json_delimited(&s[1..], b'}', |s| {
            let s = json_string(skip_ws(s));
            let s = skip_ws(s);
            assert_eq!(s.first(), Some(&b':'), "object needs key:value");
            json_value(&s[1..])
        }),
        b'[' => json_delimited(&s[1..], b']', json_value),
        b'"' => json_string(s),
        b't' => s.strip_prefix(b"true".as_slice()).expect("bad literal"),
        b'f' => s.strip_prefix(b"false".as_slice()).expect("bad literal"),
        b'n' => s.strip_prefix(b"null".as_slice()).expect("bad literal"),
        _ => {
            let end = s
                .iter()
                .position(|c| !c.is_ascii_digit() && !b"-+.eE".contains(c))
                .unwrap_or(s.len());
            assert!(end > 0, "expected a JSON value at {:?}", &s[..s.len().min(20)]);
            &s[end..]
        }
    }
}

fn json_delimited(mut s: &[u8], close: u8, item: impl Fn(&[u8]) -> &[u8]) -> &[u8] {
    s = skip_ws(s);
    if s.first() == Some(&close) {
        return &s[1..];
    }
    loop {
        s = skip_ws(item(s));
        match s.first() {
            Some(&b',') => s = &s[1..],
            Some(&c) if c == close => return &s[1..],
            other => panic!("expected ',' or close, got {other:?}"),
        }
    }
}

fn json_string(s: &[u8]) -> &[u8] {
    assert_eq!(s.first(), Some(&b'"'), "expected string");
    let mut i = 1;
    while s[i] != b'"' {
        i += if s[i] == b'\\' { 2 } else { 1 };
    }
    &s[i + 1..]
}

fn skip_ws(s: &[u8]) -> &[u8] {
    let n = s.iter().take_while(|c| c.is_ascii_whitespace()).count();
    &s[n..]
}

#[test]
fn every_200_traces_a_complete_monotonic_span_and_debug_traces_is_json() {
    let g = ah_data::fixtures::lattice(8, 8, 10);
    let backend = DijkstraBackend::new(&g);
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 1024,
        batch_size: 4,
        trace: TraceConfig {
            sample_every: 1, // trace everything
            ring_capacity: 1024,
            slow_threshold_ns: 0,
        },
        ..Default::default()
    });
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();

    const QUERIES: usize = 32;
    let t0 = Instant::now();
    let traces_body = std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));
        // Alternating distance and path queries, all in-bounds → 200.
        for i in 0..QUERIES {
            let (src, dst) = ((i % 64) as u32, ((i * 7 + 3) % 64) as u32);
            let path = if i % 2 == 0 { "distance" } else { "path" };
            let (status, _) = get(addr, &format!("/v1/{path}?src={src}&dst={dst}"));
            assert_eq!(status, 200, "query {i}");
        }
        let (status, body) = get(addr, "/debug/traces");
        assert_eq!(status, 200);
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let text = String::from_utf8(metrics).unwrap();
        // The unified registry exposes real histogram series for the
        // serving layers and the tracer's stage breakdown.
        for series in [
            "ah_server_query_latency_seconds_bucket",
            "ah_queue_wait_seconds_bucket",
            "ah_stage_duration_seconds_bucket",
            "ah_trace_spans_total",
            "ah_edge_responses_total{code=\"200\"}",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }
        handle.shutdown();
        serving.join().expect("edge thread").expect("serve io");
        body
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;

    // Every query was sampled, delivered, and flushed → finished spans.
    assert!(
        server.tracer().spans_finished() >= QUERIES as u64,
        "finished {} of {QUERIES}",
        server.tracer().spans_finished()
    );
    let completed: Vec<SpanRecord> = server
        .tracer()
        .recent()
        .into_iter()
        .filter(|r| r.status == 200)
        .collect();
    assert_eq!(completed.len(), QUERIES, "one 200 span per 200 response");
    for r in &completed {
        assert!(r.is_complete(), "missing stage stamps: {r:?}");
        assert!(r.is_monotonic(), "stages out of order: {r:?}");
        // Telescoping stage intervals can never exceed the wall clock
        // the client observed around the whole run.
        assert!(
            r.total_ns() <= wall_ns,
            "span total {} > wall {wall_ns}: {r:?}",
            r.total_ns()
        );
    }

    // The /debug/traces document is one well-formed JSON object with
    // the expected top-level fields and per-span stage maps.
    let rest = json_value(&traces_body);
    assert!(skip_ws(rest).is_empty(), "trailing bytes after JSON");
    let text = String::from_utf8(traces_body).unwrap();
    assert!(text.starts_with("{\"sample_every\":1"), "{text}");
    assert!(text.contains("\"spans\":["), "{text}");
    assert!(text.contains("\"stages\":{\"parse\":"), "{text}");
    assert!(text.contains("\"complete\":true"), "{text}");
}
