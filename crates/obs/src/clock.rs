//! Process-wide monotonic clock for stage stamps.
//!
//! All span timestamps are nanoseconds since one lazily-initialised
//! process epoch, so stamps taken on different threads compare
//! directly and fit in a `u64` (580+ years of range). A raw
//! `Instant` cannot be stored in a fixed-size lock-free record;
//! epoch-relative nanoseconds can.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (first call
/// returns 0 and pins the epoch). Span stamps store `now_ns().max(1)`
/// so that 0 can mean "stage never reached".
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_across_threads() {
        let t0 = now_ns();
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(now_ns))
            .collect();
        for h in handles {
            assert!(h.join().unwrap() >= t0);
        }
        assert!(now_ns() >= t0);
    }
}
