//! Algorithmic cost accounting — measure the work, not just the clock.
//!
//! The paper evaluates methods by *search-space size* (vertices visited
//! per query), not only by wall time; a pruning regression that doubles
//! the search space can hide inside latency noise for a long time.
//! [`CostCounters`] is the plain, allocation-free tally every query
//! kernel fills in as it runs: the Dijkstra drivers count settles /
//! relaxations / heap pops, the label merge counts entries scanned, the
//! sharded composition counts shard hops and boundary-matrix lookups,
//! and the serving layer adds cache probes and bytes written.
//!
//! The struct deliberately holds plain `u64`s, not atomics: each kernel
//! owns its accumulator and drains it per query with
//! [`CostCounters::take`]; aggregation into shared atomic counters (the
//! `ah_query_*` registry families) happens once per request at the
//! serving layer, so the per-edge hot path pays only a local integer
//! increment.

/// Number of cost fields — the layout contract shared with
/// [`CostCounters::as_array`] and the span-ring word layout.
pub const NUM_COST_FIELDS: usize = 9;

/// Field names, index-aligned with [`CostCounters::as_array`]. Used for
/// JSON keys; the Prometheus families are `ah_query_<name>` (e.g.
/// `ah_query_settled_nodes`).
pub const COST_FIELD_NAMES: [&str; NUM_COST_FIELDS] = [
    "settled_nodes",
    "relaxed_edges",
    "heap_pops",
    "label_entries_merged",
    "cache_probes",
    "cache_hits",
    "shard_hops",
    "boundary_lookups",
    "bytes_out",
];

/// Per-query algorithmic cost tally. All fields count *work done*, so
/// every field is monotone within a query and `merge` is plain
/// addition.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CostCounters {
    /// Nodes settled (popped with a final distance) across every
    /// Dijkstra-family search the query ran — the paper's search-space
    /// metric. Label-only queries report 0.
    pub nodes_settled: u64,
    /// Arcs relaxed (distance comparisons against a neighbor).
    pub edges_relaxed: u64,
    /// Priority-queue pops, including stale entries that were skipped
    /// without settling — `heap_pops >= nodes_settled` always.
    pub heap_pops: u64,
    /// Hub-label entries examined by two-pointer merges and bucket
    /// sweeps (the labels backend's analogue of the search space).
    pub label_entries_merged: u64,
    /// Distance-cache probes issued by the serving layer.
    pub cache_probes: u64,
    /// Distance-cache probes that hit.
    pub cache_hits: u64,
    /// Distinct shards a sharded query consulted.
    pub shard_hops: u64,
    /// Border-to-border boundary-matrix cells read while composing a
    /// cross-shard (or reentrant same-shard) answer.
    pub boundary_lookups: u64,
    /// Response-body bytes written for this query (stamped at the edge
    /// once the body is rendered).
    pub bytes_out: u64,
}

impl CostCounters {
    /// A zeroed tally.
    pub const fn new() -> Self {
        CostCounters {
            nodes_settled: 0,
            edges_relaxed: 0,
            heap_pops: 0,
            label_entries_merged: 0,
            cache_probes: 0,
            cache_hits: 0,
            shard_hops: 0,
            boundary_lookups: 0,
            bytes_out: 0,
        }
    }

    /// Adds `other` into `self` field by field (saturating, so merging
    /// sentinel-poisoned tallies cannot wrap).
    pub fn merge(&mut self, other: &CostCounters) {
        let mut a = self.as_array();
        let b = other.as_array();
        for (x, y) in a.iter_mut().zip(b) {
            *x = x.saturating_add(y);
        }
        *self = Self::from_array(a);
    }

    /// Drains the tally: returns the current counts and resets `self`
    /// to zero. This is the per-query handoff every kernel exposes as
    /// `take_cost`.
    pub fn take(&mut self) -> CostCounters {
        std::mem::take(self)
    }

    /// The fields as a fixed array, index-aligned with
    /// [`COST_FIELD_NAMES`] — the layout the span ring serializes and
    /// the registry loops over.
    pub fn as_array(&self) -> [u64; NUM_COST_FIELDS] {
        [
            self.nodes_settled,
            self.edges_relaxed,
            self.heap_pops,
            self.label_entries_merged,
            self.cache_probes,
            self.cache_hits,
            self.shard_hops,
            self.boundary_lookups,
            self.bytes_out,
        ]
    }

    /// Inverse of [`CostCounters::as_array`].
    pub fn from_array(a: [u64; NUM_COST_FIELDS]) -> Self {
        CostCounters {
            nodes_settled: a[0],
            edges_relaxed: a[1],
            heap_pops: a[2],
            label_entries_merged: a[3],
            cache_probes: a[4],
            cache_hits: a[5],
            shard_hops: a[6],
            boundary_lookups: a[7],
            bytes_out: a[8],
        }
    }

    /// True when every field is zero (nothing was counted).
    pub fn is_zero(&self) -> bool {
        self.as_array().iter().all(|&v| v == 0)
    }

    /// Renders the tally as a JSON object with [`COST_FIELD_NAMES`]
    /// keys — the shape `/debug/traces` and the BENCH reports share.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push('{');
        for (i, (name, v)) in COST_FIELD_NAMES.iter().zip(self.as_array()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_round_trip_covers_every_field() {
        let a: [u64; NUM_COST_FIELDS] = std::array::from_fn(|i| (i as u64 + 1) * 10);
        let c = CostCounters::from_array(a);
        assert_eq!(c.as_array(), a);
        assert_eq!(c.nodes_settled, 10);
        assert_eq!(c.bytes_out, 90);
        assert!(!c.is_zero());
        assert!(CostCounters::default().is_zero());
    }

    #[test]
    fn merge_adds_and_saturates() {
        let mut a = CostCounters {
            nodes_settled: 3,
            heap_pops: u64::MAX - 1,
            ..Default::default()
        };
        let b = CostCounters {
            nodes_settled: 4,
            heap_pops: 10,
            label_entries_merged: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_settled, 7);
        assert_eq!(a.heap_pops, u64::MAX, "saturating, never wrapping");
        assert_eq!(a.label_entries_merged, 7);
    }

    #[test]
    fn take_drains_the_tally() {
        let mut c = CostCounters {
            edges_relaxed: 5,
            ..Default::default()
        };
        let got = c.take();
        assert_eq!(got.edges_relaxed, 5);
        assert!(c.is_zero(), "drained after take");
    }

    #[test]
    fn json_lists_every_field_once() {
        let c = CostCounters {
            nodes_settled: 1,
            bytes_out: 2,
            ..Default::default()
        };
        let j = c.to_json();
        for name in COST_FIELD_NAMES {
            assert_eq!(j.matches(name).count(), 1, "{name} in {j}");
        }
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"settled_nodes\":1"));
        assert!(j.contains("\"bytes_out\":2"));
    }
}
