//! `ah_obs` — the observability substrate for the serving stack.
//!
//! Dependency-free tracing + metrics, shared by the HTTP edge
//! (`ah_net`), the worker pool (`ah_server`), and the sharded lanes:
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: lock-free primitives
//!   (relaxed atomics, no per-observation allocation). The histogram is
//!   the log₂-bucket latency histogram the serving layer has always
//!   used, now with *documented, property-tested* bucket boundaries
//!   ([`Histogram::bucket_of`] / [`Histogram::bucket_le_ns`]) so
//!   per-lane instances can be merged and rendered without guessing.
//! - [`Registry`]: named metric families with static labels
//!   (`backend`, `shard`, `endpoint`, `status`, …), rendered once as
//!   Prometheus text — including real `_bucket`/`le` series derived
//!   from the histogram buckets.
//! - [`Tracer`] / [`Span`]: deterministic 1-in-N sampled request
//!   traces. Each sampled request carries a fixed-size [`SpanRecord`]
//!   with monotonic stage timestamps (parse → enqueue → dequeue →
//!   cache probe → compute → serialize → flush) stamped from one
//!   process-wide monotonic epoch ([`now_ns`]). Finished spans land in
//!   a lock-free seqlock ring ([`SpanRing`]) feeding the
//!   `/debug/traces` endpoint and a threshold-gated slow-query log;
//!   per-stage durations feed `ah_stage_duration_seconds` histograms
//!   in the registry.
//! - [`CostCounters`]: per-query *algorithmic* cost tallies (nodes
//!   settled, edges relaxed, label entries merged, shard hops, …) that
//!   the search kernels fill in and the serving layer aggregates into
//!   `ah_query_*` families — the paper's search-space metric made
//!   observable in production.
//! - [`SloWindows`] / [`SloPolicy`]: a lock-free ring of per-second
//!   aggregate slots (request/error counts + latency histograms)
//!   evaluated with multi-window burn rates against latency and
//!   error-budget objectives, feeding `/debug/slo` and the `/readyz`
//!   degradation decision.
//!
//! See `docs/OBSERVABILITY.md` for the metric-name catalog, label
//! schema, trace record layout, and sampling/overhead guidance.

mod clock;
mod cost;
mod metrics;
mod registry;
mod slo;
mod trace;

pub use clock::now_ns;
pub use cost::{CostCounters, COST_FIELD_NAMES, NUM_COST_FIELDS};
pub use metrics::{Counter, Gauge, Histogram, BUCKETS};
pub use registry::{Metric, Registry};
pub use slo::{SloPolicy, SloStatus, SloWindows, WindowStats};
pub use trace::{
    Span, SpanRecord, SpanRing, Stage, TraceConfig, Tracer, INTERVAL_NAMES, NUM_STAGES,
    STAGE_NAMES,
};
