//! Lock-free metric primitives: counter, gauge, log₂ histogram.
//!
//! All three are plain structs over relaxed atomics — safe to share by
//! `Arc` or reference across the worker pool, no locks on the hot
//! path, no per-observation allocation. The histogram's bucket layout
//! is a *documented contract* (see [`Histogram::bucket_of`] /
//! [`Histogram::bucket_le_ns`]), property-tested in
//! `tests/properties.rs`, because the Prometheus `_bucket` series and
//! cross-lane merges both depend on every instance agreeing on it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ histogram buckets: covers 1 ns … `u64::MAX` ns
/// (580+ years), so no observation is ever out of range.
pub const BUCKETS: usize = 64;

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Exists for *mirror* counters that
    /// re-expose a total owned by another subsystem (e.g. the queue's
    /// own rejected count) — prefer [`Counter::add`] everywhere else.
    pub fn store(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }
}

/// A point-in-time gauge (set, not accumulated).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raises the value to `n` if larger (high-water marks).
    #[inline]
    pub fn set_max(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket, lock-free histogram over nanoseconds.
///
/// Bucket `b` holds observations in `[2^b, 2^(b+1))` nanoseconds,
/// except bucket 0 which also absorbs 0 ns (so `bucket_of(0) ==
/// bucket_of(1) == 0`) and bucket 63 which absorbs everything from
/// `2^63` up to `u64::MAX` inclusive. Quantiles are read off the
/// cumulative bucket counts at each bucket's geometric midpoint; the
/// log₂ bucketing bounds the relative error of any reported quantile
/// by 2×, which is plenty to compare backends and thread counts.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The bucket an observation of `ns` nanoseconds lands in:
    /// `⌊log₂ ns⌋`, with 0 and 1 ns both in bucket 0. In particular
    /// every power of two `2^k` lands exactly in bucket `k` — the
    /// lower *inclusive* edge of its bucket (property-tested).
    #[inline]
    pub fn bucket_of(ns: u64) -> usize {
        (64 - ns.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Inclusive upper bound of bucket `b` in nanoseconds — the value
    /// rendered as the Prometheus `le` boundary. `2^(b+1) - 1` for
    /// `b < 63`; the last bucket saturates to `u64::MAX` (computing
    /// `2^64 - 1` naively would overflow — this was the historical
    /// edge-behavior bug this API exists to pin down).
    #[inline]
    pub fn bucket_le_ns(b: usize) -> u64 {
        assert!(b < BUCKETS, "bucket index {b} out of range");
        if b >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (b + 1)) - 1
        }
    }

    /// Records one observation (relaxed atomics; callable from any thread).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts (relaxed reads — buckets
    /// recorded concurrently may or may not be visible, each at most
    /// once).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|b| self.counts[b].load(Ordering::Relaxed))
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// geometric midpoint of the first bucket whose cumulative count
    /// reaches `q · total`. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                // Bucket b spans [2^b, 2^(b+1)); report its geometric mean.
                let lo = (1u64 << b) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }

    /// Clears every bucket and the running totals (relaxed stores).
    /// Not linearizable against concurrent [`Histogram::record_ns`]
    /// calls — an observation racing the reset may land partially and
    /// be dropped. Exists for windowed per-second slots
    /// ([`crate::SloWindows`]) where best-effort zeroing at a second
    /// boundary is acceptable; lifetime metrics never reset.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total_ns.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    /// Merges another histogram's counts into this one, bucket by
    /// bucket — lossless because every instance shares the same fixed
    /// bucket layout (this is what lets per-lane/per-worker histograms
    /// aggregate without losing fidelity).
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.total_ns
            .fetch_add(other.total_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.store(2);
        assert_eq!(c.get(), 2);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_saturate_without_overflow() {
        assert_eq!(Histogram::bucket_le_ns(0), 1);
        assert_eq!(Histogram::bucket_le_ns(1), 3);
        assert_eq!(Histogram::bucket_le_ns(10), 2047);
        // The last bucket's bound must saturate, not wrap: 2^64 - 1
        // is not representable via 1 << 64.
        assert_eq!(Histogram::bucket_le_ns(62), (1u64 << 63) - 1);
        assert_eq!(Histogram::bucket_le_ns(63), u64::MAX);
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = Histogram::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        // Median observation is 300 ns → bucket (256, 512]; within 2×.
        assert!(p50 >= 150.0 && p50 <= 600.0, "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 5_000.0 && p99 <= 20_000.0, "p99 = {p99}");
        assert!((h.mean_ns() - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ns(0.5), 0.0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.total_ns(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_ns(100);
        b.record_ns(1000);
        b.record_ns(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean_ns() - 3100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 1..=1000u64 {
                        h.record_ns(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4000);
    }
}
