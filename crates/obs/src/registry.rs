//! A named-metric registry with one Prometheus-text renderer.
//!
//! Every serving layer registers its counters/gauges/histograms here
//! under stable names with static labels (`backend`, `shard`,
//! `endpoint`, `status`, …); `/metrics` becomes a single
//! [`Registry::render`] call instead of each layer hand-formatting its
//! own block. Histograms render as real cumulative `_bucket{le=…}`
//! series (boundaries in **seconds**, from
//! [`Histogram::bucket_le_ns`]) plus `_sum`/`_count`, so quantiles can
//! be computed server-side by any Prometheus-compatible scraper.
//!
//! Registration is rare (startup / run setup) and rendering is
//! debug-path, so the registry itself is a plain `Mutex<Vec<…>>`;
//! the *metrics* stay lock-free — the registry only holds `Arc`s to
//! them.

use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

/// A handle to one registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Point-in-time gauge.
    Gauge(Arc<Gauge>),
    /// Log₂ nanosecond histogram (rendered in seconds).
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// Named metric families, rendered as Prometheus text.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name` + `labels`,
    /// creating (and registering) it on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, labels, help, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {other:?}, wanted counter"),
        }
    }

    /// Returns the gauge registered under `name` + `labels`, creating
    /// it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, help, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {other:?}, wanted gauge"),
        }
    }

    /// Returns the histogram registered under `name` + `labels`,
    /// creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, help, || Metric::Histogram(Arc::default())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {other:?}, wanted histogram"),
        }
    }

    /// Attaches an *existing* metric under `name` + `labels`,
    /// replacing any previous registration of the same series. This is
    /// how a layer that owns its own `Arc<Counter>` (e.g. the edge
    /// loop's byte counters, or a per-run `ServerMetrics`) exposes it
    /// without double-counting across re-registrations.
    pub fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, metric: Metric) {
        let labels = owned_labels(labels);
        let mut fams = self.families.lock().unwrap();
        if let Some(f) = fams
            .iter_mut()
            .find(|f| f.name == name && f.labels == labels)
        {
            f.metric = metric;
            f.help = help.to_string();
        } else {
            fams.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                labels,
                metric,
            });
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let labels = owned_labels(labels);
        let mut fams = self.families.lock().unwrap();
        if let Some(f) = fams
            .iter()
            .find(|f| f.name == name && f.labels == labels)
        {
            return f.metric.clone();
        }
        let metric = make();
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            metric: metric.clone(),
        });
        metric
    }

    /// Renders every registered family as Prometheus text exposition:
    /// `# HELP`/`# TYPE` once per metric name (first-registration
    /// order), then one series line per label set. Histogram families
    /// expand into cumulative `_bucket{le="<seconds>"}` lines up to the
    /// highest occupied bucket, a `+Inf` bucket, `_sum` (seconds) and
    /// `_count` — an empty histogram still renders its `+Inf` bucket
    /// so scrapers always see the series.
    pub fn render(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::with_capacity(4096);
        let mut seen: Vec<&str> = Vec::new();
        for f in fams.iter() {
            if seen.contains(&f.name.as_str()) {
                continue;
            }
            seen.push(&f.name);
            let kind = match &f.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if !f.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            }
            out.push_str(&format!("# TYPE {} {}\n", f.name, kind));
            for g in fams.iter().filter(|g| g.name == f.name) {
                render_series(&mut out, g);
            }
        }
        out
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn render_series(out: &mut String, f: &Family) {
    match &f.metric {
        Metric::Counter(c) => {
            out.push_str(&format!("{}{} {}\n", f.name, fmt_labels(&f.labels, None), c.get()));
        }
        Metric::Gauge(g) => {
            out.push_str(&format!("{}{} {}\n", f.name, fmt_labels(&f.labels, None), g.get()));
        }
        Metric::Histogram(h) => {
            let counts = h.bucket_counts();
            let last = counts.iter().rposition(|&c| c > 0);
            let mut cum = 0u64;
            if let Some(last) = last {
                for (b, &c) in counts.iter().enumerate().take(last + 1) {
                    cum += c;
                    let le = format!("{}", Histogram::bucket_le_ns(b) as f64 / 1e9);
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        f.name,
                        fmt_labels(&f.labels, Some(("le", &le))),
                        cum
                    ));
                }
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                f.name,
                fmt_labels(&f.labels, Some(("le", "+Inf"))),
                cum
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                f.name,
                fmt_labels(&f.labels, None),
                h.total_ns() as f64 / 1e9
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                f.name,
                fmt_labels(&f.labels, None),
                h.count()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_metric() {
        let r = Registry::new();
        let a = r.counter("ah_test_total", &[("shard", "0")], "help");
        let b = r.counter("ah_test_total", &[("shard", "0")], "help");
        let c = r.counter("ah_test_total", &[("shard", "1")], "help");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(c.get(), 0);
        let text = r.render();
        assert!(text.contains("ah_test_total{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("ah_test_total{shard=\"1\"} 0"), "{text}");
        // HELP/TYPE appear once for the whole family.
        assert_eq!(text.matches("# TYPE ah_test_total counter").count(), 1);
    }

    #[test]
    fn register_replaces_same_series() {
        let r = Registry::new();
        let old = Arc::new(Counter::new());
        old.add(5);
        r.register("ah_x_total", &[], "x", Metric::Counter(old));
        let new = Arc::new(Counter::new());
        new.add(7);
        r.register("ah_x_total", &[], "x", Metric::Counter(new));
        let text = r.render();
        assert!(text.contains("ah_x_total 7"), "{text}");
        assert!(!text.contains("ah_x_total 5"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets_in_seconds() {
        let r = Registry::new();
        let h = r.histogram("ah_lat_seconds", &[("backend", "AH")], "latency");
        h.record_ns(1); // bucket 0, le 1e-9
        h.record_ns(3); // bucket 1, le 3e-9
        h.record_ns(3);
        let text = r.render();
        assert!(text.contains("# TYPE ah_lat_seconds histogram"), "{text}");
        assert!(
            text.contains("ah_lat_seconds_bucket{backend=\"AH\",le=\"0.000000001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("ah_lat_seconds_bucket{backend=\"AH\",le=\"0.000000003\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("ah_lat_seconds_bucket{backend=\"AH\",le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("ah_lat_seconds_count{backend=\"AH\"} 3"), "{text}");
        assert!(text.contains("ah_lat_seconds_sum{backend=\"AH\"} 0.000000007"), "{text}");
    }

    #[test]
    fn help_and_type_emit_once_per_family_across_call_sites() {
        // The invariant the Prometheus exposition format demands: a
        // family registered under many label sets — by *different call
        // sites, interleaved with other families* (exactly how the
        // edge, the lanes, and the tracer all land in one registry) —
        // renders one # HELP and one # TYPE line, with every series of
        // the family grouped contiguously under them.
        let r = Registry::new();
        // Call site 1: the "edge" registers shard 0 series.
        r.counter("ah_multi_total", &[("shard", "0")], "multi help").inc();
        r.histogram("ah_multi_seconds", &[("shard", "0")], "hist help");
        // Call site 2: an unrelated family lands in between.
        r.gauge("ah_other_gauge", &[], "other").set(3);
        // Call site 3: a "lane" registers more label sets of the same
        // families, including via the replace path.
        r.counter("ah_multi_total", &[("shard", "1")], "multi help");
        r.register(
            "ah_multi_total",
            &[("shard", "2"), ("backend", "AH")],
            "multi help",
            Metric::Counter(Arc::new(Counter::new())),
        );
        r.histogram("ah_multi_seconds", &[("shard", "1")], "hist help");

        let text = r.render();
        for family in ["ah_multi_total", "ah_multi_seconds", "ah_other_gauge"] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} ")).count(),
                1,
                "TYPE for {family} must appear exactly once:\n{text}"
            );
            assert_eq!(
                text.matches(&format!("# HELP {family} ")).count(),
                1,
                "HELP for {family} must appear exactly once:\n{text}"
            );
        }
        // All three label sets rendered under the one header…
        assert!(text.contains("ah_multi_total{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("ah_multi_total{shard=\"1\"} 0"), "{text}");
        assert!(
            text.contains("ah_multi_total{shard=\"2\",backend=\"AH\"} 0"),
            "{text}"
        );
        // …and grouped contiguously: no series line of another family
        // may sit between a family's TYPE line and its last series.
        let type_pos = text.find("# TYPE ah_multi_total").unwrap();
        let last_series = text.rfind("ah_multi_total{").unwrap();
        let between = &text[type_pos..last_series];
        assert!(
            !between.contains("ah_other_gauge") && !between.contains("ah_multi_seconds"),
            "family block interleaved with another family:\n{text}"
        );
    }

    #[test]
    fn empty_histogram_still_renders_inf_bucket() {
        let r = Registry::new();
        r.histogram("ah_empty_seconds", &[], "");
        let text = r.render();
        assert!(text.contains("ah_empty_seconds_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("ah_empty_seconds_count 0"), "{text}");
    }
}
