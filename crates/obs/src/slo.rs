//! Rolling per-second windows and multi-window burn-rate SLO
//! evaluation.
//!
//! [`SloWindows`] is a lock-free ring of per-second aggregate slots:
//! each slot carries the request count, error count, and a full
//! log₂-bucket latency [`Histogram`] for one wall-clock second. Writers
//! tag the slot for the current second and reset it lazily when the
//! ring wraps onto a stale second, so recording stays O(1) with no
//! background thread. Readers merge the last *W* tagged slots into one
//! [`WindowStats`] — that is what makes the same ring answer both the
//! fast (seconds) and slow (minutes) windows of a classic
//! multi-window, multi-burn-rate SLO policy.
//!
//! [`SloPolicy`] holds the objectives (a p99 latency target and an
//! error budget) and evaluates them over a fast and a slow window. The
//! *burn rate* is the observed error rate divided by the budget: a
//! burn rate of 1 spends the budget exactly at the sustainable pace,
//! `x > 1` exhausts it `x`× faster. Readiness (`/readyz`) keys off the
//! **fast** window so a sudden regression degrades within seconds and
//! recovery is equally quick once the bad second ages out of the
//! window; the slow window rides along in `/debug/slo` for trend
//! context. See `docs/OBSERVABILITY.md` for the full model.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Histogram;

const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Ring capacity in seconds. Must exceed the largest window anyone
/// evaluates (the default slow window is 60 s); 128 leaves headroom
/// and makes the modulo cheap.
const RING_SECONDS: usize = 128;

/// One per-second aggregate slot.
struct Slot {
    /// Wall-clock second this slot currently describes
    /// (`u64::MAX` = never written).
    second: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Histogram,
}

impl Slot {
    fn new() -> Self {
        Slot {
            second: AtomicU64::new(u64::MAX),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }
}

/// A lock-free ring of per-second aggregate slots — the substrate for
/// windowed QPS / error-rate / quantile queries.
///
/// Timestamps are caller-provided nanoseconds from one monotonic epoch
/// (use [`crate::now_ns`]); only their *second* matters. Observations
/// racing a slot reset exactly at a second boundary are counted
/// best-effort — a handful may be dropped per wrap, which is
/// irrelevant at the rates the windows summarize and keeps recording
/// free of locks and allocation.
pub struct SloWindows {
    slots: Box<[Slot]>,
}

impl Default for SloWindows {
    fn default() -> Self {
        Self::new()
    }
}

impl SloWindows {
    /// Creates an empty ring covering `RING_SECONDS` (128) seconds.
    pub fn new() -> Self {
        SloWindows {
            slots: (0..RING_SECONDS).map(|_| Slot::new()).collect(),
        }
    }

    fn slot_for(&self, sec: u64) -> &Slot {
        &self.slots[(sec as usize) % self.slots.len()]
    }

    /// Claims the slot for `sec`, lazily resetting it if the ring
    /// wrapped onto a stale second. The CAS winner does the zeroing;
    /// losers proceed and record into the (now-current) slot.
    fn claim(&self, sec: u64) -> &Slot {
        let slot = self.slot_for(sec);
        let tag = slot.second.load(Ordering::Acquire);
        if tag != sec
            && slot
                .second
                .compare_exchange(tag, sec, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            slot.requests.store(0, Ordering::Relaxed);
            slot.errors.store(0, Ordering::Relaxed);
            slot.latency.reset();
        }
        slot
    }

    /// Records one served request: its latency and whether it was an
    /// error (any non-2xx answer, including admission rejections).
    pub fn record(&self, now_ns: u64, latency_ns: u64, error: bool) {
        let slot = self.claim(now_ns / NANOS_PER_SEC);
        slot.requests.fetch_add(1, Ordering::Relaxed);
        if error {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency.record_ns(latency_ns);
    }

    /// Aggregates the last `window_secs` seconds (ending at and
    /// including the second of `now_ns`) into one [`WindowStats`].
    /// Windows longer than the ring are clamped to the ring.
    pub fn stats(&self, now_ns: u64, window_secs: u64) -> WindowStats {
        let window_secs = window_secs.clamp(1, self.slots.len() as u64);
        let now_sec = now_ns / NANOS_PER_SEC;
        let first = now_sec.saturating_sub(window_secs - 1);
        let merged = Histogram::new();
        let mut requests = 0u64;
        let mut errors = 0u64;
        for sec in first..=now_sec {
            let slot = self.slot_for(sec);
            if slot.second.load(Ordering::Acquire) == sec {
                requests += slot.requests.load(Ordering::Relaxed);
                errors += slot.errors.load(Ordering::Relaxed);
                merged.merge(&slot.latency);
            }
        }
        WindowStats {
            window_secs,
            requests,
            errors,
            qps: requests as f64 / window_secs as f64,
            error_rate: if requests == 0 {
                0.0
            } else {
                errors as f64 / requests as f64
            },
            p50_ns: merged.quantile_ns(0.50),
            p99_ns: merged.quantile_ns(0.99),
        }
    }
}

/// Aggregate view of one rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window length in seconds (after clamping to the ring).
    pub window_secs: u64,
    /// Requests observed in the window.
    pub requests: u64,
    /// Errors observed in the window.
    pub errors: u64,
    /// Requests per second averaged over the window.
    pub qps: f64,
    /// `errors / requests` (0 when the window is empty).
    pub error_rate: f64,
    /// Median latency over the window's merged histogram, ns.
    pub p50_ns: f64,
    /// 99th-percentile latency over the window's merged histogram, ns.
    pub p99_ns: f64,
}

impl WindowStats {
    /// Burn rate against an error budget: `error_rate / budget`
    /// (0 when the budget objective is disabled).
    pub fn burn_rate(&self, error_budget: f64) -> f64 {
        if error_budget > 0.0 {
            self.error_rate / error_budget
        } else {
            0.0
        }
    }

    /// Renders the window as a JSON object.
    pub fn to_json(&self, error_budget: f64) -> String {
        format!(
            "{{\"window_secs\":{},\"requests\":{},\"errors\":{},\"qps\":{:.3},\
             \"error_rate\":{:.6},\"burn_rate\":{:.3},\"p50_ns\":{:.0},\"p99_ns\":{:.0}}}",
            self.window_secs,
            self.requests,
            self.errors,
            self.qps,
            self.error_rate,
            self.burn_rate(error_budget),
            self.p50_ns,
            self.p99_ns,
        )
    }
}

/// The service-level objectives and the windows they are judged over.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// 99th-percentile latency target in nanoseconds (0 disables the
    /// latency objective).
    pub p99_target_ns: u64,
    /// Error budget as a fraction of requests allowed to fail
    /// (e.g. `0.01` = 1%; 0 disables the error objective).
    pub error_budget: f64,
    /// Fast window length, seconds — the readiness trigger.
    pub fast_window_secs: u64,
    /// Slow window length, seconds — trend context in `/debug/slo`.
    pub slow_window_secs: u64,
    /// Error burn rate over the fast window that trips readiness
    /// (classic fast-burn paging threshold; 1.0 = budget spent exactly
    /// at the sustainable pace).
    pub fast_burn_threshold: f64,
    /// Minimum fast-window requests before any objective can trip —
    /// a single failed probe must not flip readiness.
    pub min_requests: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p99_target_ns: 0,
            error_budget: 0.0,
            fast_window_secs: 5,
            slow_window_secs: 60,
            fast_burn_threshold: 4.0,
            min_requests: 10,
        }
    }
}

impl SloPolicy {
    /// True if at least one objective is active.
    pub fn is_active(&self) -> bool {
        self.p99_target_ns > 0 || self.error_budget > 0.0
    }

    /// Evaluates both windows at `now_ns` and decides readiness off
    /// the fast window: not ready when (with at least
    /// [`SloPolicy::min_requests`] fast-window samples) the error burn
    /// rate exceeds [`SloPolicy::fast_burn_threshold`], or the
    /// fast-window p99 exceeds the latency target.
    pub fn evaluate(&self, windows: &SloWindows, now_ns: u64) -> SloStatus {
        let fast = windows.stats(now_ns, self.fast_window_secs);
        let slow = windows.stats(now_ns, self.slow_window_secs);
        let mut reason = String::new();
        if fast.requests >= self.min_requests {
            if self.error_budget > 0.0 {
                let burn = fast.burn_rate(self.error_budget);
                if burn > self.fast_burn_threshold {
                    reason = format!(
                        "fast-window error rate {:.4} burns budget {:.4} at {:.1}x \
                         (threshold {:.1}x)",
                        fast.error_rate, self.error_budget, burn, self.fast_burn_threshold
                    );
                }
            }
            if reason.is_empty() && self.p99_target_ns > 0 && fast.p99_ns > self.p99_target_ns as f64
            {
                reason = format!(
                    "fast-window p99 {:.0}ns exceeds target {}ns",
                    fast.p99_ns, self.p99_target_ns
                );
            }
        }
        SloStatus {
            ready: reason.is_empty(),
            reason,
            fast,
            slow,
            policy: self.clone(),
        }
    }
}

/// One point-in-time SLO evaluation: the readiness verdict, the
/// tripping reason (empty when ready), and both window views.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Whether the service should report ready (200 on `/readyz`).
    pub ready: bool,
    /// Human-readable trip reason; empty when ready.
    pub reason: String,
    /// The fast (readiness-driving) window.
    pub fast: WindowStats,
    /// The slow (trend) window.
    pub slow: WindowStats,
    /// The policy that produced this verdict.
    pub policy: SloPolicy,
}

impl SloStatus {
    /// Renders the full evaluation as the `/debug/slo` JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ready\":{},\"reason\":\"{}\",\
             \"policy\":{{\"p99_target_ns\":{},\"error_budget\":{:.6},\
             \"fast_window_secs\":{},\"slow_window_secs\":{},\
             \"fast_burn_threshold\":{:.2},\"min_requests\":{}}},\
             \"fast\":{},\"slow\":{}}}",
            self.ready,
            escape_json(&self.reason),
            self.policy.p99_target_ns,
            self.policy.error_budget,
            self.policy.fast_window_secs,
            self.policy.slow_window_secs,
            self.policy.fast_burn_threshold,
            self.policy.min_requests,
            self.fast.to_json(self.policy.error_budget),
            self.slow.to_json(self.policy.error_budget),
        )
    }
}

/// Escapes the characters that would break a JSON string literal (the
/// reason strings are ASCII by construction, but stay safe).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = NANOS_PER_SEC;

    fn policy() -> SloPolicy {
        SloPolicy {
            p99_target_ns: 1_000_000, // 1 ms
            error_budget: 0.01,       // 1%
            fast_window_secs: 5,
            slow_window_secs: 60,
            fast_burn_threshold: 4.0,
            min_requests: 10,
        }
    }

    #[test]
    fn empty_windows_are_ready() {
        let w = SloWindows::new();
        let s = policy().evaluate(&w, 100 * SEC);
        assert!(s.ready);
        assert_eq!(s.fast.requests, 0);
        assert_eq!(s.fast.error_rate, 0.0);
    }

    #[test]
    fn healthy_traffic_stays_ready() {
        let w = SloWindows::new();
        for i in 0..100 {
            w.record(100 * SEC + i, 100_000, false); // 100 µs, ok
        }
        let s = policy().evaluate(&w, 100 * SEC);
        assert!(s.ready, "{}", s.reason);
        assert_eq!(s.fast.requests, 100);
        assert_eq!(s.fast.qps, 20.0, "100 requests over a 5 s window");
        assert!(s.fast.p99_ns < 1_000_000.0);
    }

    #[test]
    fn error_burn_trips_and_recovers_as_the_window_slides() {
        let w = SloWindows::new();
        // Second 100: half the traffic fails — 50× the 1% budget.
        for i in 0..100 {
            w.record(100 * SEC, 100_000, i % 2 == 0);
        }
        let s = policy().evaluate(&w, 100 * SEC);
        assert!(!s.ready);
        assert!(s.reason.contains("error rate"), "{}", s.reason);
        assert!(s.fast.burn_rate(0.01) > 4.0);
        // Slow window sees the same burn (same single second of data).
        assert_eq!(s.slow.errors, 50);
        // 5 seconds later the bad second has left the fast window.
        let s = policy().evaluate(&w, 105 * SEC);
        assert!(s.ready, "recovered: {}", s.reason);
        assert_eq!(s.fast.requests, 0);
        // …but still burdens the slow trend window.
        assert_eq!(s.slow.errors, 50);
    }

    #[test]
    fn latency_objective_trips_on_slow_p99() {
        let w = SloWindows::new();
        for _ in 0..100 {
            w.record(200 * SEC, 10_000_000, false); // 10 ms against a 1 ms target
        }
        let s = policy().evaluate(&w, 200 * SEC);
        assert!(!s.ready);
        assert!(s.reason.contains("p99"), "{}", s.reason);
    }

    #[test]
    fn min_requests_guards_small_samples() {
        let w = SloWindows::new();
        for _ in 0..5 {
            w.record(300 * SEC, 10_000_000, true); // all errors, but only 5
        }
        let s = policy().evaluate(&w, 300 * SEC);
        assert!(s.ready, "below min_requests nothing can trip");
    }

    #[test]
    fn ring_wrap_reclaims_stale_slots() {
        let w = SloWindows::new();
        w.record(10 * SEC, 1_000, false);
        // RING_SECONDS later the same slot serves a new second; the old
        // tally must not leak in.
        let later = (10 + RING_SECONDS as u64) * SEC;
        w.record(later, 2_000, true);
        let st = w.stats(later, 1);
        assert_eq!(st.requests, 1);
        assert_eq!(st.errors, 1);
    }

    #[test]
    fn stats_clamp_oversized_windows() {
        let w = SloWindows::new();
        let st = w.stats(50 * SEC, 10_000);
        assert_eq!(st.window_secs, RING_SECONDS as u64);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let w = SloWindows::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let w = &w;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        w.record(400 * SEC + i, 50_000, (t + i) % 10 == 0);
                    }
                });
            }
        });
        let st = w.stats(400 * SEC, 5);
        assert_eq!(st.requests, 4000, "single-second slot, no resets racing");
        assert_eq!(st.errors, 400);
    }

    #[test]
    fn status_json_is_well_formed() {
        let w = SloWindows::new();
        for i in 0..200 {
            w.record(500 * SEC, 100_000, i == 0); // 0.5% errors: within budget
        }
        let s = policy().evaluate(&w, 500 * SEC);
        let j = s.to_json();
        assert!(j.contains("\"ready\":true"), "{j}");
        assert!(j.contains("\"fast\":{"), "{j}");
        assert!(j.contains("\"slow\":{"), "{j}");
        assert!(j.contains("\"burn_rate\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn json_escapes_reason_strings() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
