//! Sampled per-request traces: fixed-size stage-stamped spans, a
//! lock-free seqlock ring of recent completions, and the tracer that
//! ties them to the metric registry.
//!
//! The stage model mirrors the life of one admitted request through
//! the serving stack:
//!
//! ```text
//! parse → enqueue → dequeue → cache_probe → compute → serialize → flush
//!   edge     edge     worker      worker       worker     edge      edge
//! ```
//!
//! Sampling is deterministic 1-in-N on the trace ID (`id % N == 0`),
//! so A/B runs at the same N sample the *same* requests and the
//! overhead of a non-sampled request is one relaxed `fetch_add` plus
//! one modulo. A sampled request carries a heap-boxed [`Span`] through
//! the queue; workers stamp stages with [`now_ns`](crate::now_ns)
//! reads — no locks, no allocation after admission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock::now_ns;
use crate::cost::{CostCounters, NUM_COST_FIELDS};
use crate::metrics::{Counter, Histogram};
use crate::registry::{Metric, Registry};

/// Number of stamped stages in a span.
pub const NUM_STAGES: usize = 7;

/// Stage names, indexed by `Stage as usize`.
pub const STAGE_NAMES: [&str; NUM_STAGES] = [
    "parse",
    "enqueue",
    "dequeue",
    "cache_probe",
    "compute",
    "serialize",
    "flush",
];

/// Names of the six intervals *between* consecutive stages, used as
/// the `stage` label on `ah_stage_duration_seconds`: `admit` =
/// parse→enqueue, `queue` = enqueue→dequeue (the queue-wait), then
/// each stage named for the work that ends it.
pub const INTERVAL_NAMES: [&str; NUM_STAGES - 1] = [
    "admit",
    "queue",
    "cache_probe",
    "compute",
    "serialize",
    "flush",
];

/// One checkpoint in a request's life. Numeric values index
/// [`SpanRecord::stages`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Request line + query string parsed and admitted at the edge.
    Parse = 0,
    /// Pushed onto the bounded worker queue.
    Enqueue = 1,
    /// Popped by a worker (enqueue→dequeue is the queue-wait).
    Dequeue = 2,
    /// Distance-cache probe finished (hit or miss).
    CacheProbe = 3,
    /// Backend compute finished (skipped work on a cache hit is
    /// stamped immediately, yielding a ~0 ns compute interval).
    Compute = 4,
    /// Response bytes rendered into the connection's write buffer.
    Serialize = 5,
    /// Last response byte accepted by the socket.
    Flush = 6,
}

/// The fixed-size record a finished span leaves behind: stage stamps
/// are nanoseconds since the process epoch, `0` meaning "stage never
/// reached" (real stamps are forced to ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Deterministically sampled request ID (≥ 1; 0 marks an empty
    /// ring slot).
    pub trace_id: u64,
    /// Request kind: 0 = distance, 1 = path, other values free.
    pub kind: u8,
    /// Final HTTP-ish status (200, 429, …); 0 while in flight.
    pub status: u16,
    /// Per-stage stamps, indexed by [`Stage`].
    pub stages: [u64; NUM_STAGES],
    /// Algorithmic cost of the traced query (nodes settled, edges
    /// relaxed, label entries merged, …) — what the request *did*, not
    /// just when it did it.
    pub cost: CostCounters,
}

impl SpanRecord {
    /// True when every stage was stamped.
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(|&t| t != 0)
    }

    /// True when the stamped stages are non-decreasing in stage order
    /// (unstamped stages are skipped).
    pub fn is_monotonic(&self) -> bool {
        let mut prev = 0u64;
        for &t in &self.stages {
            if t == 0 {
                continue;
            }
            if t < prev {
                return false;
            }
            prev = t;
        }
        true
    }

    /// Wall time from the first to the last stamped stage (0 when
    /// fewer than two stages are stamped).
    pub fn total_ns(&self) -> u64 {
        let stamped: Vec<u64> = self.stages.iter().copied().filter(|&t| t != 0).collect();
        match (stamped.first(), stamped.last()) {
            (Some(&a), Some(&b)) if b >= a => b - a,
            _ => 0,
        }
    }
}

/// A live, sampled request trace. Heap-boxed (`Box<Span>`) so carrying
/// it through queues moves one pointer.
#[derive(Debug)]
pub struct Span {
    rec: SpanRecord,
}

impl Span {
    fn new(trace_id: u64, kind: u8) -> Self {
        Span {
            rec: SpanRecord {
                trace_id,
                kind,
                status: 0,
                stages: [0; NUM_STAGES],
                cost: CostCounters::default(),
            },
        }
    }

    /// Stamps `stage` with the current monotonic time (idempotent in
    /// effect: re-stamping overwrites, but the pipeline stamps each
    /// stage once).
    #[inline]
    pub fn stamp(&mut self, stage: Stage) {
        self.rec.stages[stage as usize] = now_ns().max(1);
    }

    /// The trace ID assigned at admission.
    pub fn trace_id(&self) -> u64 {
        self.rec.trace_id
    }

    /// Read access to the record under construction.
    pub fn record(&self) -> &SpanRecord {
        &self.rec
    }

    /// Merges per-query algorithmic cost into the span. Additive, so
    /// the worker's kernel tally and the edge's later bytes-out stamp
    /// compose into one record.
    #[inline]
    pub fn add_cost(&mut self, cost: &CostCounters) {
        self.rec.cost.merge(cost);
    }
}

const RING_WORDS: usize = 2 + NUM_STAGES + NUM_COST_FIELDS;

struct RingSlot {
    /// Seqlock: even = stable, odd = write in progress. Starts at 0;
    /// a slot with `seq < 2` has never been written.
    seq: AtomicU64,
    /// `[trace_id, kind<<32|status, stages[0..7], cost[0..9]]`.
    words: [AtomicU64; RING_WORDS],
}

/// A lock-free ring of recently finished [`SpanRecord`]s.
///
/// Each slot is a tiny seqlock built from plain `AtomicU64` words:
/// writers claim a slot by CAS-ing its sequence from even to odd,
/// store the record's words, then publish with `seq + 2`; a writer
/// that loses the CAS simply drops its record (the ring prefers losing
/// one sample over blocking a worker). Readers snapshot the words and
/// discard the slot if the sequence changed underneath them — no locks
/// anywhere, no torn records ever surfaced.
pub struct SpanRing {
    slots: Box<[RingSlot]>,
    cursor: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring holding the last `capacity.max(1)` records.
    pub fn new(capacity: usize) -> Self {
        let n = capacity.max(1);
        SpanRing {
            slots: (0..n)
                .map(|_| RingSlot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Publishes a finished record, overwriting the oldest slot. May
    /// silently drop the record if another writer holds the same slot
    /// mid-write (never blocks).
    pub fn push(&self, rec: &SpanRecord) {
        let i = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        let slot = &self.slots[i];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            return; // another writer mid-flight; drop this sample
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        slot.words[0].store(rec.trace_id, Ordering::Relaxed);
        slot.words[1].store(
            (u64::from(rec.kind) << 32) | u64::from(rec.status),
            Ordering::Relaxed,
        );
        for (k, &t) in rec.stages.iter().enumerate() {
            slot.words[2 + k].store(t, Ordering::Relaxed);
        }
        for (k, c) in rec.cost.as_array().into_iter().enumerate() {
            slot.words[2 + NUM_STAGES + k].store(c, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Snapshot of every stable record currently in the ring (slots
    /// mid-write or overwritten during the read are skipped).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 < 2 || seq1 & 1 == 1 {
                continue;
            }
            let trace_id = slot.words[0].load(Ordering::Relaxed);
            let ks = slot.words[1].load(Ordering::Relaxed);
            let mut stages = [0u64; NUM_STAGES];
            for (k, s) in stages.iter_mut().enumerate() {
                *s = slot.words[2 + k].load(Ordering::Relaxed);
            }
            let mut cost = [0u64; NUM_COST_FIELDS];
            for (k, c) in cost.iter_mut().enumerate() {
                *c = slot.words[2 + NUM_STAGES + k].load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != seq1 {
                continue; // torn read; skip
            }
            out.push(SpanRecord {
                trace_id,
                kind: (ks >> 32) as u8,
                status: (ks & 0xFFFF) as u16,
                stages,
                cost: CostCounters::from_array(cost),
            });
        }
        out
    }
}

/// Tracing knobs, carried in `ServerConfig`.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Sample 1 request in `sample_every` (deterministic on the trace
    /// ID). `1` traces everything, `0` disables tracing entirely.
    pub sample_every: u64,
    /// Slots in the recent-trace ring behind `/debug/traces`.
    pub ring_capacity: usize,
    /// Sampled spans whose wall time meets this threshold are written
    /// to the slow-query log (stderr). `0` disables the log.
    pub slow_threshold_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            ring_capacity: 256,
            slow_threshold_ns: 0,
        }
    }
}

/// Starts, finishes, and aggregates sampled spans.
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    next_id: AtomicU64,
    ring: SpanRing,
    spans_total: Arc<Counter>,
    slow_total: Arc<Counter>,
    stage_ns: [Arc<Histogram>; NUM_STAGES - 1],
}

impl Tracer {
    /// Creates a tracer with the given knobs.
    pub fn new(cfg: TraceConfig) -> Self {
        let ring = SpanRing::new(cfg.ring_capacity);
        Tracer {
            cfg,
            next_id: AtomicU64::new(0),
            ring,
            spans_total: Arc::default(),
            slow_total: Arc::default(),
            stage_ns: std::array::from_fn(|_| Arc::default()),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// Admits one request: assigns the next trace ID and returns a
    /// live span iff the ID is sampled (`id % sample_every == 0`;
    /// `None` always when tracing is disabled). The returned span has
    /// [`Stage::Parse`] already stamped.
    pub fn start(&self, kind: u8) -> Option<Box<Span>> {
        if self.cfg.sample_every == 0 {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        if id % self.cfg.sample_every != 0 {
            return None;
        }
        let mut span = Box::new(Span::new(id, kind));
        span.stamp(Stage::Parse);
        Some(span)
    }

    /// Finishes a sampled span: records each present stage interval
    /// into its duration histogram, feeds the slow-query log, and
    /// publishes the record to the recent-trace ring.
    pub fn finish(&self, mut span: Box<Span>, status: u16) {
        span.rec.status = status;
        self.spans_total.inc();
        for i in 0..NUM_STAGES - 1 {
            let (a, b) = (span.rec.stages[i], span.rec.stages[i + 1]);
            if a != 0 && b >= a {
                self.stage_ns[i].record_ns(b - a);
            }
        }
        let total = span.rec.total_ns();
        if self.cfg.slow_threshold_ns > 0 && total >= self.cfg.slow_threshold_ns {
            self.slow_total.inc();
            eprintln!(
                "[slow-query] trace_id={} kind={} status={} total_us={:.1} stages={:?}",
                span.rec.trace_id,
                kind_name(span.rec.kind),
                status,
                total as f64 / 1e3,
                span.rec.stages,
            );
        }
        self.ring.push(&span.rec);
    }

    /// Recent finished records (unordered snapshot of the ring).
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Finished-span count (sampled spans only).
    pub fn spans_finished(&self) -> u64 {
        self.spans_total.get()
    }

    /// Finished spans at or above the slow-query threshold.
    pub fn slow_finished(&self) -> u64 {
        self.slow_total.get()
    }

    /// The interval histogram feeding `ah_stage_duration_seconds`
    /// for `stage` = [`INTERVAL_NAMES`]`[i]`.
    pub fn stage_histogram(&self, i: usize) -> &Arc<Histogram> {
        &self.stage_ns[i]
    }

    /// Registers the tracer's metrics (`ah_trace_spans_total`,
    /// `ah_trace_slow_total`, and one `ah_stage_duration_seconds`
    /// histogram per stage interval) under the given static labels.
    pub fn register_into(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register(
            "ah_trace_spans_total",
            labels,
            "Sampled request spans finished",
            Metric::Counter(Arc::clone(&self.spans_total)),
        );
        reg.register(
            "ah_trace_slow_total",
            labels,
            "Sampled spans at or above the slow-query threshold",
            Metric::Counter(Arc::clone(&self.slow_total)),
        );
        for (i, name) in INTERVAL_NAMES.iter().enumerate() {
            let mut lv: Vec<(&str, &str)> = labels.to_vec();
            lv.push(("stage", name));
            reg.register(
                "ah_stage_duration_seconds",
                &lv,
                "Per-stage duration of sampled request spans",
                Metric::Histogram(Arc::clone(&self.stage_ns[i])),
            );
        }
    }

    /// Renders the recent-trace ring as the `/debug/traces` JSON
    /// document (hand-rolled: the workspace serde is an offline stub).
    pub fn traces_json(&self) -> String {
        let spans = self.recent();
        let mut out = String::with_capacity(256 + spans.len() * 256);
        out.push_str(&format!(
            "{{\"sample_every\":{},\"finished\":{},\"spans\":[",
            self.cfg.sample_every,
            self.spans_finished()
        ));
        for (i, r) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let stages = STAGE_NAMES
                .iter()
                .zip(r.stages.iter())
                .map(|(n, t)| format!("\"{n}\":{t}"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                concat!(
                    "{{\"trace_id\":{},\"kind\":\"{}\",\"status\":{},",
                    "\"complete\":{},\"monotonic\":{},\"total_ns\":{},",
                    "\"stages\":{{{}}},\"cost\":{}}}"
                ),
                r.trace_id,
                kind_name(r.kind),
                r.status,
                r.is_complete(),
                r.is_monotonic(),
                r.total_ns(),
                stages,
                r.cost.to_json(),
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Renders the per-stage latency breakdown consumed by the BENCH
    /// reports: one object per stage interval with count, mean and
    /// p99 in microseconds.
    pub fn stage_breakdown_json(&self) -> String {
        let body = INTERVAL_NAMES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let h = &self.stage_ns[i];
                format!(
                    "\"{}\":{{\"count\":{},\"mean_us\":{:.3},\"p99_us\":{:.3}}}",
                    name,
                    h.count(),
                    h.mean_ns() / 1e3,
                    h.quantile_ns(0.99) / 1e3,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

fn kind_name(kind: u8) -> &'static str {
    match kind {
        0 => "distance",
        1 => "path",
        2 => "via",
        3 => "knn",
        4 => "matrix",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_span(tracer: &Tracer) -> Box<Span> {
        let mut s = tracer.start(0).expect("sampled");
        for st in [
            Stage::Enqueue,
            Stage::Dequeue,
            Stage::CacheProbe,
            Stage::Compute,
            Stage::Serialize,
            Stage::Flush,
        ] {
            s.stamp(st);
        }
        s
    }

    #[test]
    fn sampling_is_deterministic_one_in_n() {
        let t = Tracer::new(TraceConfig {
            sample_every: 4,
            ..Default::default()
        });
        let sampled = (0..100).filter(|_| t.start(0).is_some()).count();
        assert_eq!(sampled, 25);

        let off = Tracer::new(TraceConfig {
            sample_every: 0,
            ..Default::default()
        });
        assert!(off.start(0).is_none());

        let all = Tracer::new(TraceConfig {
            sample_every: 1,
            ..Default::default()
        });
        assert!(all.start(1).is_some());
    }

    #[test]
    fn finished_spans_are_complete_and_monotonic() {
        let t = Tracer::new(TraceConfig {
            sample_every: 1,
            ..Default::default()
        });
        let s = full_span(&t);
        assert!(s.record().is_complete());
        t.finish(s, 200);
        let recent = t.recent();
        assert_eq!(recent.len(), 1);
        let r = recent[0];
        assert!(r.is_complete() && r.is_monotonic(), "{r:?}");
        assert_eq!(r.status, 200);
        assert!(r.trace_id >= 1);
        // Stage intervals were recorded: every interval histogram saw
        // exactly one observation.
        for i in 0..NUM_STAGES - 1 {
            assert_eq!(t.stage_histogram(i).count(), 1, "interval {i}");
        }
    }

    #[test]
    fn partial_spans_survive_without_panicking() {
        let t = Tracer::new(TraceConfig {
            sample_every: 1,
            ..Default::default()
        });
        let mut s = t.start(1).unwrap();
        s.stamp(Stage::Enqueue); // rejected before dequeue
        t.finish(s, 429);
        let r = t.recent()[0];
        assert!(!r.is_complete());
        assert!(r.is_monotonic());
        assert_eq!(r.status, 429);
        assert_eq!(r.kind, 1);
        // Only the parse→enqueue interval exists.
        assert_eq!(t.stage_histogram(0).count(), 1);
        assert_eq!(t.stage_histogram(1).count(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_never_tears() {
        let ring = SpanRing::new(4);
        for id in 1..=10u64 {
            let rec = SpanRecord {
                trace_id: id,
                kind: 0,
                status: 200,
                stages: [id; NUM_STAGES],
                cost: CostCounters::from_array([id; NUM_COST_FIELDS]),
            };
            ring.push(&rec);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        for r in &snap {
            assert!(r.trace_id >= 7, "{r:?}"); // only the newest survive
            assert_eq!(r.stages, [r.trace_id; NUM_STAGES]); // no torn slots
            assert_eq!(r.cost.as_array(), [r.trace_id; NUM_COST_FIELDS]);
        }
    }

    #[test]
    fn ring_concurrent_pushes_and_snapshots_stay_consistent() {
        // Seqlock torn-read regression test: 4 writers hammer an
        // 8-slot ring far past capacity while a reader snapshots.
        // Every record's stage stamps *and* cost words are derived
        // from its trace_id, so any half-written slot surfacing — in
        // the original stage words or the newer cost words — fails the
        // internal-consistency assertion.
        let ring = SpanRing::new(8);
        std::thread::scope(|scope| {
            for tid in 0..4u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let v = tid * 1000 + i + 1;
                        ring.push(&SpanRecord {
                            trace_id: v,
                            kind: 0,
                            status: 200,
                            stages: [v; NUM_STAGES],
                            cost: CostCounters::from_array([v.wrapping_mul(3); NUM_COST_FIELDS]),
                        });
                    }
                });
            }
            let ring = &ring;
            scope.spawn(move || {
                for _ in 0..200 {
                    for r in ring.snapshot() {
                        // Every surfaced record is internally
                        // consistent — the seqlock never exposes a
                        // half-written slot.
                        assert_eq!(r.stages, [r.trace_id; NUM_STAGES], "torn: {r:?}");
                        assert_eq!(
                            r.cost.as_array(),
                            [r.trace_id.wrapping_mul(3); NUM_COST_FIELDS],
                            "torn cost words: {r:?}"
                        );
                    }
                }
            });
        });
    }

    #[test]
    fn traces_json_shape() {
        let t = Tracer::new(TraceConfig {
            sample_every: 1,
            slow_threshold_ns: 0,
            ..Default::default()
        });
        let s = full_span(&t);
        t.finish(s, 200);
        let json = t.traces_json();
        assert!(json.starts_with("{\"sample_every\":1"), "{json}");
        assert!(json.contains("\"status\":200"), "{json}");
        assert!(json.contains("\"complete\":true"), "{json}");
        assert!(json.contains("\"stages\":{\"parse\":"), "{json}");
        let breakdown = t.stage_breakdown_json();
        assert!(breakdown.contains("\"queue\":{\"count\":1"), "{breakdown}");
        assert!(breakdown.contains("\"compute\":"), "{breakdown}");
    }

    #[test]
    fn slow_log_counts_threshold_hits() {
        let t = Tracer::new(TraceConfig {
            sample_every: 1,
            slow_threshold_ns: 1, // everything with ≥ 2 stamps is "slow"
            ..Default::default()
        });
        let mut s = t.start(0).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        s.stamp(Stage::Flush);
        t.finish(s, 200);
        assert_eq!(t.spans_finished(), 1);
        let r = Registry::new();
        t.register_into(&r, &[("backend", "AH")]);
        let text = r.render();
        assert!(text.contains("ah_trace_slow_total{backend=\"AH\"} 1"), "{text}");
        assert!(text.contains("ah_trace_spans_total{backend=\"AH\"} 1"), "{text}");
        assert!(
            text.contains("ah_stage_duration_seconds_bucket{backend=\"AH\",stage=\"flush\""),
            "{text}"
        );
    }
}
