//! Property tests pinning the histogram bucket contract.
//!
//! The Prometheus `_bucket` series and lossless cross-lane merges both
//! rely on every `Histogram` agreeing on the same bucket layout, so
//! the layout is tested as a *property* of arbitrary observations, not
//! just spot values: powers of two land in the documented bucket, each
//! observation falls within its bucket's bounds, and merge equals
//! replay.

use ah_obs::{Histogram, BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `2^k` lands exactly in bucket `k` — the documented inclusive
    /// lower edge — and `2^k - 1` in bucket `k-1`.
    #[test]
    fn powers_of_two_land_in_their_bucket(k in 0u32..64) {
        let v = 1u64 << k;
        prop_assert_eq!(Histogram::bucket_of(v), k as usize);
        if k >= 2 {
            prop_assert_eq!(Histogram::bucket_of(v - 1), (k - 1) as usize);
        }
    }

    /// Every observation lies within its bucket's documented bounds:
    /// `le(b-1) < ns <= le(b)` (with 0 ns sharing bucket 0).
    #[test]
    fn observations_fall_inside_bucket_bounds(ns in 0u64..=u64::MAX) {
        let b = Histogram::bucket_of(ns);
        prop_assert!(b < BUCKETS);
        prop_assert!(ns <= Histogram::bucket_le_ns(b),
            "ns {} above le {} of bucket {}", ns, Histogram::bucket_le_ns(b), b);
        if b > 0 {
            prop_assert!(ns > Histogram::bucket_le_ns(b - 1),
                "ns {} not above le {} of bucket {}", ns, Histogram::bucket_le_ns(b - 1), b - 1);
        }
    }

    /// Bucket upper bounds are strictly increasing and saturate at
    /// `u64::MAX` (no `1 << 64` wraparound at the top).
    #[test]
    fn bucket_bounds_are_strictly_increasing(b in 1usize..64) {
        prop_assert!(Histogram::bucket_le_ns(b) > Histogram::bucket_le_ns(b - 1));
        prop_assert_eq!(Histogram::bucket_le_ns(BUCKETS - 1), u64::MAX);
    }

    /// Merging per-lane histograms is exactly equivalent to recording
    /// every observation into one histogram: same per-bucket counts,
    /// same totals — no fidelity lost by aggregating lanes.
    #[test]
    fn merge_equals_replay(
        lane_a in proptest::collection::vec(0u64..1 << 40, 0..40),
        lane_b in proptest::collection::vec(0u64..1 << 40, 0..40),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let replay = Histogram::new();
        for &ns in &lane_a {
            a.record_ns(ns);
            replay.record_ns(ns);
        }
        for &ns in &lane_b {
            b.record_ns(ns);
            replay.record_ns(ns);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), replay.count());
        prop_assert_eq!(a.total_ns(), replay.total_ns());
        prop_assert_eq!(a.bucket_counts(), replay.bucket_counts());
        // And the derived quantiles agree bit-for-bit.
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(a.quantile_ns(q), replay.quantile_ns(q));
        }
    }
}
