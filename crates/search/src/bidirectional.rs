//! Exact bidirectional Dijkstra on the plain graph.
//!
//! Not an index — this is the classic speedup of the baseline, provided both
//! as a comparator and as the template for the constrained bidirectional
//! searches used by FC and AH (Section 3.2's termination rule: stop a side
//! once the best meeting distance is no larger than its queue minimum).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Dist, NodeId, Path, INFINITY, INVALID_NODE};
use ah_obs::CostCounters;

use crate::search_graph::SearchGraph;
use crate::stamped::StampedVec;

/// Reusable bidirectional-Dijkstra state.
#[derive(Debug)]
pub struct BidirectionalDijkstra {
    dist_f: StampedVec<Dist>,
    dist_b: StampedVec<Dist>,
    parent_f: StampedVec<NodeId>,
    parent_b: StampedVec<NodeId>,
    settled_f: StampedVec<bool>,
    settled_b: StampedVec<bool>,
    heap_f: BinaryHeap<Reverse<(Dist, NodeId)>>,
    heap_b: BinaryHeap<Reverse<(Dist, NodeId)>>,
    meeting: Option<NodeId>,
    cost: CostCounters,
}

impl Default for BidirectionalDijkstra {
    fn default() -> Self {
        Self::new()
    }
}

impl BidirectionalDijkstra {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        BidirectionalDijkstra {
            dist_f: StampedVec::new(0, INFINITY),
            dist_b: StampedVec::new(0, INFINITY),
            parent_f: StampedVec::new(0, INVALID_NODE),
            parent_b: StampedVec::new(0, INVALID_NODE),
            settled_f: StampedVec::new(0, false),
            settled_b: StampedVec::new(0, false),
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            meeting: None,
            cost: CostCounters::default(),
        }
    }

    /// Algorithmic cost accumulated since the last
    /// [`take_cost`](Self::take_cost) drain (both search sides).
    pub fn cost(&self) -> &CostCounters {
        &self.cost
    }

    /// Drains and returns the accumulated cost tally.
    pub fn take_cost(&mut self) -> CostCounters {
        self.cost.take()
    }

    /// Shortest distance from `s` to `t`, or `None` if unreachable.
    pub fn distance<G: SearchGraph>(&mut self, g: &G, s: NodeId, t: NodeId) -> Option<Dist> {
        self.search(g, s, t)
    }

    /// Shortest path from `s` to `t`.
    pub fn path<G: SearchGraph>(&mut self, g: &G, s: NodeId, t: NodeId) -> Option<Path> {
        let dist = self.search(g, s, t)?;
        let meet = self.meeting.expect("finite distance implies a meeting node");
        let mut nodes = Vec::new();
        // Forward half: s … meet.
        let mut cur = meet;
        loop {
            nodes.push(cur);
            let p = self.parent_f.get(cur as usize);
            if p == INVALID_NODE {
                break;
            }
            cur = p;
        }
        nodes.reverse();
        // Backward half: meet … t (parents in the backward tree point
        // toward t).
        let mut cur = meet;
        loop {
            let p = self.parent_b.get(cur as usize);
            if p == INVALID_NODE {
                break;
            }
            nodes.push(p);
            cur = p;
        }
        Some(Path { nodes, dist })
    }

    fn search<G: SearchGraph>(&mut self, g: &G, s: NodeId, t: NodeId) -> Option<Dist> {
        let n = g.num_nodes();
        for v in [
            &mut self.dist_f,
            &mut self.dist_b,
        ] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.parent_f, &mut self.parent_b] {
            v.ensure_len(n);
            v.reset();
        }
        for v in [&mut self.settled_f, &mut self.settled_b] {
            v.ensure_len(n);
            v.reset();
        }
        self.heap_f.clear();
        self.heap_b.clear();
        self.meeting = None;

        if s == t {
            self.meeting = Some(s);
            return Some(Dist::ZERO);
        }

        self.dist_f.set(s as usize, Dist::ZERO);
        self.dist_b.set(t as usize, Dist::ZERO);
        self.heap_f.push(Reverse((Dist::ZERO, s)));
        self.heap_b.push(Reverse((Dist::ZERO, t)));

        let mut best = INFINITY;
        let mut buf: Vec<(NodeId, u64, u64)> = Vec::with_capacity(16);

        loop {
            let top_f = self.heap_f.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            let top_b = self.heap_b.peek().map(|Reverse((d, _))| *d).unwrap_or(INFINITY);
            if top_f.is_infinite() && top_b.is_infinite() {
                break;
            }
            // Standard termination: once the sum of the two queue minima
            // reaches the best meeting, no better path exists.
            if !best.is_infinite() && top_f.concat(top_b) >= best {
                break;
            }

            let forward = top_f <= top_b;
            let Some(Reverse((d, u))) = (if forward {
                self.heap_f.pop()
            } else {
                self.heap_b.pop()
            }) else {
                break;
            };
            self.cost.heap_pops += 1;

            if forward {
                if self.settled_f.get(u as usize) {
                    continue;
                }
                self.settled_f.set(u as usize, true);
                self.cost.nodes_settled += 1;
                let other = self.dist_b.get(u as usize);
                if !other.is_infinite() {
                    let through = d.concat(other);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                buf.clear();
                g.for_each_out(u, |v, w, nu| buf.push((v, w, nu)));
                self.cost.edges_relaxed += buf.len() as u64;
                expand(
                    u,
                    d,
                    &buf,
                    &mut self.settled_f,
                    &mut self.dist_f,
                    &mut self.parent_f,
                    &mut self.heap_f,
                );
            } else {
                if self.settled_b.get(u as usize) {
                    continue;
                }
                self.settled_b.set(u as usize, true);
                self.cost.nodes_settled += 1;
                let other = self.dist_f.get(u as usize);
                if !other.is_infinite() {
                    let through = d.concat(other);
                    if through < best {
                        best = through;
                        self.meeting = Some(u);
                    }
                }
                buf.clear();
                g.for_each_in(u, |v, w, nu| buf.push((v, w, nu)));
                self.cost.edges_relaxed += buf.len() as u64;
                expand(
                    u,
                    d,
                    &buf,
                    &mut self.settled_b,
                    &mut self.dist_b,
                    &mut self.parent_b,
                    &mut self.heap_b,
                );
            }
        }

        (!best.is_infinite()).then_some(best)
    }
}

/// Relaxes the buffered arcs of one settled node for one search side.
#[allow(clippy::too_many_arguments)]
fn expand(
    u: NodeId,
    d: Dist,
    arcs: &[(NodeId, u64, u64)],
    settled: &mut StampedVec<bool>,
    dist: &mut StampedVec<Dist>,
    parent: &mut StampedVec<NodeId>,
    heap: &mut BinaryHeap<Reverse<(Dist, NodeId)>>,
) {
    for &(v, w, nu) in arcs {
        if settled.get(v as usize) {
            continue;
        }
        let nd = d.step(w, nu);
        if nd < dist.get(v as usize) {
            dist.set(v as usize, nd);
            parent.set(v as usize, u);
            heap.push(Reverse((nd, v)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{Graph, GraphBuilder, Point};

    fn grid3() -> Graph {
        // 3×3 king-less grid with unit weights, bidirectional.
        let mut b = GraphBuilder::new();
        for y in 0..3 {
            for x in 0..3 {
                b.add_node(Point::new(x, y));
            }
        }
        let id = |x: i32, y: i32| (y * 3 + x) as u32;
        for y in 0..3 {
            for x in 0..3 {
                if x + 1 < 3 {
                    b.add_bidirectional_edge(id(x, y), id(x + 1, y), 1);
                }
                if y + 1 < 3 {
                    b.add_bidirectional_edge(id(x, y), id(x, y + 1), 1);
                }
            }
        }
        b.build()
    }

    #[test]
    fn distances_match_manhattan() {
        let g = grid3();
        let mut bd = BidirectionalDijkstra::new();
        assert_eq!(bd.distance(&g, 0, 8).unwrap().length, 4);
        assert_eq!(bd.distance(&g, 0, 0).unwrap().length, 0);
        assert_eq!(bd.distance(&g, 3, 5).unwrap().length, 2);
    }

    #[test]
    fn path_is_valid_and_minimal() {
        let g = grid3();
        let mut bd = BidirectionalDijkstra::new();
        let p = bd.path(&g, 0, 8).unwrap();
        p.verify(&g).unwrap();
        assert_eq!(p.dist.length, 4);
        assert_eq!(p.source(), 0);
        assert_eq!(p.target(), 8);
        assert_eq!(p.num_edges(), 4);
    }

    #[test]
    fn self_path_is_trivial() {
        let g = grid3();
        let mut bd = BidirectionalDijkstra::new();
        let p = bd.path(&g, 4, 4).unwrap();
        assert_eq!(p.nodes, vec![4]);
        assert_eq!(p.dist, Dist::ZERO);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(5, 5));
        b.add_edge(0, 1, 1); // one-way: 1 cannot reach 0
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new();
        assert!(bd.distance(&g, 1, 0).is_none());
        assert!(bd.path(&g, 1, 0).is_none());
        assert_eq!(bd.distance(&g, 0, 1).unwrap().length, 1);
    }

    #[test]
    fn directed_asymmetry_respected() {
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 0, 10);
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new();
        assert_eq!(bd.distance(&g, 0, 2).unwrap().length, 2);
        assert_eq!(bd.distance(&g, 2, 0).unwrap().length, 10);
    }

    #[test]
    fn agrees_with_unidirectional_on_random_graph() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = GraphBuilder::new();
        let n = 60u32;
        for i in 0..n {
            b.add_node(Point::new((i % 8) as i32, (i / 8) as i32));
        }
        for _ in 0..240 {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            let w = rng.random_range(1..50);
            b.add_edge(u, v, w);
        }
        let g = b.build();
        let mut bd = BidirectionalDijkstra::new();
        let mut uni = crate::DijkstraDriver::new();
        for _ in 0..50 {
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            uni.run(&g, s, &crate::SearchOptions::default(), |_| true);
            let expect = uni.dist(t);
            match bd.distance(&g, s, t) {
                Some(d) => assert_eq!(d, expect, "s={s} t={t}"),
                None => assert!(expect.is_infinite(), "s={s} t={t}"),
            }
        }
    }
}
