//! The reusable single-source Dijkstra engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Dist, NodeId, INFINITY, INVALID_NODE};
use ah_obs::CostCounters;

use crate::search_graph::SearchGraph;
use crate::stamped::StampedVec;

/// Which adjacency a search follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Follow out-edges: computes distances *from* the source.
    #[default]
    Forward,
    /// Follow in-edges: computes distances *to* the source.
    Backward,
}

/// Knobs for a [`DijkstraDriver::run`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Adjacency direction.
    pub direction: Direction,
    /// Stop as soon as this node is settled.
    pub target: Option<NodeId>,
    /// Do not settle nodes farther than this (exclusive); used by witness
    /// searches and local searches.
    pub bound: Dist,
    /// Settle at most this many nodes (witness-search budget).
    pub max_settled: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            direction: Direction::Forward,
            target: None,
            bound: INFINITY,
            max_settled: usize::MAX,
        }
    }
}

/// Why a search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// The requested target was settled at this distance.
    TargetReached(Dist),
    /// The priority queue drained.
    Exhausted,
    /// The next node exceeded [`SearchOptions::bound`].
    BoundExceeded,
    /// [`SearchOptions::max_settled`] was hit.
    SettleLimit,
}

/// Reusable Dijkstra state. Construct once, call [`run`](Self::run) many
/// times; buffers reset in O(1) between runs thanks to [`StampedVec`].
#[derive(Debug)]
pub struct DijkstraDriver {
    dist: StampedVec<Dist>,
    parent: StampedVec<NodeId>,
    settled_mark: StampedVec<bool>,
    settled_order: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
    cost: CostCounters,
}

impl Default for DijkstraDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl DijkstraDriver {
    /// Creates an empty driver; buffers grow to fit the first graph it runs
    /// on.
    pub fn new() -> Self {
        DijkstraDriver {
            dist: StampedVec::new(0, INFINITY),
            parent: StampedVec::new(0, INVALID_NODE),
            settled_mark: StampedVec::new(0, false),
            settled_order: Vec::new(),
            heap: BinaryHeap::new(),
            cost: CostCounters::default(),
        }
    }

    /// Runs Dijkstra from `source`, relaxing only edges whose far endpoint
    /// satisfies `allow`. See [`SearchOptions`] for termination knobs.
    pub fn run<G, F>(&mut self, g: &G, source: NodeId, opts: &SearchOptions, allow: F) -> SearchOutcome
    where
        G: SearchGraph,
        F: FnMut(NodeId) -> bool,
    {
        self.run_multi(g, &[(source, Dist::ZERO)], opts, allow)
    }

    /// Multi-source variant: each source starts at the given offset
    /// distance.
    pub fn run_multi<G, F>(
        &mut self,
        g: &G,
        sources: &[(NodeId, Dist)],
        opts: &SearchOptions,
        mut allow: F,
    ) -> SearchOutcome
    where
        G: SearchGraph,
        F: FnMut(NodeId) -> bool,
    {
        let n = g.num_nodes();
        self.dist.ensure_len(n);
        self.parent.ensure_len(n);
        self.settled_mark.ensure_len(n);
        self.dist.reset();
        self.parent.reset();
        self.settled_mark.reset();
        self.settled_order.clear();
        self.heap.clear();

        for &(s, d0) in sources {
            if d0 < self.dist.get(s as usize) {
                self.dist.set(s as usize, d0);
                self.heap.push(Reverse((d0, s)));
            }
        }

        // Reused arc buffer: lets us mutate `self` while iterating the
        // borrowed adjacency of `g`, without a per-node allocation.
        let mut buf: Vec<(NodeId, u64, u64)> = Vec::with_capacity(16);
        while let Some(Reverse((d, u))) = self.heap.pop() {
            self.cost.heap_pops += 1;
            if self.settled_mark.get(u as usize) {
                continue; // stale heap entry
            }
            if d > opts.bound {
                self.heap.clear();
                return SearchOutcome::BoundExceeded;
            }
            self.settled_mark.set(u as usize, true);
            self.settled_order.push(u);
            self.cost.nodes_settled += 1;
            if opts.target == Some(u) {
                return SearchOutcome::TargetReached(d);
            }
            if self.settled_order.len() >= opts.max_settled {
                return SearchOutcome::SettleLimit;
            }

            let relax = |driver: &mut Self, v: NodeId, w: u64, nu: u64, allow: &mut F| {
                if driver.settled_mark.get(v as usize) || !allow(v) {
                    return;
                }
                let nd = d.step(w, nu);
                if nd < driver.dist.get(v as usize) {
                    driver.dist.set(v as usize, nd);
                    driver.parent.set(v as usize, u);
                    driver.heap.push(Reverse((nd, v)));
                }
            };
            buf.clear();
            match opts.direction {
                Direction::Forward => g.for_each_out(u, |v, w, nu| buf.push((v, w, nu))),
                Direction::Backward => g.for_each_in(u, |v, w, nu| buf.push((v, w, nu))),
            }
            self.cost.edges_relaxed += buf.len() as u64;
            for &(v, w, nu) in &buf {
                relax(self, v, w, nu, &mut allow);
            }
        }
        SearchOutcome::Exhausted
    }

    /// Distance of `v` from the source(s) of the last run ([`INFINITY`] if
    /// unreached).
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist.get(v as usize)
    }

    /// True if `v` was settled (its distance is final).
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.settled_mark.get(v as usize)
    }

    /// Predecessor of `v` in the search tree, if any.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        let p = self.parent.get(v as usize);
        (p != INVALID_NODE).then_some(p)
    }

    /// Nodes in the order they were settled.
    pub fn settled_order(&self) -> &[NodeId] {
        &self.settled_order
    }

    /// Algorithmic cost accumulated since the last
    /// [`take_cost`](Self::take_cost) drain. Unlike the per-run
    /// buffers this tally spans runs, so a query composed of several
    /// driver runs (scenario sweeps, boundary probes) drains one total.
    pub fn cost(&self) -> &CostCounters {
        &self.cost
    }

    /// Drains and returns the accumulated cost tally.
    pub fn take_cost(&mut self) -> CostCounters {
        self.cost.take()
    }

    /// Reconstructs the tree path to `v`. For a forward run the returned
    /// sequence goes source → … → `v`; for a backward run it goes
    /// `v` → … → source (i.e. it is already in forward edge orientation).
    pub fn path_to(&self, v: NodeId, direction: Direction) -> Option<Vec<NodeId>> {
        if self.dist.get(v as usize).is_infinite() {
            return None;
        }
        let mut nodes = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            nodes.push(p);
            cur = p;
        }
        if matches!(direction, Direction::Forward) {
            nodes.reverse();
        }
        Some(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{Graph, GraphBuilder, Point};

    /// 0 —1→ 1 —1→ 2 —1→ 3, plus a slow direct edge 0 —5→ 3.
    fn chain_with_shortcut() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(2, 3, 1);
        b.add_edge(0, 3, 5);
        b.build()
    }

    #[test]
    fn forward_distances() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        d.run(&g, 0, &SearchOptions::default(), |_| true);
        assert_eq!(d.dist(0).length, 0);
        assert_eq!(d.dist(1).length, 1);
        assert_eq!(d.dist(2).length, 2);
        assert_eq!(d.dist(3).length, 3);
        assert_eq!(d.path_to(3, Direction::Forward), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn backward_distances() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        d.run(
            &g,
            3,
            &SearchOptions {
                direction: Direction::Backward,
                ..Default::default()
            },
            |_| true,
        );
        assert_eq!(d.dist(0).length, 3);
        // Backward path is reported in forward orientation: 0 → … → 3.
        assert_eq!(d.path_to(0, Direction::Backward), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn early_termination_at_target() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        let out = d.run(
            &g,
            0,
            &SearchOptions {
                target: Some(1),
                ..Default::default()
            },
            |_| true,
        );
        assert_eq!(out, SearchOutcome::TargetReached(d.dist(1)));
        // Node 3 must not be settled yet (dist 3 > dist 1).
        assert!(!d.is_settled(3));
    }

    #[test]
    fn bound_prunes() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        let out = d.run(
            &g,
            0,
            &SearchOptions {
                bound: Dist::new(1, u64::MAX),
                ..Default::default()
            },
            |_| true,
        );
        assert_eq!(out, SearchOutcome::BoundExceeded);
        assert!(d.is_settled(1));
        assert!(!d.is_settled(2));
    }

    #[test]
    fn settle_limit() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        let out = d.run(
            &g,
            0,
            &SearchOptions {
                max_settled: 2,
                ..Default::default()
            },
            |_| true,
        );
        assert_eq!(out, SearchOutcome::SettleLimit);
        assert_eq!(d.settled_order().len(), 2);
    }

    #[test]
    fn node_filter_blocks_route() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        // Forbid node 1: the only remaining route to 3 is the direct edge.
        d.run(&g, 0, &SearchOptions::default(), |v| v != 1);
        assert_eq!(d.dist(3).length, 5);
        assert!(d.dist(1).is_infinite());
    }

    #[test]
    fn multi_source() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        d.run_multi(
            &g,
            &[(0, Dist::new(10, 0)), (2, Dist::ZERO)],
            &SearchOptions::default(),
            |_| true,
        );
        assert_eq!(d.dist(3).length, 1); // via source 2
        assert_eq!(d.dist(1).length, 11); // via source 0 with offset
    }

    #[test]
    fn reuse_across_runs_and_graphs() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        d.run(&g, 0, &SearchOptions::default(), |_| true);
        assert_eq!(d.dist(3).length, 3);
        d.run(&g, 3, &SearchOptions::default(), |_| true);
        // 3 has no out-edges: everything else unreachable, state fully reset.
        assert!(d.dist(0).is_infinite());
        assert_eq!(d.dist(3), Dist::ZERO);
    }

    #[test]
    fn settled_order_is_by_distance() {
        let g = chain_with_shortcut();
        let mut d = DijkstraDriver::new();
        d.run(&g, 0, &SearchOptions::default(), |_| true);
        let order = d.settled_order();
        for w in order.windows(2) {
            assert!(d.dist(w[0]) <= d.dist(w[1]));
        }
    }

    #[test]
    fn unreachable_node() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        let g = b.build();
        let mut d = DijkstraDriver::new();
        let out = d.run(&g, 0, &SearchOptions::default(), |_| true);
        assert_eq!(out, SearchOutcome::Exhausted);
        assert!(d.dist(1).is_infinite());
        assert_eq!(d.path_to(1, Direction::Forward), None);
    }
}
