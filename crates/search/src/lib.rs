//! Dijkstra-family search substrate.
//!
//! Every method in this workspace — the classic baseline, FC/AH index
//! construction, CH witness searches, SILC shortest-path trees — reduces to
//! variants of Dijkstra's algorithm over some graph. This crate provides:
//!
//! * [`SearchGraph`] — the minimal adjacency abstraction, implemented by
//!   [`ah_graph::Graph`] and by the dynamic overlay graphs used during
//!   preprocessing;
//! * [`DijkstraDriver`] — a reusable single-source engine with timestamped
//!   buffers (no per-query clearing), supporting early termination, distance
//!   bounds, settle limits, node filters and both search directions;
//! * [`BidirectionalDijkstra`] — the exact bidirectional baseline;
//! * one-shot convenience functions ([`dijkstra_distance`],
//!   [`dijkstra_path`], [`shortest_path_tree`]).
//!
//! All distances are nuance-tagged [`Dist`] pairs (paper Appendix A), so
//! shortest paths are unique with overwhelming probability and every crate
//! that builds on this one agrees on *which* shortest path is canonical.
//!
//! ```
//! use ah_graph::{GraphBuilder, Point};
//! use ah_search::{dijkstra_distance, BidirectionalDijkstra};
//!
//! let mut b = GraphBuilder::new();
//! for i in 0..4 {
//!     b.add_node(Point::new(i, 0));
//! }
//! for i in 0..3 {
//!     b.add_bidirectional_edge(i as u32, i as u32 + 1, 5);
//! }
//! let g = b.build();
//! let mut bidir = BidirectionalDijkstra::new();
//! assert_eq!(bidir.distance(&g, 0, 3), dijkstra_distance(&g, 0, 3));
//! assert_eq!(bidir.distance(&g, 0, 3).unwrap().length, 15);
//! ```

mod bidirectional;
mod driver;
mod oneshot;
pub mod scenario;
mod search_graph;
mod stamped;

pub use bidirectional::BidirectionalDijkstra;
pub use driver::{DijkstraDriver, Direction, SearchOptions, SearchOutcome};
pub use oneshot::{dijkstra_distance, dijkstra_path, shortest_path_tree, ShortestPathTree};
pub use scenario::{PoiSet, ScenarioEngine, ViaAnswer, POI_CATEGORIES, POI_SEED};
pub use search_graph::SearchGraph;
pub use stamped::StampedVec;

pub use ah_graph::{Dist, NodeId, Weight, INFINITY};
