//! One-shot convenience wrappers around [`DijkstraDriver`].

use ah_graph::{Dist, NodeId, Path, INVALID_NODE};

use crate::driver::{DijkstraDriver, Direction, SearchOptions};
use crate::search_graph::SearchGraph;

/// Shortest distance from `s` to `t` with plain Dijkstra (early
/// termination at `t`), or `None` if unreachable. This is the paper's
/// "Dijkstra" baseline for distance queries.
pub fn dijkstra_distance<G: SearchGraph>(g: &G, s: NodeId, t: NodeId) -> Option<Dist> {
    let mut d = DijkstraDriver::new();
    d.run(
        g,
        s,
        &SearchOptions {
            target: Some(t),
            ..Default::default()
        },
        |_| true,
    );
    let dist = d.dist(t);
    (!dist.is_infinite()).then_some(dist)
}

/// Shortest path from `s` to `t` with plain Dijkstra (the paper's baseline
/// for shortest-path queries).
pub fn dijkstra_path<G: SearchGraph>(g: &G, s: NodeId, t: NodeId) -> Option<Path> {
    let mut d = DijkstraDriver::new();
    d.run(
        g,
        s,
        &SearchOptions {
            target: Some(t),
            ..Default::default()
        },
        |_| true,
    );
    let dist = d.dist(t);
    if dist.is_infinite() {
        return None;
    }
    let nodes = d.path_to(t, Direction::Forward)?;
    Some(Path { nodes, dist })
}

/// A full single-source shortest-path tree.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The source node.
    pub source: NodeId,
    /// Distance per node ([`ah_graph::INFINITY`] if unreachable).
    pub dist: Vec<Dist>,
    /// Tree predecessor per node ([`INVALID_NODE`] for the source and for
    /// unreachable nodes).
    pub parent: Vec<NodeId>,
    /// First hop per node: the source's out-neighbour through which the
    /// shortest path to the node leaves (the node itself if it is that
    /// neighbour; [`INVALID_NODE`] for the source/unreachable). This is the
    /// payload SILC compresses into quadtrees.
    pub first_hop: Vec<NodeId>,
}

/// Computes the complete forward shortest-path tree rooted at `source`.
pub fn shortest_path_tree<G: SearchGraph>(g: &G, source: NodeId) -> ShortestPathTree {
    let mut d = DijkstraDriver::new();
    d.run(g, source, &SearchOptions::default(), |_| true);
    let n = g.num_nodes();
    let mut dist = Vec::with_capacity(n);
    let mut parent = Vec::with_capacity(n);
    for v in 0..n as NodeId {
        dist.push(d.dist(v));
        parent.push(d.parent(v).unwrap_or(INVALID_NODE));
    }
    // Settle order guarantees parents appear before children, so one pass
    // suffices to propagate first hops.
    let mut first_hop = vec![INVALID_NODE; n];
    for &v in d.settled_order() {
        if v == source {
            continue;
        }
        let p = parent[v as usize];
        first_hop[v as usize] = if p == source {
            v
        } else {
            first_hop[p as usize]
        };
    }
    ShortestPathTree {
        source,
        dist,
        parent,
        first_hop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{Graph, GraphBuilder, Point};

    fn y_graph() -> Graph {
        // 0 → 1 → {2, 3}; 0 → 4 (slow alternative to 1).
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_node(Point::new(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(1, 3, 2);
        b.add_edge(0, 4, 10);
        b.add_edge(4, 3, 1);
        b.build()
    }

    #[test]
    fn oneshot_distance_and_path() {
        let g = y_graph();
        assert_eq!(dijkstra_distance(&g, 0, 3).unwrap().length, 3);
        let p = dijkstra_path(&g, 0, 3).unwrap();
        p.verify(&g).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert!(dijkstra_distance(&g, 2, 0).is_none());
        assert!(dijkstra_path(&g, 2, 0).is_none());
    }

    #[test]
    fn tree_distances_and_parents() {
        let g = y_graph();
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.dist[2].length, 2);
        assert_eq!(t.dist[3].length, 3);
        assert_eq!(t.parent[3], 1);
        assert_eq!(t.parent[0], INVALID_NODE);
    }

    #[test]
    fn first_hops_propagate() {
        let g = y_graph();
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.first_hop[1], 1);
        assert_eq!(t.first_hop[2], 1);
        assert_eq!(t.first_hop[3], 1); // via 1, not via 4
        assert_eq!(t.first_hop[4], 4);
        assert_eq!(t.first_hop[0], INVALID_NODE);
    }

    #[test]
    fn first_hop_unreachable_is_invalid() {
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(1, 0));
        let g = b.build();
        let t = shortest_path_tree(&g, 0);
        assert_eq!(t.first_hop[1], INVALID_NODE);
        assert!(t.dist[1].is_infinite());
    }

    #[test]
    fn self_distance_zero() {
        let g = y_graph();
        assert_eq!(dijkstra_distance(&g, 2, 2), Some(Dist::ZERO));
        let p = dijkstra_path(&g, 2, 2).unwrap();
        assert_eq!(p.nodes, vec![2]);
    }
}
