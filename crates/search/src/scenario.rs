//! Scenario query kernels: synthetic POI sets, optimal via-POI detours,
//! k-nearest-POI queries, and batched one-to-many distance tables.
//!
//! The serving layer opens three workloads beyond point-to-point
//! distance/path traffic (`/v1/via`, `/v1/knn`, `/v1/matrix` — see
//! `docs/SCENARIOS.md`). All three reduce to plain Dijkstra runs over
//! the original graph, which makes this module the *reference kernel*:
//! every faster engine (hub labels, repeated index point queries) must
//! produce bit-identical answers, and the shared test oracle
//! (`tests/support/oracle.rs`) re-derives the same results from first
//! principles.
//!
//! # Determinism contract
//!
//! Scenario answers are ordered by **(path length, node id)** — the
//! nuance tie-break component (paper Appendix A) canonicalizes *which*
//! shortest path is reported per pair, but scenario *ranking* uses the
//! plain length so that engines exposing only lengths (the
//! `BackendSession` point-query interface) agree bit-for-bit with the
//! kernels here:
//!
//! * k-NN results are sorted ascending by `(distance, poi id)` and
//!   truncated to `k`; unreachable POIs are dropped.
//! * The via answer minimizes `(d(s,p) + d(p,t), p)` over the candidate
//!   set; candidates missing either leg are skipped.
//! * Matrix cells are independent point distances (`None` = unreachable).

use ah_graph::NodeId;

use crate::driver::{DijkstraDriver, Direction, SearchOptions};
use crate::search_graph::SearchGraph;

/// Default seed of the synthetic POI assignment. Servers, benchmark
/// drivers and test oracles that agree on `(num_nodes, categories,
/// seed)` reconstruct the identical [`PoiSet`] with no wire exchange.
pub const POI_SEED: u64 = 0x90AD_51DE_0DE7_0042;

/// Default number of POI categories.
pub const POI_CATEGORIES: u32 = 8;

/// SplitMix64 — the stateless mixing function behind the synthetic POI
/// assignment. Public so independent reimplementations (oracle, wire
/// clients) can cite one definition.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic assignment of POIs (points of interest) to graph
/// nodes, partitioned into categories.
///
/// Membership is a pure function of `(seed, node id)`: node `v` is a POI
/// iff `splitmix64(seed ^ v) & 3 == 0` (≈ 25 % of nodes), and its
/// category is `(h >> 2) % categories`. Category slices are sorted by
/// node id and duplicate-free by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoiSet {
    categories: u32,
    seed: u64,
    by_category: Vec<Vec<NodeId>>,
}

impl PoiSet {
    /// Builds the synthetic POI assignment for a graph of `num_nodes`
    /// nodes.
    ///
    /// # Panics
    /// Panics if `categories` is zero.
    pub fn synthetic(num_nodes: usize, categories: u32, seed: u64) -> PoiSet {
        assert!(categories > 0, "a POI set needs at least one category");
        let mut by_category = vec![Vec::new(); categories as usize];
        for v in 0..num_nodes as NodeId {
            let h = splitmix64(seed ^ u64::from(v));
            if h & 3 == 0 {
                by_category[((h >> 2) % u64::from(categories)) as usize].push(v);
            }
        }
        PoiSet {
            categories,
            seed,
            by_category,
        }
    }

    /// The POI set every component reconstructs by default:
    /// [`POI_CATEGORIES`] categories under [`POI_SEED`].
    pub fn default_for(num_nodes: usize) -> PoiSet {
        PoiSet::synthetic(num_nodes, POI_CATEGORIES, POI_SEED)
    }

    /// Number of categories.
    pub fn categories(&self) -> u32 {
        self.categories
    }

    /// The seed the assignment was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// POIs of one category, sorted by node id. Out-of-range categories
    /// yield an empty slice (the serving layer treats them as "no
    /// reachable POI", not an error).
    pub fn category(&self, cat: u32) -> &[NodeId] {
        self.by_category
            .get(cat as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total POIs across all categories.
    pub fn len(&self) -> usize {
        self.by_category.iter().map(Vec::len).sum()
    }

    /// True when no node is a POI (tiny graphs).
    pub fn is_empty(&self) -> bool {
        self.by_category.iter().all(Vec::is_empty)
    }
}

/// The optimal detour through a POI: the `p` minimizing
/// `(d(s,p) + d(p,t), p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViaAnswer {
    /// The chosen POI node.
    pub poi: NodeId,
    /// Total detour length `d(s, poi) + d(poi, t)`.
    pub total: u64,
    /// First leg `d(s, poi)`.
    pub to_poi: u64,
    /// Second leg `d(poi, t)`.
    pub from_poi: u64,
}

/// Reusable scenario-query state: one forward and one backward
/// [`DijkstraDriver`], reset in O(1) between runs. Construct once per
/// worker, call many times.
#[derive(Debug, Default)]
pub struct ScenarioEngine {
    fwd: DijkstraDriver,
    bwd: DijkstraDriver,
}

impl ScenarioEngine {
    /// Creates an engine; buffers grow to fit the first graph it runs on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the algorithmic cost both drivers accumulated since the
    /// last drain — one tally per scenario query, however many sweeps
    /// it ran.
    pub fn take_cost(&mut self) -> ah_obs::CostCounters {
        let mut c = self.fwd.take_cost();
        c.merge(&self.bwd.take_cost());
        c
    }

    /// Distances from `source` to each of `targets` (`None` =
    /// unreachable), from one forward Dijkstra run.
    pub fn one_to_many<G: SearchGraph>(
        &mut self,
        g: &G,
        source: NodeId,
        targets: &[NodeId],
    ) -> Vec<Option<u64>> {
        self.fwd.run(g, source, &SearchOptions::default(), |_| true);
        targets
            .iter()
            .map(|&t| {
                let d = self.fwd.dist(t);
                (!d.is_infinite()).then_some(d.length)
            })
            .collect()
    }

    /// Full distance table `sources × targets`: one forward Dijkstra per
    /// source. Row `i` equals [`Self::one_to_many`] from `sources[i]`.
    pub fn matrix<G: SearchGraph>(
        &mut self,
        g: &G,
        sources: &[NodeId],
        targets: &[NodeId],
    ) -> Vec<Vec<Option<u64>>> {
        sources
            .iter()
            .map(|&s| self.one_to_many(g, s, targets))
            .collect()
    }

    /// The `k` nearest `candidates` from `source` by network distance,
    /// sorted ascending by `(distance, node id)`; unreachable candidates
    /// are dropped.
    pub fn knn<G: SearchGraph>(
        &mut self,
        g: &G,
        source: NodeId,
        candidates: &[NodeId],
        k: usize,
    ) -> Vec<(NodeId, u64)> {
        self.fwd.run(g, source, &SearchOptions::default(), |_| true);
        let mut found: Vec<(u64, NodeId)> = candidates
            .iter()
            .filter_map(|&p| {
                let d = self.fwd.dist(p);
                (!d.is_infinite()).then_some((d.length, p))
            })
            .collect();
        found.sort_unstable();
        found.truncate(k);
        found.into_iter().map(|(d, p)| (p, d)).collect()
    }

    /// The optimal detour `s → p → t` over `candidates`, or `None` when
    /// no candidate has both legs reachable.
    ///
    /// One forward run from `s` and one backward run from `t` price every
    /// candidate; candidates are then scanned in ascending `d(s,p)`
    /// order, and since `d(s,p)` alone lower-bounds the total, the scan
    /// stops as soon as it exceeds the best total found — distant
    /// candidates are never combined.
    pub fn via<G: SearchGraph>(
        &mut self,
        g: &G,
        s: NodeId,
        t: NodeId,
        candidates: &[NodeId],
    ) -> Option<ViaAnswer> {
        self.fwd.run(g, s, &SearchOptions::default(), |_| true);
        self.bwd.run(
            g,
            t,
            &SearchOptions {
                direction: Direction::Backward,
                ..Default::default()
            },
            |_| true,
        );
        let mut order: Vec<(u64, NodeId)> = candidates
            .iter()
            .filter_map(|&p| {
                let d = self.fwd.dist(p);
                (!d.is_infinite()).then_some((d.length, p))
            })
            .collect();
        order.sort_unstable();
        let mut best: Option<ViaAnswer> = None;
        for &(to_poi, p) in &order {
            if let Some(b) = best {
                // `to_poi` lower-bounds the total; a strictly larger
                // first leg cannot improve on (or tie) the incumbent.
                if to_poi > b.total {
                    break;
                }
            }
            let back = self.bwd.dist(p);
            if back.is_infinite() {
                continue;
            }
            let total = to_poi.saturating_add(back.length);
            let better = match best {
                None => true,
                Some(b) => total < b.total || (total == b.total && p < b.poi),
            };
            if better {
                best = Some(ViaAnswer {
                    poi: p,
                    total,
                    to_poi,
                    from_poi: back.length,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oneshot::dijkstra_distance;
    use ah_graph::Graph;

    fn grid() -> Graph {
        ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 9,
            height: 9,
            one_way: 0.2,
            seed: 1234,
            ..Default::default()
        })
    }

    fn naive_dist(g: &Graph, s: NodeId, t: NodeId) -> Option<u64> {
        dijkstra_distance(g, s, t).map(|d| d.length)
    }

    #[test]
    fn poi_set_is_deterministic_and_partitioned() {
        let a = PoiSet::synthetic(500, 8, 42);
        let b = PoiSet::synthetic(500, 8, 42);
        assert_eq!(a, b);
        let c = PoiSet::synthetic(500, 8, 43);
        assert_ne!(a, c, "different seeds must shuffle the assignment");

        let mut seen = std::collections::HashSet::new();
        for cat in 0..a.categories() {
            let slice = a.category(cat);
            assert!(slice.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            for &p in slice {
                assert!((p as usize) < 500);
                assert!(seen.insert(p), "categories must not overlap");
            }
        }
        assert_eq!(seen.len(), a.len());
        // ≈ 25 % membership on a sample this size.
        assert!(a.len() > 60 && a.len() < 190, "got {}", a.len());
        assert!(a.category(999).is_empty(), "out-of-range category is empty");
    }

    #[test]
    fn one_to_many_matches_point_queries() {
        let g = grid();
        let mut eng = ScenarioEngine::new();
        let targets: Vec<NodeId> = (0..g.num_nodes() as NodeId).step_by(7).collect();
        let got = eng.one_to_many(&g, 3, &targets);
        for (i, &t) in targets.iter().enumerate() {
            assert_eq!(got[i], naive_dist(&g, 3, t), "target {t}");
        }
    }

    #[test]
    fn matrix_rows_equal_one_to_many() {
        let g = grid();
        let mut eng = ScenarioEngine::new();
        let last = g.num_nodes() as NodeId - 1;
        let sources = [0, 5, 17, 40];
        let targets = [2, 9, 33, last, 11];
        let m = eng.matrix(&g, &sources, &targets);
        assert_eq!(m.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(m[i], eng.one_to_many(&g, s, &targets), "row {i}");
        }
    }

    #[test]
    fn knn_is_sorted_truncated_and_exact() {
        let g = grid();
        let pois = PoiSet::synthetic(g.num_nodes(), 4, 7);
        let mut eng = ScenarioEngine::new();
        for cat in 0..4 {
            let cands = pois.category(cat);
            let got = eng.knn(&g, 10, cands, 3);
            assert!(got.len() <= 3);
            assert!(got.windows(2).all(|w| (w[0].1, w[0].0) < (w[1].1, w[1].0)));
            // Every reported pair is the true distance, and nothing
            // closer was skipped.
            let mut all: Vec<(u64, NodeId)> = cands
                .iter()
                .filter_map(|&p| naive_dist(&g, 10, p).map(|d| (d, p)))
                .collect();
            all.sort_unstable();
            all.truncate(3);
            let want: Vec<(NodeId, u64)> = all.into_iter().map(|(d, p)| (p, d)).collect();
            assert_eq!(got, want, "category {cat}");
        }
    }

    #[test]
    fn via_matches_exhaustive_scan() {
        let g = grid();
        let pois = PoiSet::synthetic(g.num_nodes(), 4, 9);
        let mut eng = ScenarioEngine::new();
        let last = g.num_nodes() as NodeId - 1;
        for (s, t, cat) in [(0, last, 0), (5, last - 3, 1), (33, 2, 2), (60, 60, 3)] {
            let got = eng.via(&g, s, t, pois.category(cat));
            let want = pois
                .category(cat)
                .iter()
                .filter_map(|&p| {
                    let a = naive_dist(&g, s, p)?;
                    let b = naive_dist(&g, p, t)?;
                    Some((a + b, p, a, b))
                })
                .min();
            let want = want.map(|(total, poi, to_poi, from_poi)| ViaAnswer {
                poi,
                total,
                to_poi,
                from_poi,
            });
            assert_eq!(got, want, "({s},{t}) cat {cat}");
        }
    }

    #[test]
    fn via_handles_unreachable_candidates() {
        // Two-component graph: candidates in the far component are
        // skipped, not reported.
        let mut b = ah_graph::GraphBuilder::new();
        for i in 0..6 {
            b.add_node(ah_graph::Point::new(i, 0));
        }
        b.add_bidirectional_edge(0, 1, 3);
        b.add_bidirectional_edge(1, 2, 4);
        b.add_bidirectional_edge(3, 4, 1);
        b.add_bidirectional_edge(4, 5, 1);
        let g = b.build();
        let mut eng = ScenarioEngine::new();
        assert_eq!(
            eng.via(&g, 0, 2, &[4, 5]),
            None,
            "detour through the far component is impossible"
        );
        let got = eng.via(&g, 0, 2, &[1, 4]).unwrap();
        assert_eq!(
            got,
            ViaAnswer {
                poi: 1,
                total: 7,
                to_poi: 3,
                from_poi: 4
            }
        );
        assert_eq!(eng.knn(&g, 0, &[1, 4, 5], 5), vec![(1, 3)]);
    }
}
