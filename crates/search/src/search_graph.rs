//! The adjacency abstraction all searches run on.

use ah_graph::{Graph, NodeId};

/// Minimal interface a graph must expose for Dijkstra-style searches.
///
/// Implementations exist for the immutable CSR [`Graph`] and for the dynamic
/// overlay graphs used while building FC/AH/CH indices (where shortcut
/// edges appear as contraction proceeds). The callback style keeps edge
/// enumeration allocation-free.
pub trait SearchGraph {
    /// Number of nodes; node ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Invokes `f(head, weight, nuance)` for every arc leaving `v`.
    /// Weights are widened to `u64` so overlay graphs whose shortcut
    /// lengths exceed `u32` can implement the trait losslessly.
    fn for_each_out<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, f: F);

    /// Invokes `f(tail, weight, nuance)` for every arc entering `v`.
    fn for_each_in<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, f: F);
}

impl SearchGraph for Graph {
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    fn for_each_out<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, mut f: F) {
        for a in self.out_edges(v) {
            f(a.head, a.weight as u64, a.nuance as u64);
        }
    }

    fn for_each_in<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, mut f: F) {
        for a in self.in_edges(v) {
            f(a.head, a.weight as u64, a.nuance as u64);
        }
    }
}

impl<G: SearchGraph> SearchGraph for &G {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn for_each_out<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, f: F) {
        (**self).for_each_out(v, f)
    }

    fn for_each_in<F: FnMut(NodeId, u64, u64)>(&self, v: NodeId, f: F) {
        (**self).for_each_in(v, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_graph::{GraphBuilder, Point};

    #[test]
    fn csr_graph_implements_search_graph() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0, 0));
        let c = b.add_node(Point::new(1, 0));
        b.add_edge(a, c, 3);
        let g = b.build();

        let mut out = Vec::new();
        g.for_each_out(a, |h, w, _| out.push((h, w)));
        assert_eq!(out, vec![(c, 3)]);

        let mut inn = Vec::new();
        g.for_each_in(c, |t, w, _| inn.push((t, w)));
        assert_eq!(inn, vec![(a, 3)]);

        // Reference impl forwards.
        let r = &g;
        assert_eq!(SearchGraph::num_nodes(&r), 2);
    }
}
