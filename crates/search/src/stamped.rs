//! Timestamped vectors: O(1) logical reset across queries.
//!
//! Preprocessing runs millions of tiny Dijkstras; clearing a `Vec<Dist>` of
//! length `n` for each would dominate the cost. A [`StampedVec`] stores a
//! version tag per slot and treats stale slots as holding the default value,
//! so "clearing" is a single counter increment.

/// A vector whose entries logically reset to a default value when
/// [`StampedVec::reset`] is called, in O(1).
#[derive(Debug, Clone)]
pub struct StampedVec<T: Copy> {
    data: Vec<T>,
    stamp: Vec<u32>,
    current: u32,
    default: T,
}

impl<T: Copy> StampedVec<T> {
    /// Creates a stamped vector of length `n` whose entries read as
    /// `default` until written.
    pub fn new(n: usize, default: T) -> Self {
        StampedVec {
            data: vec![default; n],
            stamp: vec![0; n],
            current: 1,
            default,
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the vector has zero slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grows to at least `n` slots (never shrinks).
    pub fn ensure_len(&mut self, n: usize) {
        if n > self.data.len() {
            self.data.resize(n, self.default);
            self.stamp.resize(n, 0);
        }
    }

    /// Logically resets every entry to the default.
    pub fn reset(&mut self) {
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Stamp counter wrapped: physically clear once every 2^32
            // resets so stale stamps can never alias.
            self.stamp.fill(0);
            self.current = 1;
        }
    }

    /// Reads slot `i` (default if not written since the last reset).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if self.stamp[i] == self.current {
            self.data[i]
        } else {
            self.default
        }
    }

    /// True if slot `i` has been written since the last reset.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.stamp[i] == self.current
    }

    /// Writes slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) {
        self.data[i] = value;
        self.stamp[i] = self.current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_until_written() {
        let mut v = StampedVec::new(3, -1i32);
        assert_eq!(v.get(0), -1);
        v.set(0, 42);
        assert_eq!(v.get(0), 42);
        assert!(v.is_set(0));
        assert!(!v.is_set(1));
    }

    #[test]
    fn reset_is_logical() {
        let mut v = StampedVec::new(2, 0u64);
        v.set(1, 7);
        v.reset();
        assert_eq!(v.get(1), 0);
        assert!(!v.is_set(1));
        v.set(1, 9);
        assert_eq!(v.get(1), 9);
    }

    #[test]
    fn ensure_len_grows() {
        let mut v = StampedVec::new(1, 5u8);
        v.ensure_len(10);
        assert_eq!(v.len(), 10);
        assert_eq!(v.get(9), 5);
        v.ensure_len(3); // no shrink
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut v = StampedVec::new(1, 0u32);
        for round in 0..10_000u32 {
            v.set(0, round);
            assert_eq!(v.get(0), round);
            v.reset();
            assert_eq!(v.get(0), 0);
        }
    }
}
