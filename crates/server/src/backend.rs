//! Swappable query backends.
//!
//! The serving engine is method-agnostic: anything that can answer distance
//! and path queries from a shared immutable index can sit behind the worker
//! pool. A [`DistanceBackend`] is the shared, `Sync` half (the index); a
//! [`BackendSession`] is the per-worker mutable half (heaps, stamped arrays)
//! created once per thread and reused across every query that worker serves
//! — mirroring how the figure binaries reuse one `AhQuery` across a query
//! set, but multiplied across threads.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, QueryConfig};
use ah_graph::{Graph, NodeId, Path};
use ah_labels::LabelIndex;
use ah_search::BidirectionalDijkstra;

/// A query method that can serve concurrent traffic from a shared index.
///
/// Implementations hold only immutable state (`&self` everywhere), so one
/// backend instance can be shared by any number of worker threads; the
/// `Sync` supertrait makes that contract explicit. All per-query scratch
/// lives in the [`BackendSession`] each worker creates for itself.
pub trait DistanceBackend: Sync {
    /// Method name used in reports (`"AH"`, `"CH"`, `"Dijkstra"`).
    fn name(&self) -> &'static str;

    /// Number of nodes of the underlying network (for request validation).
    fn num_nodes(&self) -> usize;

    /// Creates the per-worker reusable query state.
    fn make_session(&self) -> Box<dyn BackendSession + '_>;
}

/// Per-worker mutable query state tied to one backend instance.
pub trait BackendSession {
    /// Network distance from `s` to `t`, or `None` if unreachable.
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64>;

    /// Shortest path from `s` to `t` in the original network.
    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path>;
}

/// The Arterial Hierarchy backend (the paper's contribution, and the
/// serving default).
pub struct AhBackend<'a> {
    idx: &'a AhIndex,
    cfg: QueryConfig,
}

impl<'a> AhBackend<'a> {
    /// Serves queries from a prebuilt AH index with default constraints.
    pub fn new(idx: &'a AhIndex) -> Self {
        Self::with_config(idx, QueryConfig::default())
    }

    /// Serves with explicit constraint toggles (ablation traffic).
    pub fn with_config(idx: &'a AhIndex, cfg: QueryConfig) -> Self {
        AhBackend { idx, cfg }
    }
}

impl DistanceBackend for AhBackend<'_> {
    fn name(&self) -> &'static str {
        "AH"
    }

    fn num_nodes(&self) -> usize {
        self.idx.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(AhSession {
            idx: self.idx,
            q: AhQuery::with_config(self.cfg),
        })
    }
}

struct AhSession<'a> {
    idx: &'a AhIndex,
    q: AhQuery,
}

impl BackendSession for AhSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.idx, s, t)
    }
}

/// The Contraction Hierarchies backend (strongest baseline).
pub struct ChBackend<'a> {
    idx: &'a ChIndex,
}

impl<'a> ChBackend<'a> {
    /// Serves queries from a prebuilt CH index.
    pub fn new(idx: &'a ChIndex) -> Self {
        ChBackend { idx }
    }
}

impl DistanceBackend for ChBackend<'_> {
    fn name(&self) -> &'static str {
        "CH"
    }

    fn num_nodes(&self) -> usize {
        self.idx.hierarchy().num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(ChSession {
            idx: self.idx,
            q: ChQuery::new(),
        })
    }
}

struct ChSession<'a> {
    idx: &'a ChIndex,
    q: ChQuery,
}

impl BackendSession for ChSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.idx, s, t)
    }
}

/// Index-free bidirectional Dijkstra on the plain graph (the floor every
/// index must beat, still exact).
pub struct DijkstraBackend<'a> {
    graph: &'a Graph,
}

impl<'a> DijkstraBackend<'a> {
    /// Serves queries straight from the road network, no index.
    pub fn new(graph: &'a Graph) -> Self {
        DijkstraBackend { graph }
    }
}

impl DistanceBackend for DijkstraBackend<'_> {
    fn name(&self) -> &'static str {
        "Dijkstra"
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(DijkstraSession {
            graph: self.graph,
            q: BidirectionalDijkstra::new(),
        })
    }
}

struct DijkstraSession<'a> {
    graph: &'a Graph,
    q: BidirectionalDijkstra,
}

impl BackendSession for DijkstraSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.graph, s, t).map(|d| d.length)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.graph, s, t)
    }
}

/// The hub-labeling backend: distance queries answered from sorted
/// label arrays (no graph search at all), path queries delegated to the
/// AH index — labels certify *lengths*, not edge sequences, so the
/// engine that can unpack an actual route serves `/v1/path`.
pub struct LabelBackend<'a> {
    labels: &'a LabelIndex,
    ah: &'a AhIndex,
}

impl<'a> LabelBackend<'a> {
    /// Serves distances from `labels` and paths from `ah`. Both must
    /// index the same network (same node-id space).
    ///
    /// # Panics
    /// Panics if the two indexes disagree on the node count.
    pub fn new(labels: &'a LabelIndex, ah: &'a AhIndex) -> Self {
        assert_eq!(
            labels.num_nodes(),
            ah.num_nodes(),
            "labels and AH index cover different networks"
        );
        LabelBackend { labels, ah }
    }
}

impl DistanceBackend for LabelBackend<'_> {
    fn name(&self) -> &'static str {
        "labels"
    }

    fn num_nodes(&self) -> usize {
        self.labels.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(LabelSession {
            labels: self.labels,
            ah: self.ah,
            q: AhQuery::new(),
        })
    }
}

struct LabelSession<'a> {
    labels: &'a LabelIndex,
    ah: &'a AhIndex,
    q: AhQuery,
}

impl BackendSession for LabelSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.labels.distance(s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.ah, s, t)
    }
}

/// Wraps any backend and sleeps a fixed delay before each query — a
/// fault-injection stand-in for heavier backends (bigger networks,
/// remote shards). The network edge's CI smoke uses it to make
/// overload deterministic: with a known per-query cost, a burst larger
/// than the admission window *must* shed `429`s.
pub struct DelayBackend<'a> {
    inner: &'a dyn DistanceBackend,
    delay: std::time::Duration,
}

impl<'a> DelayBackend<'a> {
    /// Serves through `inner`, sleeping `delay` before every query.
    pub fn new(inner: &'a dyn DistanceBackend, delay: std::time::Duration) -> Self {
        DelayBackend { inner, delay }
    }
}

impl DistanceBackend for DelayBackend<'_> {
    fn name(&self) -> &'static str {
        // The wrapped backend's identity matters more in reports than
        // the fact of the delay (which callers log separately).
        self.inner.name()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(DelaySession {
            inner: self.inner.make_session(),
            delay: self.delay,
        })
    }
}

struct DelaySession<'a> {
    inner: Box<dyn BackendSession + 'a>,
    delay: std::time::Duration,
}

impl BackendSession for DelaySession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        std::thread::sleep(self.delay);
        self.inner.distance(s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        std::thread::sleep(self.delay);
        self.inner.path(s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::BuildConfig;
    use ah_search::dijkstra_distance;

    #[test]
    fn backends_agree_with_oneshot_dijkstra() {
        let g = ah_data::fixtures::lattice(6, 6, 14);
        let ah = AhIndex::build(&g, &BuildConfig::default());
        let ch = ChIndex::build(&g);
        let labels = LabelIndex::build(&g, ch.order());
        let backends: Vec<Box<dyn DistanceBackend>> = vec![
            Box::new(AhBackend::new(&ah)),
            Box::new(ChBackend::new(&ch)),
            Box::new(DijkstraBackend::new(&g)),
            Box::new(LabelBackend::new(&labels, &ah)),
        ];
        for b in &backends {
            assert_eq!(b.num_nodes(), g.num_nodes());
            let mut session = b.make_session();
            for (s, t) in [(0u32, 35u32), (5, 30), (17, 17), (35, 0)] {
                let want = dijkstra_distance(&g, s, t).map(|d| d.length);
                assert_eq!(session.distance(s, t), want, "{} ({s},{t})", b.name());
                if let Some(p) = session.path(s, t) {
                    p.verify(&g).unwrap();
                    assert_eq!(p.dist.length, want.unwrap());
                }
            }
        }
    }

    #[test]
    fn delay_backend_answers_identically_just_slower() {
        let g = ah_data::fixtures::ring(10);
        let plain = DijkstraBackend::new(&g);
        let delayed = DelayBackend::new(&plain, std::time::Duration::from_millis(2));
        assert_eq!(delayed.num_nodes(), 10);
        let mut s = delayed.make_session();
        let t0 = std::time::Instant::now();
        assert_eq!(
            s.distance(0, 5),
            dijkstra_distance(&g, 0, 5).map(|d| d.length)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn backend_is_object_safe_and_shareable() {
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_sync::<dyn DistanceBackend>();
    }
}
