//! Swappable query backends.
//!
//! The serving engine is method-agnostic: anything that can answer distance
//! and path queries from a shared immutable index can sit behind the worker
//! pool. A [`DistanceBackend`] is the shared, `Sync` half (the index); a
//! [`BackendSession`] is the per-worker mutable half (heaps, stamped arrays)
//! created once per thread and reused across every query that worker serves
//! — mirroring how the figure binaries reuse one `AhQuery` across a query
//! set, but multiplied across threads.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, QueryConfig};
use ah_graph::{Graph, NodeId, Path};
use ah_labels::LabelIndex;
use ah_obs::CostCounters;
use ah_search::{BidirectionalDijkstra, ScenarioEngine, ViaAnswer};

/// A query method that can serve concurrent traffic from a shared index.
///
/// Implementations hold only immutable state (`&self` everywhere), so one
/// backend instance can be shared by any number of worker threads; the
/// `Sync` supertrait makes that contract explicit. All per-query scratch
/// lives in the [`BackendSession`] each worker creates for itself.
pub trait DistanceBackend: Sync {
    /// Method name used in reports (`"AH"`, `"CH"`, `"Dijkstra"`).
    fn name(&self) -> &'static str;

    /// Number of nodes of the underlying network (for request validation).
    fn num_nodes(&self) -> usize;

    /// Creates the per-worker reusable query state.
    fn make_session(&self) -> Box<dyn BackendSession + '_>;
}

/// Per-worker mutable query state tied to one backend instance.
///
/// The scenario methods ([`one_to_many`](Self::one_to_many),
/// [`matrix`](Self::matrix), [`knn`](Self::knn), [`via`](Self::via))
/// have default implementations built from repeated point queries —
/// exact on every backend, since each point answer is. Backends with a
/// cheaper batched shape override them (Dijkstra runs one search per
/// source; hub labels run bucket sweeps). All follow the scenario
/// determinism contract (`ah_search::scenario`): ranking by
/// `(length, node id)`, unreachable candidates dropped — so every
/// backend's scenario answers are bit-identical.
pub trait BackendSession {
    /// Network distance from `s` to `t`, or `None` if unreachable.
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64>;

    /// Shortest path from `s` to `t` in the original network.
    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path>;

    /// Distances from `source` to each of `targets` (`None` =
    /// unreachable).
    fn one_to_many(&mut self, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
        targets.iter().map(|&t| self.distance(source, t)).collect()
    }

    /// Full distance table `sources × targets`; row `i` equals
    /// [`Self::one_to_many`] from `sources[i]`.
    fn matrix(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Vec<Vec<Option<u64>>> {
        sources
            .iter()
            .map(|&s| self.one_to_many(s, targets))
            .collect()
    }

    /// The `k` nearest `candidates` from `source`, sorted ascending by
    /// `(distance, node id)`.
    fn knn(&mut self, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
        let row = self.one_to_many(source, candidates);
        let mut found: Vec<(u64, NodeId)> = row
            .iter()
            .zip(candidates)
            .filter_map(|(d, &p)| d.map(|d| (d, p)))
            .collect();
        found.sort_unstable();
        found.truncate(k);
        found.into_iter().map(|(d, p)| (p, d)).collect()
    }

    /// The optimal detour `s → p → t` over `candidates`, minimizing
    /// `(total, poi)`; `None` when no candidate has both legs. The
    /// default prices every first leg, then scans candidates in
    /// ascending `d(s,p)` order — the first leg lower-bounds the total,
    /// so the scan (and its second-leg point queries) stops early.
    fn via(&mut self, s: NodeId, t: NodeId, candidates: &[NodeId]) -> Option<ViaAnswer> {
        let mut order: Vec<(u64, NodeId)> = self
            .one_to_many(s, candidates)
            .iter()
            .zip(candidates)
            .filter_map(|(d, &p)| d.map(|d| (d, p)))
            .collect();
        order.sort_unstable();
        let mut best: Option<ViaAnswer> = None;
        for &(to_poi, p) in &order {
            if let Some(b) = best {
                if to_poi > b.total {
                    break;
                }
            }
            let Some(from_poi) = self.distance(p, t) else {
                continue;
            };
            let total = to_poi.saturating_add(from_poi);
            let better = match best {
                None => true,
                Some(b) => total < b.total || (total == b.total && p < b.poi),
            };
            if better {
                best = Some(ViaAnswer {
                    poi: p,
                    total,
                    to_poi,
                    from_poi,
                });
            }
        }
        best
    }

    /// Drains the algorithmic cost accumulated since the last drain —
    /// typically everything the current request did, however many
    /// kernel runs it took (a via detour is several point queries; a
    /// matrix is many sweeps). The default returns zeros for backends
    /// that predate cost accounting.
    fn take_cost(&mut self) -> CostCounters {
        CostCounters::default()
    }
}

/// The Arterial Hierarchy backend (the paper's contribution, and the
/// serving default).
pub struct AhBackend<'a> {
    idx: &'a AhIndex,
    cfg: QueryConfig,
}

impl<'a> AhBackend<'a> {
    /// Serves queries from a prebuilt AH index with default constraints.
    pub fn new(idx: &'a AhIndex) -> Self {
        Self::with_config(idx, QueryConfig::default())
    }

    /// Serves with explicit constraint toggles (ablation traffic).
    pub fn with_config(idx: &'a AhIndex, cfg: QueryConfig) -> Self {
        AhBackend { idx, cfg }
    }
}

impl DistanceBackend for AhBackend<'_> {
    fn name(&self) -> &'static str {
        "AH"
    }

    fn num_nodes(&self) -> usize {
        self.idx.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(AhSession {
            idx: self.idx,
            q: AhQuery::with_config(self.cfg),
        })
    }
}

struct AhSession<'a> {
    idx: &'a AhIndex,
    q: AhQuery,
}

impl BackendSession for AhSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.idx, s, t)
    }

    fn take_cost(&mut self) -> CostCounters {
        self.q.take_cost()
    }
}

/// The Contraction Hierarchies backend (strongest baseline).
pub struct ChBackend<'a> {
    idx: &'a ChIndex,
}

impl<'a> ChBackend<'a> {
    /// Serves queries from a prebuilt CH index.
    pub fn new(idx: &'a ChIndex) -> Self {
        ChBackend { idx }
    }
}

impl DistanceBackend for ChBackend<'_> {
    fn name(&self) -> &'static str {
        "CH"
    }

    fn num_nodes(&self) -> usize {
        self.idx.hierarchy().num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(ChSession {
            idx: self.idx,
            q: ChQuery::new(),
        })
    }
}

struct ChSession<'a> {
    idx: &'a ChIndex,
    q: ChQuery,
}

impl BackendSession for ChSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.idx, s, t)
    }

    fn take_cost(&mut self) -> CostCounters {
        self.q.take_cost()
    }
}

/// Index-free bidirectional Dijkstra on the plain graph (the floor every
/// index must beat, still exact).
pub struct DijkstraBackend<'a> {
    graph: &'a Graph,
}

impl<'a> DijkstraBackend<'a> {
    /// Serves queries straight from the road network, no index.
    pub fn new(graph: &'a Graph) -> Self {
        DijkstraBackend { graph }
    }
}

impl DistanceBackend for DijkstraBackend<'_> {
    fn name(&self) -> &'static str {
        "Dijkstra"
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(DijkstraSession {
            graph: self.graph,
            q: BidirectionalDijkstra::new(),
            scenarios: ScenarioEngine::new(),
        })
    }
}

struct DijkstraSession<'a> {
    graph: &'a Graph,
    q: BidirectionalDijkstra,
    scenarios: ScenarioEngine,
}

impl BackendSession for DijkstraSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.graph, s, t).map(|d| d.length)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.graph, s, t)
    }

    // Batched shapes: one single-source sweep replaces |targets| (or
    // |candidates|) separate bidirectional runs.

    fn one_to_many(&mut self, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
        self.scenarios.one_to_many(self.graph, source, targets)
    }

    fn matrix(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Vec<Vec<Option<u64>>> {
        self.scenarios.matrix(self.graph, sources, targets)
    }

    fn knn(&mut self, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
        self.scenarios.knn(self.graph, source, candidates, k)
    }

    fn via(&mut self, s: NodeId, t: NodeId, candidates: &[NodeId]) -> Option<ViaAnswer> {
        self.scenarios.via(self.graph, s, t, candidates)
    }

    fn take_cost(&mut self) -> CostCounters {
        let mut c = self.q.take_cost();
        c.merge(&self.scenarios.take_cost());
        c
    }
}

/// The hub-labeling backend: distance queries answered from sorted
/// label arrays (no graph search at all), path queries delegated to the
/// AH index — labels certify *lengths*, not edge sequences, so the
/// engine that can unpack an actual route serves `/v1/path`.
pub struct LabelBackend<'a> {
    labels: &'a LabelIndex,
    ah: &'a AhIndex,
}

impl<'a> LabelBackend<'a> {
    /// Serves distances from `labels` and paths from `ah`. Both must
    /// index the same network (same node-id space).
    ///
    /// # Panics
    /// Panics if the two indexes disagree on the node count.
    pub fn new(labels: &'a LabelIndex, ah: &'a AhIndex) -> Self {
        assert_eq!(
            labels.num_nodes(),
            ah.num_nodes(),
            "labels and AH index cover different networks"
        );
        LabelBackend { labels, ah }
    }
}

impl DistanceBackend for LabelBackend<'_> {
    fn name(&self) -> &'static str {
        "labels"
    }

    fn num_nodes(&self) -> usize {
        self.labels.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(LabelSession {
            labels: self.labels,
            ah: self.ah,
            q: AhQuery::new(),
            cost: CostCounters::default(),
        })
    }
}

struct LabelSession<'a> {
    labels: &'a LabelIndex,
    ah: &'a AhIndex,
    q: AhQuery,
    cost: CostCounters,
}

impl BackendSession for LabelSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.labels
            .distance_full_with_cost(s, t, &mut self.cost)
            .map(|d| d.length)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.ah, s, t)
    }

    // Bucket-style batched sweeps (see `ah_labels::scenario`): each
    // target's in-label is bucketed by hub once, then every source
    // scans its out-label once — no per-pair merges.

    fn one_to_many(&mut self, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
        self.labels
            .one_to_many_with_cost(source, targets, &mut self.cost)
    }

    fn matrix(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Vec<Vec<Option<u64>>> {
        self.labels
            .many_to_many_with_cost(sources, targets, &mut self.cost)
    }

    fn knn(&mut self, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
        self.labels
            .knn_with_cost(source, candidates, k, &mut self.cost)
    }

    fn via(&mut self, s: NodeId, t: NodeId, candidates: &[NodeId]) -> Option<ViaAnswer> {
        self.labels
            .via_with_cost(s, t, candidates, &mut self.cost)
            .map(|(poi, to_poi, from_poi)| ViaAnswer {
                poi,
                total: to_poi.saturating_add(from_poi),
                to_poi,
                from_poi,
            })
    }

    fn take_cost(&mut self) -> CostCounters {
        // Label merges plus whatever the AH engine spent on path
        // requests (labels certify lengths, not routes).
        let mut c = self.cost.take();
        c.merge(&self.q.take_cost());
        c
    }
}

/// Wraps any backend and sleeps a fixed delay before each query — a
/// fault-injection stand-in for heavier backends (bigger networks,
/// remote shards). The network edge's CI smoke uses it to make
/// overload deterministic: with a known per-query cost, a burst larger
/// than the admission window *must* shed `429`s.
pub struct DelayBackend<'a> {
    inner: &'a dyn DistanceBackend,
    delay: std::time::Duration,
}

impl<'a> DelayBackend<'a> {
    /// Serves through `inner`, sleeping `delay` before every query.
    pub fn new(inner: &'a dyn DistanceBackend, delay: std::time::Duration) -> Self {
        DelayBackend { inner, delay }
    }
}

impl DistanceBackend for DelayBackend<'_> {
    fn name(&self) -> &'static str {
        // The wrapped backend's identity matters more in reports than
        // the fact of the delay (which callers log separately).
        self.inner.name()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(DelaySession {
            inner: self.inner.make_session(),
            delay: self.delay,
        })
    }
}

struct DelaySession<'a> {
    inner: Box<dyn BackendSession + 'a>,
    delay: std::time::Duration,
}

impl BackendSession for DelaySession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        std::thread::sleep(self.delay);
        self.inner.distance(s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        std::thread::sleep(self.delay);
        self.inner.path(s, t)
    }

    // One delay per scenario *request* (not per internal point query):
    // the wrapped call goes straight to the inner session's batched
    // implementation.

    fn one_to_many(&mut self, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
        std::thread::sleep(self.delay);
        self.inner.one_to_many(source, targets)
    }

    fn matrix(&mut self, sources: &[NodeId], targets: &[NodeId]) -> Vec<Vec<Option<u64>>> {
        std::thread::sleep(self.delay);
        self.inner.matrix(sources, targets)
    }

    fn knn(&mut self, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
        std::thread::sleep(self.delay);
        self.inner.knn(source, candidates, k)
    }

    fn via(&mut self, s: NodeId, t: NodeId, candidates: &[NodeId]) -> Option<ViaAnswer> {
        std::thread::sleep(self.delay);
        self.inner.via(s, t, candidates)
    }

    fn take_cost(&mut self) -> CostCounters {
        self.inner.take_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::BuildConfig;
    use ah_search::dijkstra_distance;

    #[test]
    fn backends_agree_with_oneshot_dijkstra() {
        let g = ah_data::fixtures::lattice(6, 6, 14);
        let ah = AhIndex::build(&g, &BuildConfig::default());
        let ch = ChIndex::build(&g);
        let labels = LabelIndex::build(&g, ch.order());
        let backends: Vec<Box<dyn DistanceBackend>> = vec![
            Box::new(AhBackend::new(&ah)),
            Box::new(ChBackend::new(&ch)),
            Box::new(DijkstraBackend::new(&g)),
            Box::new(LabelBackend::new(&labels, &ah)),
        ];
        for b in &backends {
            assert_eq!(b.num_nodes(), g.num_nodes());
            let mut session = b.make_session();
            for (s, t) in [(0u32, 35u32), (5, 30), (17, 17), (35, 0)] {
                let want = dijkstra_distance(&g, s, t).map(|d| d.length);
                assert_eq!(session.distance(s, t), want, "{} ({s},{t})", b.name());
                if let Some(p) = session.path(s, t) {
                    p.verify(&g).unwrap();
                    assert_eq!(p.dist.length, want.unwrap());
                }
            }
        }
    }

    #[test]
    fn scenario_methods_agree_across_backends() {
        let g = ah_data::fixtures::lattice(6, 6, 14);
        let ah = AhIndex::build(&g, &BuildConfig::default());
        let ch = ChIndex::build(&g);
        let labels = LabelIndex::build(&g, ch.order());
        let backends: Vec<Box<dyn DistanceBackend>> = vec![
            Box::new(AhBackend::new(&ah)),
            Box::new(ChBackend::new(&ch)),
            Box::new(DijkstraBackend::new(&g)),
            Box::new(LabelBackend::new(&labels, &ah)),
        ];
        let pois = ah_search::PoiSet::synthetic(g.num_nodes(), 4, 77);
        let cands = pois.category(1);
        assert!(!cands.is_empty());
        let sources = [0u32, 7, 20];
        let targets = [3u32, 35, 18, 0];
        let reference_backend = DijkstraBackend::new(&g);
        let mut reference = reference_backend.make_session();
        let want_matrix = reference.matrix(&sources, &targets);
        let want_knn = reference.knn(2, cands, 3);
        let want_via = reference.via(0, 35, cands);
        assert!(want_via.is_some());
        for b in &backends {
            let mut session = b.make_session();
            assert_eq!(session.matrix(&sources, &targets), want_matrix, "{}", b.name());
            assert_eq!(session.one_to_many(0, &targets), want_matrix[0], "{}", b.name());
            assert_eq!(session.knn(2, cands, 3), want_knn, "{}", b.name());
            assert_eq!(session.via(0, 35, cands), want_via, "{}", b.name());
        }
    }

    #[test]
    fn delay_backend_answers_identically_just_slower() {
        let g = ah_data::fixtures::ring(10);
        let plain = DijkstraBackend::new(&g);
        let delayed = DelayBackend::new(&plain, std::time::Duration::from_millis(2));
        assert_eq!(delayed.num_nodes(), 10);
        let mut s = delayed.make_session();
        let t0 = std::time::Instant::now();
        assert_eq!(
            s.distance(0, 5),
            dijkstra_distance(&g, 0, 5).map(|d| d.length)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(2));
    }

    #[test]
    fn backend_is_object_safe_and_shareable() {
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_sync::<dyn DistanceBackend>();
    }
}
