//! Sharded LRU cache for distance and via-detour results.
//!
//! Real serving traffic repeats itself (commuters, popular POIs), so the
//! server consults this cache before touching the index. The key packs a
//! query *kind* tag, the `(source, target)` pair and — for via queries —
//! the POI category into two `u64` words, so distance answers and
//! via-detour answers for the same pair never collide; the value is the
//! query answer, including *negative* answers (unreachable pairs),
//! encoded as a sentinel so a miss is never confused with "known
//! unreachable". Via entries additionally carry the winning POI id in a
//! 32-bit aux word.
//!
//! The map is split into [`NUM_SHARDS`] independently locked shards
//! (selected by a Fibonacci hash of the pair) so concurrent workers rarely
//! contend on the same mutex. Each shard is an exact LRU: a `HashMap` into
//! an arena of entries threaded on an intrusive doubly-linked list, giving
//! O(1) lookup, insert, touch and eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ah_graph::NodeId;

/// Number of independently locked shards (power of two).
pub const NUM_SHARDS: usize = 16;

/// Bits selecting the shard; derived so changing [`NUM_SHARDS`] keeps the
/// selector in range.
const SHARD_BITS: u32 = NUM_SHARDS.trailing_zeros();
const _: () = assert!(NUM_SHARDS.is_power_of_two());

/// Sentinel slot index for "none" in the intrusive list.
const NIL: u32 = u32::MAX;

/// Encoding of `Option<u64>` distances: `u64::MAX` never occurs as a real
/// distance (weights are `u32`, paths are bounded), so it encodes `None`.
const UNREACHABLE: u64 = u64::MAX;

/// Key-space tag for plain `(s, t)` distance answers.
const KIND_DISTANCE: u64 = 0;
/// Key-space tag for via-detour answers (`(s, t)` plus POI category).
const KIND_VIA: u64 = 1;

/// Packs a query identity into the two-word cache key: the kind tag
/// shares a word with the source, the sub-key (via's POI category, 0
/// for distances) shares one with the target. Node ids and categories
/// are 32-bit, so the packing is collision-free across kinds.
#[inline]
fn pack(kind: u64, s: NodeId, t: NodeId, sub: u32) -> (u64, u64) {
    ((kind << 32) | s as u64, ((sub as u64) << 32) | t as u64)
}

struct Entry {
    key: (u64, u64),
    value: u64,
    /// Kind-specific payload word (via: the winning POI id).
    aux: u32,
    prev: u32,
    next: u32,
}

/// One exact-LRU shard.
struct Shard {
    map: HashMap<(u64, u64), u32>,
    arena: Vec<Entry>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let e = &self.arena[i as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.arena[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: u32) {
        let old = self.head;
        {
            let e = &mut self.arena[i as usize];
            e.prev = NIL;
            e.next = old;
        }
        if old != NIL {
            self.arena[old as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn get(&mut self, key: (u64, u64)) -> Option<(u64, u32)> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.link_front(i);
        let e = &self.arena[i as usize];
        Some((e.value, e.aux))
    }

    fn insert(&mut self, key: (u64, u64), value: u64, aux: u32) {
        if let Some(&i) = self.map.get(&key) {
            let e = &mut self.arena[i as usize];
            e.value = value;
            e.aux = aux;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        let i = if self.arena.len() < self.capacity {
            self.arena.push(Entry {
                key,
                value,
                aux,
                prev: NIL,
                next: NIL,
            });
            (self.arena.len() - 1) as u32
        } else {
            // Evict the least recently used entry and reuse its slot.
            let i = self.tail;
            debug_assert_ne!(i, NIL, "capacity >= 1");
            self.unlink(i);
            let old_key = self.arena[i as usize].key;
            self.map.remove(&old_key);
            let e = &mut self.arena[i as usize];
            e.key = key;
            e.value = value;
            e.aux = aux;
            i
        };
        self.map.insert(key, i);
        self.link_front(i);
    }
}

/// A sharded, exact-LRU `(source, target) → distance` cache.
pub struct DistanceCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Bumped by [`DistanceCache::clear`] *before* the shards are wiped,
    /// so an epoch captured earlier can never stamp an entry that
    /// survives the wipe (see [`DistanceCache::put_at`]).
    epoch: AtomicU64,
}

impl DistanceCache {
    /// Creates a cache holding roughly `capacity` entries in total
    /// (distributed over [`NUM_SHARDS`] shards, each at least 1 entry).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(NUM_SHARDS).max(1);
        DistanceCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current clear-epoch. Capture it *before* computing an answer
    /// and hand it back to [`DistanceCache::put_at`]: if the cache was
    /// cleared in between (index swap), the stale answer is dropped
    /// instead of poisoning the new generation.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    #[inline]
    fn shard_for(&self, key: (u64, u64)) -> &Mutex<Shard> {
        // Fibonacci hashing over the mixed key words: cheap and well mixed.
        let packed = key.0 ^ key.1.rotate_left(31);
        let h = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> (64 - SHARD_BITS)) as usize]
    }

    /// Raw keyed lookup with hit/miss accounting.
    fn get_raw(&self, key: (u64, u64)) -> Option<(u64, u32)> {
        let got = self.shard_for(key).lock().unwrap().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Raw keyed insert honoring the clear-epoch protocol (see
    /// [`DistanceCache::put_at`]).
    fn put_raw_at(&self, key: (u64, u64), value: u64, aux: u32, epoch: u64) -> bool {
        let mut shard = self.shard_for(key).lock().unwrap();
        if self.epoch.load(Ordering::SeqCst) != epoch {
            return false;
        }
        shard.insert(key, value, aux);
        true
    }

    /// Cached answer for `(s, t)`: `Some(Some(d))` reachable with distance
    /// `d`, `Some(None)` known unreachable, `None` not cached.
    pub fn get(&self, s: NodeId, t: NodeId) -> Option<Option<u64>> {
        match self.get_raw(pack(KIND_DISTANCE, s, t, 0)) {
            Some((UNREACHABLE, _)) => Some(None),
            Some((d, _)) => Some(Some(d)),
            None => None,
        }
    }

    /// Records the answer for `(s, t)`, including unreachability.
    pub fn put(&self, s: NodeId, t: NodeId, distance: Option<u64>) {
        let value = distance.unwrap_or(UNREACHABLE);
        let key = pack(KIND_DISTANCE, s, t, 0);
        self.shard_for(key).lock().unwrap().insert(key, value, 0);
    }

    /// Cached via-detour answer for `(s, t)` through POI category `cat`:
    /// `Some(Some((poi, total)))` a best POI exists, `Some(None)` known
    /// to have no reachable POI, `None` not cached. Lives in a key space
    /// disjoint from plain distances, so a via answer for `(s, t)` never
    /// shadows the point-to-point distance (or vice versa).
    pub fn get_via(&self, s: NodeId, t: NodeId, cat: u32) -> Option<Option<(NodeId, u64)>> {
        match self.get_raw(pack(KIND_VIA, s, t, cat)) {
            Some((UNREACHABLE, _)) => Some(None),
            Some((total, poi)) => Some(Some((poi, total))),
            None => None,
        }
    }

    /// Records the via-detour answer (best POI and total length, or
    /// `None` when no category member connects `s` to `t`) under the
    /// epoch protocol of [`DistanceCache::put_at`].
    pub fn put_via_at(
        &self,
        s: NodeId,
        t: NodeId,
        cat: u32,
        answer: Option<(NodeId, u64)>,
        epoch: u64,
    ) -> bool {
        let (value, aux) = match answer {
            Some((poi, total)) => (total, poi),
            None => (UNREACHABLE, 0),
        };
        self.put_raw_at(pack(KIND_VIA, s, t, cat), value, aux, epoch)
    }

    /// Records the answer for `(s, t)` only if no [`DistanceCache::clear`]
    /// happened since `epoch` was captured (via [`DistanceCache::epoch`]).
    ///
    /// This closes the swap-time race `put` cannot: a worker that read
    /// the old index, computed, and got descheduled could otherwise
    /// insert its old-generation answer *after* the swap cleared the
    /// cache. The epoch is re-checked **under the shard lock**; because
    /// `clear` bumps the epoch before taking any shard lock, a stale
    /// writer either inserts before the wipe (entry is wiped) or sees
    /// the new epoch and drops the answer. Returns whether the entry
    /// was stored.
    pub fn put_at(&self, s: NodeId, t: NodeId, distance: Option<u64>, epoch: u64) -> bool {
        let value = distance.unwrap_or(UNREACHABLE);
        self.put_raw_at(pack(KIND_DISTANCE, s, t, 0), value, 0, epoch)
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Drops every cached entry (hit/miss counters are kept — they
    /// describe traffic, not contents). Used when the index underneath
    /// the cache is swapped: answers computed against the old index must
    /// not leak into the new serving generation.
    ///
    /// The epoch is bumped *before* the first shard is wiped — the
    /// ordering [`DistanceCache::put_at`] relies on.
    pub fn clear(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.map.clear();
            s.arena.clear();
            s.head = NIL;
            s.tail = NIL;
        }
    }

    /// Entries currently cached, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Whether no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_roundtrip() {
        let c = DistanceCache::new(64);
        assert_eq!(c.get(1, 2), None);
        c.put(1, 2, Some(99));
        assert_eq!(c.get(1, 2), Some(Some(99)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_cached_distinctly() {
        let c = DistanceCache::new(64);
        c.put(3, 4, None);
        assert_eq!(c.get(3, 4), Some(None), "known unreachable, not a miss");
    }

    #[test]
    fn directional_keys_are_distinct() {
        let c = DistanceCache::new(64);
        c.put(1, 2, Some(10));
        c.put(2, 1, Some(20));
        assert_eq!(c.get(1, 2), Some(Some(10)));
        assert_eq!(c.get(2, 1), Some(Some(20)));
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        // Capacity 16 → 1 entry per shard. Two keys in the same shard:
        // the second insert evicts the first.
        let c = DistanceCache::new(NUM_SHARDS);
        // Find two keys landing in the same shard by probing.
        let mut same: Option<((u32, u32), (u32, u32))> = None;
        'outer: for a in 0..64u32 {
            for b in 0..64u32 {
                if (a, 0) != (b, 1) {
                    let pa = std::ptr::from_ref(c.shard_for(pack(KIND_DISTANCE, a, 0, 0)));
                    let pb = std::ptr::from_ref(c.shard_for(pack(KIND_DISTANCE, b, 1, 0)));
                    if pa == pb {
                        same = Some(((a, 0), (b, 1)));
                        break 'outer;
                    }
                }
            }
        }
        let (k1, k2) = same.expect("two keys must collide among 4096 probes");
        c.put(k1.0, k1.1, Some(1));
        c.put(k2.0, k2.1, Some(2));
        assert_eq!(c.get(k2.0, k2.1), Some(Some(2)));
        assert_eq!(c.get(k1.0, k1.1), None, "evicted by LRU");
    }

    #[test]
    fn touch_on_get_protects_hot_entries() {
        let mut shard = Shard::new(2);
        shard.insert((1, 1), 11, 0);
        shard.insert((2, 2), 22, 0);
        assert_eq!(shard.get((1, 1)), Some((11, 0))); // touch: (2,2) is now LRU
        shard.insert((3, 3), 33, 0); // evicts (2,2)
        assert_eq!(shard.get((1, 1)), Some((11, 0)));
        assert_eq!(shard.get((2, 2)), None);
        assert_eq!(shard.get((3, 3)), Some((33, 0)));
    }

    #[test]
    fn overwrite_updates_value_in_place() {
        let mut shard = Shard::new(2);
        shard.insert((1, 1), 11, 5);
        shard.insert((1, 1), 12, 6);
        assert_eq!(shard.get((1, 1)), Some((12, 6)));
        assert_eq!(shard.map.len(), 1);
    }

    #[test]
    fn via_and_distance_keys_never_collide() {
        let c = DistanceCache::new(64);
        c.put(5, 9, Some(100));
        let e = c.epoch();
        assert!(c.put_via_at(5, 9, 0, Some((42, 250)), e));
        assert!(c.put_via_at(5, 9, 3, Some((77, 300)), e));
        assert_eq!(c.get(5, 9), Some(Some(100)), "distance untouched by via");
        assert_eq!(c.get_via(5, 9, 0), Some(Some((42, 250))));
        assert_eq!(c.get_via(5, 9, 3), Some(Some((77, 300))), "per-category keys");
        assert_eq!(c.get_via(5, 9, 1), None, "other categories miss");
    }

    #[test]
    fn via_negative_answers_cache_distinctly() {
        let c = DistanceCache::new(64);
        assert_eq!(c.get_via(1, 2, 0), None, "cold miss");
        assert!(c.put_via_at(1, 2, 0, None, c.epoch()));
        assert_eq!(c.get_via(1, 2, 0), Some(None), "known no-POI, not a miss");
        c.clear();
        assert!(!c.put_via_at(1, 2, 0, Some((3, 4)), 0), "stale epoch refused");
        assert_eq!(c.get_via(1, 2, 0), None);
    }

    #[test]
    fn put_at_with_current_epoch_stores() {
        let c = DistanceCache::new(64);
        let e = c.epoch();
        assert!(c.put_at(1, 2, Some(5), e));
        assert_eq!(c.get(1, 2), Some(Some(5)));
    }

    #[test]
    fn put_at_after_clear_drops_the_stale_answer() {
        let c = DistanceCache::new(64);
        let e = c.epoch();
        // The swap happens between compute and insert:
        c.clear();
        assert!(!c.put_at(1, 2, Some(5), e), "stale insert must be refused");
        assert_eq!(c.get(1, 2), None, "nothing leaked into the new epoch");
        // A writer that captured the *new* epoch stores fine.
        assert!(c.put_at(1, 2, Some(7), c.epoch()));
        assert_eq!(c.get(1, 2), Some(Some(7)));
    }

    #[test]
    fn clear_bumps_epoch_monotonically() {
        let c = DistanceCache::new(16);
        let e0 = c.epoch();
        c.clear();
        c.clear();
        assert_eq!(c.epoch(), e0 + 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = DistanceCache::new(256);
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let (s, t) = (i % 32, (i + w) % 32);
                        if let Some(v) = c.get(s, t) {
                            // Any cached value must be the canonical one.
                            assert_eq!(v, Some((s as u64) * 1000 + t as u64));
                        }
                        c.put(s, t, Some((s as u64) * 1000 + t as u64));
                    }
                });
            }
        });
        assert!(c.len() <= 256 + NUM_SHARDS);
        assert!(c.hits() + c.misses() >= 800);
    }
}
