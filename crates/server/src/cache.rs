//! Sharded LRU cache for distance results.
//!
//! Real serving traffic repeats itself (commuters, popular POIs), so the
//! server consults this cache before touching the index. The key is the
//! `(source, target)` pair; the value is the query answer, including
//! *negative* answers (unreachable pairs), encoded as a sentinel so a miss
//! is never confused with "known unreachable".
//!
//! The map is split into [`NUM_SHARDS`] independently locked shards
//! (selected by a Fibonacci hash of the pair) so concurrent workers rarely
//! contend on the same mutex. Each shard is an exact LRU: a `HashMap` into
//! an arena of entries threaded on an intrusive doubly-linked list, giving
//! O(1) lookup, insert, touch and eviction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ah_graph::NodeId;

/// Number of independently locked shards (power of two).
pub const NUM_SHARDS: usize = 16;

/// Bits selecting the shard; derived so changing [`NUM_SHARDS`] keeps the
/// selector in range.
const SHARD_BITS: u32 = NUM_SHARDS.trailing_zeros();
const _: () = assert!(NUM_SHARDS.is_power_of_two());

/// Sentinel slot index for "none" in the intrusive list.
const NIL: u32 = u32::MAX;

/// Encoding of `Option<u64>` distances: `u64::MAX` never occurs as a real
/// distance (weights are `u32`, paths are bounded), so it encodes `None`.
const UNREACHABLE: u64 = u64::MAX;

struct Entry {
    key: (NodeId, NodeId),
    value: u64,
    prev: u32,
    next: u32,
}

/// One exact-LRU shard.
struct Shard {
    map: HashMap<(NodeId, NodeId), u32>,
    arena: Vec<Entry>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            arena: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let e = &self.arena[i as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.arena[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.arena[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn link_front(&mut self, i: u32) {
        let old = self.head;
        {
            let e = &mut self.arena[i as usize];
            e.prev = NIL;
            e.next = old;
        }
        if old != NIL {
            self.arena[old as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn get(&mut self, key: (NodeId, NodeId)) -> Option<u64> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.link_front(i);
        Some(self.arena[i as usize].value)
    }

    fn insert(&mut self, key: (NodeId, NodeId), value: u64) {
        if let Some(&i) = self.map.get(&key) {
            self.arena[i as usize].value = value;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        let i = if self.arena.len() < self.capacity {
            self.arena.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            (self.arena.len() - 1) as u32
        } else {
            // Evict the least recently used entry and reuse its slot.
            let i = self.tail;
            debug_assert_ne!(i, NIL, "capacity >= 1");
            self.unlink(i);
            let old_key = self.arena[i as usize].key;
            self.map.remove(&old_key);
            let e = &mut self.arena[i as usize];
            e.key = key;
            e.value = value;
            i
        };
        self.map.insert(key, i);
        self.link_front(i);
    }
}

/// A sharded, exact-LRU `(source, target) → distance` cache.
pub struct DistanceCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Bumped by [`DistanceCache::clear`] *before* the shards are wiped,
    /// so an epoch captured earlier can never stamp an entry that
    /// survives the wipe (see [`DistanceCache::put_at`]).
    epoch: AtomicU64,
}

impl DistanceCache {
    /// Creates a cache holding roughly `capacity` entries in total
    /// (distributed over [`NUM_SHARDS`] shards, each at least 1 entry).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(NUM_SHARDS).max(1);
        DistanceCache {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current clear-epoch. Capture it *before* computing an answer
    /// and hand it back to [`DistanceCache::put_at`]: if the cache was
    /// cleared in between (index swap), the stale answer is dropped
    /// instead of poisoning the new generation.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    #[inline]
    fn shard_for(&self, key: (NodeId, NodeId)) -> &Mutex<Shard> {
        // Fibonacci hashing over the packed pair: cheap and well mixed.
        let packed = ((key.0 as u64) << 32) | key.1 as u64;
        let h = packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> (64 - SHARD_BITS)) as usize]
    }

    /// Cached answer for `(s, t)`: `Some(Some(d))` reachable with distance
    /// `d`, `Some(None)` known unreachable, `None` not cached.
    pub fn get(&self, s: NodeId, t: NodeId) -> Option<Option<u64>> {
        let got = self.shard_for((s, t)).lock().unwrap().get((s, t));
        match got {
            Some(UNREACHABLE) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(None)
            }
            Some(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Some(d))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records the answer for `(s, t)`, including unreachability.
    pub fn put(&self, s: NodeId, t: NodeId, distance: Option<u64>) {
        let value = distance.unwrap_or(UNREACHABLE);
        self.shard_for((s, t)).lock().unwrap().insert((s, t), value);
    }

    /// Records the answer for `(s, t)` only if no [`DistanceCache::clear`]
    /// happened since `epoch` was captured (via [`DistanceCache::epoch`]).
    ///
    /// This closes the swap-time race `put` cannot: a worker that read
    /// the old index, computed, and got descheduled could otherwise
    /// insert its old-generation answer *after* the swap cleared the
    /// cache. The epoch is re-checked **under the shard lock**; because
    /// `clear` bumps the epoch before taking any shard lock, a stale
    /// writer either inserts before the wipe (entry is wiped) or sees
    /// the new epoch and drops the answer. Returns whether the entry
    /// was stored.
    pub fn put_at(&self, s: NodeId, t: NodeId, distance: Option<u64>, epoch: u64) -> bool {
        let value = distance.unwrap_or(UNREACHABLE);
        let mut shard = self.shard_for((s, t)).lock().unwrap();
        if self.epoch.load(Ordering::SeqCst) != epoch {
            return false;
        }
        shard.insert((s, t), value);
        true
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Drops every cached entry (hit/miss counters are kept — they
    /// describe traffic, not contents). Used when the index underneath
    /// the cache is swapped: answers computed against the old index must
    /// not leak into the new serving generation.
    ///
    /// The epoch is bumped *before* the first shard is wiped — the
    /// ordering [`DistanceCache::put_at`] relies on.
    pub fn clear(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.map.clear();
            s.arena.clear();
            s.head = NIL;
            s.tail = NIL;
        }
    }

    /// Entries currently cached, summed over shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Whether no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_roundtrip() {
        let c = DistanceCache::new(64);
        assert_eq!(c.get(1, 2), None);
        c.put(1, 2, Some(99));
        assert_eq!(c.get(1, 2), Some(Some(99)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unreachable_is_cached_distinctly() {
        let c = DistanceCache::new(64);
        c.put(3, 4, None);
        assert_eq!(c.get(3, 4), Some(None), "known unreachable, not a miss");
    }

    #[test]
    fn directional_keys_are_distinct() {
        let c = DistanceCache::new(64);
        c.put(1, 2, Some(10));
        c.put(2, 1, Some(20));
        assert_eq!(c.get(1, 2), Some(Some(10)));
        assert_eq!(c.get(2, 1), Some(Some(20)));
    }

    #[test]
    fn lru_evicts_oldest_within_a_shard() {
        // Capacity 16 → 1 entry per shard. Two keys in the same shard:
        // the second insert evicts the first.
        let c = DistanceCache::new(NUM_SHARDS);
        // Find two keys landing in the same shard by probing.
        let mut same: Option<((u32, u32), (u32, u32))> = None;
        'outer: for a in 0..64u32 {
            for b in 0..64u32 {
                if (a, 0) != (b, 1) {
                    let pa = std::ptr::from_ref(c.shard_for((a, 0)));
                    let pb = std::ptr::from_ref(c.shard_for((b, 1)));
                    if pa == pb {
                        same = Some(((a, 0), (b, 1)));
                        break 'outer;
                    }
                }
            }
        }
        let (k1, k2) = same.expect("two keys must collide among 4096 probes");
        c.put(k1.0, k1.1, Some(1));
        c.put(k2.0, k2.1, Some(2));
        assert_eq!(c.get(k2.0, k2.1), Some(Some(2)));
        assert_eq!(c.get(k1.0, k1.1), None, "evicted by LRU");
    }

    #[test]
    fn touch_on_get_protects_hot_entries() {
        let mut shard = Shard::new(2);
        shard.insert((1, 1), 11);
        shard.insert((2, 2), 22);
        assert_eq!(shard.get((1, 1)), Some(11)); // touch: (2,2) is now LRU
        shard.insert((3, 3), 33); // evicts (2,2)
        assert_eq!(shard.get((1, 1)), Some(11));
        assert_eq!(shard.get((2, 2)), None);
        assert_eq!(shard.get((3, 3)), Some(33));
    }

    #[test]
    fn overwrite_updates_value_in_place() {
        let mut shard = Shard::new(2);
        shard.insert((1, 1), 11);
        shard.insert((1, 1), 12);
        assert_eq!(shard.get((1, 1)), Some(12));
        assert_eq!(shard.map.len(), 1);
    }

    #[test]
    fn put_at_with_current_epoch_stores() {
        let c = DistanceCache::new(64);
        let e = c.epoch();
        assert!(c.put_at(1, 2, Some(5), e));
        assert_eq!(c.get(1, 2), Some(Some(5)));
    }

    #[test]
    fn put_at_after_clear_drops_the_stale_answer() {
        let c = DistanceCache::new(64);
        let e = c.epoch();
        // The swap happens between compute and insert:
        c.clear();
        assert!(!c.put_at(1, 2, Some(5), e), "stale insert must be refused");
        assert_eq!(c.get(1, 2), None, "nothing leaked into the new epoch");
        // A writer that captured the *new* epoch stores fine.
        assert!(c.put_at(1, 2, Some(7), c.epoch()));
        assert_eq!(c.get(1, 2), Some(Some(7)));
    }

    #[test]
    fn clear_bumps_epoch_monotonically() {
        let c = DistanceCache::new(16);
        let e0 = c.epoch();
        c.clear();
        c.clear();
        assert_eq!(c.epoch(), e0 + 2);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c = DistanceCache::new(256);
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let (s, t) = (i % 32, (i + w) % 32);
                        if let Some(v) = c.get(s, t) {
                            // Any cached value must be the canonical one.
                            assert_eq!(v, Some((s as u64) * 1000 + t as u64));
                        }
                        c.put(s, t, Some((s as u64) * 1000 + t as u64));
                    }
                });
            }
        });
        assert!(c.len() <= 256 + NUM_SHARDS);
        assert!(c.hits() + c.misses() >= 800);
    }
}
