//! **Concurrent query serving** over the workspace's shortest-path indexes.
//!
//! The paper's claim is that Arterial Hierarchies make exact road-network
//! queries fast enough for *practice* — and practice means sustained
//! concurrent traffic, not one query at a time from a figure binary. This
//! crate is the serving layer the ROADMAP's production north star asks
//! for: many threads multiplexing queries over one immutable index.
//!
//! Four pieces compose:
//!
//! * [`DistanceBackend`] / [`BackendSession`] — the method abstraction.
//!   A backend is the shared `Sync` index half; a session is the mutable
//!   per-worker scratch (heaps, stamped arrays) created once per thread.
//!   [`AhBackend`], [`ChBackend`] and [`DijkstraBackend`] wrap the AH
//!   index, the CH hierarchy and plain bidirectional Dijkstra, so the
//!   serving engine — and every test and benchmark built on it — treats
//!   the methods interchangeably.
//! * [`Server`] — the engine: a `std::thread::scope` worker pool draining
//!   a [`BoundedQueue`] in batches, with a sharded LRU [`DistanceCache`]
//!   consulted before any search runs. The feeder blocks when the bounded
//!   queue fills, making every run closed-loop.
//! * [`ServerMetrics`] — lock-free telemetry over the `ah_obs`
//!   substrate: log₂-bucket latency and queue-wait histograms
//!   (p50/p95/p99), cache hit rates, aggregate QPS — all `Arc`-shared
//!   metrics registrable in an [`ah_obs::Registry`] for one unified
//!   Prometheus render, with deterministic 1-in-N request tracing
//!   ([`ah_obs::Tracer`]) threaded through the queue via [`Job`]
//!   (see `docs/OBSERVABILITY.md`).
//! * [`SnapshotServer`] — the lifecycle layer over `ah_store` snapshots:
//!   [`Server::from_snapshot`] restarts a server from a persisted index
//!   without paying the build, and an atomic index swap (with cache
//!   invalidation) reindexes under live traffic with zero downtime.
//! * [`ShardedServer`] — the scale-out layer over `ah_shard`: one
//!   worker pool (queue + LRU + metrics) *per region shard*, requests
//!   routed by the source node's grid region key, cross-shard answers
//!   composed exactly through boundary nodes. `docs/SHARDING.md` is the
//!   operator's guide.
//!
//! ```
//! use ah_core::{AhIndex, BuildConfig};
//! use ah_server::{AhBackend, Request, Server, ServerConfig};
//!
//! let g = ah_data::fixtures::lattice(6, 6, 12);
//! let idx = AhIndex::build(&g, &BuildConfig::default());
//! let server = Server::new(ServerConfig::with_workers(4));
//! let requests: Vec<Request> = (0..64)
//!     .map(|i| Request::distance(i, (i % 36) as u32, ((i * 5 + 2) % 36) as u32))
//!     .collect();
//! let report = server.run(&AhBackend::new(&idx), &requests);
//! assert_eq!(report.responses.len(), 64);
//! assert!(report.snapshot.qps > 0.0);
//! ```

mod backend;
mod cache;
mod metrics;
mod queue;
mod reload;
mod server;
mod sharded;
mod snapshot;

pub use backend::{
    AhBackend, BackendSession, ChBackend, DelayBackend, DijkstraBackend, DistanceBackend,
    LabelBackend,
};
pub use cache::{DistanceCache, NUM_SHARDS};
pub use metrics::{CostMetrics, LatencyHistogram, MetricsSnapshot, ServerMetrics, COST_KIND_NAMES};
pub use queue::{BoundedQueue, TryPushError};
pub use server::{
    trace_kind, Job, MatrixRequest, QueryKind, Request, Response, RunReport, ScenarioResult,
    Server, ServerConfig,
};

// Re-exported so scenario consumers (the edge, workloads, benches) can
// name the POI wire contract and the via answer without depending on
// `ah_search` directly.
pub use ah_search::{PoiSet, ScenarioEngine, ViaAnswer, POI_CATEGORIES, POI_SEED};

// Re-exported so serving-layer callers (the edge, the bench bins) can
// configure tracing and inspect spans without naming `ah_obs` as a
// separate dependency.
pub use ah_obs::{
    now_ns, CostCounters, Registry, SloPolicy, SloStatus, SloWindows, Span, SpanRecord, Stage,
    TraceConfig, Tracer, WindowStats, COST_FIELD_NAMES, NUM_COST_FIELDS,
};
pub use sharded::{
    ShardLaneReport, ShardedBackend, ShardedRunReport, ShardedServer, ShardedServerConfig,
};
pub use reload::{DeltaReloader, ReloadError, ReloadOutcome};
pub use snapshot::{SnapshotBackend, SnapshotServer};
