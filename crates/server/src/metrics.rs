//! Serving telemetry: latency histograms, cache counters, throughput.
//!
//! Workers record each query's wall-clock latency into a fixed set of
//! log-spaced buckets (`bucket = ⌊log₂ ns⌋`, 64 buckets cover 1 ns … 580
//! years) using only relaxed atomic increments — no locks on the hot path,
//! no per-query allocation, and safe to share by reference across the
//! worker pool. Quantiles (p50/p95/p99) are then read off the cumulative
//! bucket counts; the log-2 bucketing bounds the relative error of any
//! reported quantile by 2×, which is plenty to compare backends and thread
//! counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ latency buckets.
const BUCKETS: usize = 64;

/// A fixed-bucket, lock-free latency histogram over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket(ns: u64) -> usize {
        // ⌊log₂ ns⌋, with 0 and 1 ns in bucket 0.
        (64 - ns.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one observation (relaxed atomics; callable from any thread).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.counts[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// geometric midpoint of the first bucket whose cumulative count
    /// reaches `q · total`. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                // Bucket b spans [2^b, 2^(b+1)); report its geometric mean.
                let lo = (1u64 << b) as f64;
                return lo * std::f64::consts::SQRT_2;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.total_ns
            .fetch_add(other.total_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Shared serving counters, updated by all workers.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Latency of every query (cache hits included — they are part of the
    /// service-time distribution a client observes).
    pub latency: LatencyHistogram,
    /// Distance queries answered from the cache. Path requests never
    /// probe the cache and are excluded from both counters, so the
    /// hit-rate here agrees with the cache's own accounting.
    pub cache_hits: AtomicU64,
    /// Distance queries that went to the backend.
    pub cache_misses: AtomicU64,
    /// Requests refused at admission because the bounded queue was full
    /// (the edge answers these with 429). Always 0 for closed-loop runs,
    /// whose feeder blocks instead of rejecting.
    pub rejected: AtomicU64,
    /// Deepest the request queue has been — saturation headroom. A
    /// high-water mark at the queue's capacity means admission control
    /// engaged (or was one request away from engaging).
    pub queue_high_water: AtomicU64,
    /// Queue depth when the metrics were last sampled (a gauge, not a
    /// counter; 0 after a drained run).
    pub queue_depth: AtomicU64,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another metrics object's counts into this one (used to roll a
    /// per-run measurement into the server's lifetime totals). Counters
    /// add; the queue high-water takes the max of the two marks and the
    /// depth gauge takes the other's (more recent) sample.
    pub fn merge_from(&self, other: &ServerMetrics) {
        self.latency.merge(&other.latency);
        self.cache_hits
            .fetch_add(other.cache_hits.load(Ordering::Relaxed), Ordering::Relaxed);
        self.cache_misses
            .fetch_add(other.cache_misses.load(Ordering::Relaxed), Ordering::Relaxed);
        self.rejected
            .fetch_add(other.rejected.load(Ordering::Relaxed), Ordering::Relaxed);
        self.queue_high_water.fetch_max(
            other.queue_high_water.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.queue_depth
            .store(other.queue_depth.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Folds a queue's saturation state into the metrics: the depth
    /// gauge is overwritten, the high-water mark maxed, and the
    /// rejected counter **added**. Call exactly once per queue, at the
    /// end of its life (a closed-loop run, one edge `serve`): adding
    /// rather than storing means a server reused across several queues
    /// accumulates rejections instead of forgetting earlier runs'.
    pub fn record_queue<T: Send>(&self, queue: &crate::BoundedQueue<T>) {
        self.queue_depth
            .store(queue.len() as u64, Ordering::Relaxed);
        self.queue_high_water
            .fetch_max(queue.high_water() as u64, Ordering::Relaxed);
        self.rejected.fetch_add(queue.rejected(), Ordering::Relaxed);
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self, wall_secs: f64) -> MetricsSnapshot {
        let count = self.latency.count();
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        MetricsSnapshot {
            queries: count,
            wall_secs,
            qps: if wall_secs > 0.0 {
                count as f64 / wall_secs
            } else {
                0.0
            },
            mean_us: self.latency.mean_ns() / 1e3,
            p50_us: self.latency.quantile_ns(0.50) / 1e3,
            p95_us: self.latency.quantile_ns(0.95) / 1e3,
            p99_us: self.latency.quantile_ns(0.99) / 1e3,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`ServerMetrics`] plus derived rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries served.
    pub queries: u64,
    /// Wall-clock duration of the measured run, in seconds.
    pub wall_secs: f64,
    /// Aggregate throughput over the run (queries / wall second).
    pub qps: f64,
    /// Mean per-query latency, microseconds.
    pub mean_us: f64,
    /// Median per-query latency, microseconds (log₂-bucket resolution).
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Distance queries answered from cache.
    pub cache_hits: u64,
    /// Distance queries sent to the backend.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, over distance queries
    /// (the only kind that probes the cache).
    pub cache_hit_rate: f64,
    /// Requests refused at admission (bounded queue full → 429 at the
    /// edge). 0 for closed-loop runs.
    pub rejected: u64,
    /// Deepest the request queue has been.
    pub queue_high_water: u64,
    /// Queue depth at sampling time (0 after a drained run).
    pub queue_depth: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object (hand-rolled: the workspace
    /// serde is an offline stub, see `vendor/serde`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"queries\":{},\"wall_secs\":{:.6},\"qps\":{:.1},",
                "\"mean_us\":{:.3},\"p50_us\":{:.3},\"p95_us\":{:.3},",
                "\"p99_us\":{:.3},\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{:.4},\"rejected\":{},",
                "\"queue_high_water\":{},\"queue_depth\":{}}}"
            ),
            self.queries,
            self.wall_secs,
            self.qps,
            self.mean_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.rejected,
            self.queue_high_water,
            self.queue_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        // Median observation is 300 ns → bucket (256, 512]; within 2×.
        assert!(p50 >= 150.0 && p50 <= 600.0, "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 5_000.0 && p99 <= 20_000.0, "p99 = {p99}");
        assert!((h.mean_ns() - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), 0.0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(100);
        b.record_ns(1000);
        b.record_ns(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean_ns() - 3100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 1..=1000u64 {
                        h.record_ns(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_derives_rates_and_json() {
        let m = ServerMetrics::new();
        m.latency.record_ns(1_000);
        m.latency.record_ns(2_000);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        let s = m.snapshot(2.0);
        assert_eq!(s.queries, 2);
        assert!((s.qps - 1.0).abs() < 1e-12);
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries\":2"));
        assert!(json.contains("\"cache_hit_rate\":0.5000"));
        assert!(json.contains("\"rejected\":0"));
        assert!(json.contains("\"queue_high_water\":0"));
    }

    #[test]
    fn record_queue_samples_saturation() {
        let q: crate::BoundedQueue<u8> = crate::BoundedQueue::new(2);
        q.push(1);
        q.push(2);
        let _ = q.try_push(3); // rejected
        let m = ServerMetrics::new();
        m.record_queue(&q);
        let s = m.snapshot(1.0);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_high_water, 2);
        assert_eq!(s.rejected, 1);

        // Merging keeps the deeper high-water mark and adds rejections.
        let total = ServerMetrics::new();
        total.queue_high_water.store(5, Ordering::Relaxed);
        total.merge_from(&m);
        assert_eq!(total.queue_high_water.load(Ordering::Relaxed), 5);
        assert_eq!(total.rejected.load(Ordering::Relaxed), 1);
    }
}
