//! Serving telemetry over the `ah_obs` substrate.
//!
//! Workers record each query's wall-clock latency into a shared
//! [`LatencyHistogram`] (the log₂-bucket `ah_obs::Histogram` — relaxed
//! atomic increments only, no locks on the hot path, bucket layout
//! property-tested in `ah_obs`), and the queue records each job's
//! enqueue→dequeue wait into a second one. All fields are `Arc`s so
//! the same metric objects can live in a [`ah_obs::Registry`] and be
//! rendered as Prometheus text (`_bucket`/`_sum`/`_count` series) by
//! the edge while workers keep writing to them lock-free.

use std::sync::Arc;

use ah_obs::{CostCounters, Counter, Gauge, Metric, Registry, COST_FIELD_NAMES, NUM_COST_FIELDS};

/// The serving layer's latency histogram — a re-export of
/// [`ah_obs::Histogram`], kept under its historical name. Buckets are
/// `⌊log₂ ns⌋`; see [`ah_obs::Histogram::bucket_of`] for the
/// documented (and property-tested) boundary contract.
pub use ah_obs::Histogram as LatencyHistogram;

/// Shared serving counters, updated by all workers.
///
/// Every field is an `Arc` so the identical objects can be registered
/// in an [`ah_obs::Registry`] (shared with the edge and other lanes)
/// while remaining plain lock-free metrics on the worker hot path.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Latency of every query (cache hits included — they are part of the
    /// service-time distribution a client observes).
    pub latency: Arc<LatencyHistogram>,
    /// Enqueue→dequeue wait of every job that passed through a queue
    /// with [`crate::BoundedQueue::set_wait_histogram`] attached —
    /// queue saturation as a *latency*, not just a depth gauge.
    pub queue_wait: Arc<LatencyHistogram>,
    /// Distance queries answered from the cache. Path requests never
    /// probe the cache and are excluded from both counters, so the
    /// hit-rate here agrees with the cache's own accounting.
    pub cache_hits: Arc<Counter>,
    /// Distance queries that went to the backend.
    pub cache_misses: Arc<Counter>,
    /// Requests refused at admission because the bounded queue was full
    /// (the edge answers these with 429). Always 0 for closed-loop runs,
    /// whose feeder blocks instead of rejecting.
    pub rejected: Arc<Counter>,
    /// Via-detour scenario requests served (`QueryKind::Via`).
    pub via_requests: Arc<Counter>,
    /// k-nearest-POI scenario requests served (`QueryKind::Knn`).
    pub knn_requests: Arc<Counter>,
    /// Batched distance-table requests served (`QueryKind::Matrix`) —
    /// counted per request, not per cell.
    pub matrix_requests: Arc<Counter>,
    /// Deepest the request queue has been — saturation headroom. A
    /// high-water mark at the queue's capacity means admission control
    /// engaged (or was one request away from engaging).
    pub queue_high_water: Arc<Gauge>,
    /// Queue depth when the metrics were last sampled (a gauge, not a
    /// counter; 0 after a drained run).
    pub queue_depth: Arc<Gauge>,
    /// Per-kind algorithmic cost totals (the `ah_query_*` families):
    /// what each request class *did* — nodes settled, edges relaxed,
    /// label entries merged — not just how long it took.
    pub cost: CostMetrics,
}

/// Request-kind names indexing [`CostMetrics`] rows; the order matches
/// the trace-span kind ids (`ah_obs` span `kind` word).
pub const COST_KIND_NAMES: [&str; 5] = ["distance", "path", "via", "knn", "matrix"];

/// Lock-free per-kind aggregation of [`CostCounters`]: one atomic
/// counter per `(request kind, cost field)` pair, rendered as one
/// Prometheus family per field (`ah_query_settled_nodes`,
/// `ah_query_relaxed_edges`, …) with a `kind` label on each series.
#[derive(Debug)]
pub struct CostMetrics {
    /// `counters[kind][field]`, kinds indexed by [`COST_KIND_NAMES`],
    /// fields by [`ah_obs::COST_FIELD_NAMES`].
    counters: Vec<[Arc<Counter>; NUM_COST_FIELDS]>,
}

impl Default for CostMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl CostMetrics {
    /// Creates zeroed per-kind cost counters.
    pub fn new() -> Self {
        CostMetrics {
            counters: (0..COST_KIND_NAMES.len())
                .map(|_| std::array::from_fn(|_| Arc::new(Counter::new())))
                .collect(),
        }
    }

    /// Folds one drained per-query tally into the `kind` row. Out-of-range
    /// kinds (future span ids) are dropped rather than misattributed.
    pub fn record(&self, kind: usize, cost: &CostCounters) {
        let Some(row) = self.counters.get(kind) else {
            return;
        };
        for (counter, v) in row.iter().zip(cost.as_array()) {
            if v > 0 {
                counter.add(v);
            }
        }
    }

    /// The accumulated tally for one request kind.
    pub fn kind_total(&self, kind: usize) -> CostCounters {
        let mut arr = [0u64; NUM_COST_FIELDS];
        if let Some(row) = self.counters.get(kind) {
            for (slot, counter) in arr.iter_mut().zip(row) {
                *slot = counter.get();
            }
        }
        CostCounters::from_array(arr)
    }

    /// The accumulated tally summed across every request kind.
    pub fn total(&self) -> CostCounters {
        let mut c = CostCounters::default();
        for kind in 0..COST_KIND_NAMES.len() {
            c.merge(&self.kind_total(kind));
        }
        c
    }

    /// Adds another cost table's counts into this one.
    pub fn merge_from(&self, other: &CostMetrics) {
        for (mine, theirs) in self.counters.iter().zip(&other.counters) {
            for (counter, v) in mine.iter().zip(theirs) {
                counter.add(v.get());
            }
        }
    }

    /// Registers one `ah_query_<field>` counter family per cost field,
    /// each with one series per request kind (a `kind` label on top of
    /// the caller's static labels).
    pub fn register_into(&self, reg: &Registry, labels: &[(&str, &str)]) {
        for (field, name) in COST_FIELD_NAMES.iter().enumerate() {
            let family = format!("ah_query_{name}");
            let help = format!("Per-query algorithmic cost: {name}, by request kind");
            for (kind, kind_name) in COST_KIND_NAMES.iter().enumerate() {
                let mut with_kind: Vec<(&str, &str)> = labels.to_vec();
                with_kind.push(("kind", kind_name));
                reg.register(
                    &family,
                    &with_kind,
                    &help,
                    Metric::Counter(Arc::clone(&self.counters[kind][field])),
                );
            }
        }
    }
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another metrics object's counts into this one (used to roll a
    /// per-run measurement into the server's lifetime totals). Counters
    /// add, histograms merge bucket-by-bucket (lossless — same layout),
    /// the queue high-water takes the max of the two marks and the
    /// depth gauge takes the other's (more recent) sample.
    pub fn merge_from(&self, other: &ServerMetrics) {
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        self.cache_hits.add(other.cache_hits.get());
        self.cache_misses.add(other.cache_misses.get());
        self.rejected.add(other.rejected.get());
        self.via_requests.add(other.via_requests.get());
        self.knn_requests.add(other.knn_requests.get());
        self.matrix_requests.add(other.matrix_requests.get());
        self.queue_high_water.set_max(other.queue_high_water.get());
        self.queue_depth.set(other.queue_depth.get());
        self.cost.merge_from(&other.cost);
    }

    /// Folds a queue's saturation state into the metrics: the depth
    /// gauge is overwritten, the high-water mark maxed, and the
    /// rejected counter **added**. Call exactly once per queue, at the
    /// end of its life (a closed-loop run, one edge `serve`): adding
    /// rather than storing means a server reused across several queues
    /// accumulates rejections instead of forgetting earlier runs'.
    pub fn record_queue<T: Send>(&self, queue: &crate::BoundedQueue<T>) {
        self.queue_depth.set(queue.len() as u64);
        self.queue_high_water.set_max(queue.high_water() as u64);
        self.rejected.add(queue.rejected());
    }

    /// Registers the metrics under their stable names (see
    /// `docs/OBSERVABILITY.md`) with the given static labels:
    /// `ah_server_query_latency_seconds` and `ah_queue_wait_seconds`
    /// as real Prometheus histograms, the cache outcomes as counters.
    /// Re-registering (e.g. a fresh per-run `ServerMetrics`) replaces
    /// the previous series instead of double-counting.
    pub fn register_into(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register(
            "ah_server_query_latency_seconds",
            labels,
            "Per-query service time (cache hits included)",
            Metric::Histogram(Arc::clone(&self.latency)),
        );
        reg.register(
            "ah_queue_wait_seconds",
            labels,
            "Enqueue-to-dequeue wait in the bounded worker queue",
            Metric::Histogram(Arc::clone(&self.queue_wait)),
        );
        reg.register(
            "ah_server_cache_hits_total",
            labels,
            "Distance queries answered from the cache",
            Metric::Counter(Arc::clone(&self.cache_hits)),
        );
        reg.register(
            "ah_server_cache_misses_total",
            labels,
            "Distance queries computed by the backend",
            Metric::Counter(Arc::clone(&self.cache_misses)),
        );
        // One series per scenario kind, distinguished by a `scenario`
        // label on top of the caller's static labels.
        for (scenario, counter) in [
            ("via", &self.via_requests),
            ("knn", &self.knn_requests),
            ("matrix", &self.matrix_requests),
        ] {
            let mut with_scenario: Vec<(&str, &str)> = labels.to_vec();
            with_scenario.push(("scenario", scenario));
            reg.register(
                "ah_server_scenario_requests_total",
                &with_scenario,
                "Scenario queries served, by kind",
                Metric::Counter(Arc::clone(counter)),
            );
        }
        self.cost.register_into(reg, labels);
    }

    /// Immutable snapshot for reporting.
    pub fn snapshot(&self, wall_secs: f64) -> MetricsSnapshot {
        let count = self.latency.count();
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        MetricsSnapshot {
            queries: count,
            wall_secs,
            qps: if wall_secs > 0.0 {
                count as f64 / wall_secs
            } else {
                0.0
            },
            mean_us: self.latency.mean_ns() / 1e3,
            p50_us: self.latency.quantile_ns(0.50) / 1e3,
            p95_us: self.latency.quantile_ns(0.95) / 1e3,
            p99_us: self.latency.quantile_ns(0.99) / 1e3,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            rejected: self.rejected.get(),
            scenario_via: self.via_requests.get(),
            scenario_knn: self.knn_requests.get(),
            scenario_matrix: self.matrix_requests.get(),
            queue_high_water: self.queue_high_water.get(),
            queue_depth: self.queue_depth.get(),
            queue_wait_mean_us: self.queue_wait.mean_ns() / 1e3,
            queue_wait_p99_us: self.queue_wait.quantile_ns(0.99) / 1e3,
        }
    }
}

/// Point-in-time view of [`ServerMetrics`] plus derived rates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Queries served.
    pub queries: u64,
    /// Wall-clock duration of the measured run, in seconds.
    pub wall_secs: f64,
    /// Aggregate throughput over the run (queries / wall second).
    pub qps: f64,
    /// Mean per-query latency, microseconds.
    pub mean_us: f64,
    /// Median per-query latency, microseconds (log₂-bucket resolution).
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Distance queries answered from cache.
    pub cache_hits: u64,
    /// Distance queries sent to the backend.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, over distance queries
    /// (the only kind that probes the cache).
    pub cache_hit_rate: f64,
    /// Requests refused at admission (bounded queue full → 429 at the
    /// edge). 0 for closed-loop runs.
    pub rejected: u64,
    /// Via-detour scenario requests served.
    pub scenario_via: u64,
    /// k-nearest-POI scenario requests served.
    pub scenario_knn: u64,
    /// Batched distance-table requests served.
    pub scenario_matrix: u64,
    /// Deepest the request queue has been.
    pub queue_high_water: u64,
    /// Queue depth at sampling time (0 after a drained run).
    pub queue_depth: u64,
    /// Mean enqueue→dequeue wait, microseconds (0 when no wait
    /// histogram was attached to the queue).
    pub queue_wait_mean_us: f64,
    /// 99th-percentile enqueue→dequeue wait, microseconds.
    pub queue_wait_p99_us: f64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one JSON object (hand-rolled: the workspace
    /// serde is an offline stub, see `vendor/serde`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"queries\":{},\"wall_secs\":{:.6},\"qps\":{:.1},",
                "\"mean_us\":{:.3},\"p50_us\":{:.3},\"p95_us\":{:.3},",
                "\"p99_us\":{:.3},\"cache_hits\":{},\"cache_misses\":{},",
                "\"cache_hit_rate\":{:.4},\"rejected\":{},",
                "\"scenario_via\":{},\"scenario_knn\":{},\"scenario_matrix\":{},",
                "\"queue_high_water\":{},\"queue_depth\":{},",
                "\"queue_wait_mean_us\":{:.3},\"queue_wait_p99_us\":{:.3}}}"
            ),
            self.queries,
            self.wall_secs,
            self.qps,
            self.mean_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.rejected,
            self.scenario_via,
            self.scenario_knn,
            self.scenario_matrix,
            self.queue_high_water,
            self.queue_depth,
            self.queue_wait_mean_us,
            self.queue_wait_p99_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_observations() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        // Median observation is 300 ns → bucket (256, 512]; within 2×.
        assert!(p50 >= 150.0 && p50 <= 600.0, "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 5_000.0 && p99 <= 20_000.0, "p99 = {p99}");
        assert!((h.mean_ns() - 2200.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_ns(100);
        b.record_ns(1000);
        b.record_ns(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.mean_ns() - 3100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 1..=1000u64 {
                        h.record_ns(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn snapshot_derives_rates_and_json() {
        let m = ServerMetrics::new();
        m.latency.record_ns(1_000);
        m.latency.record_ns(2_000);
        m.cache_hits.inc();
        m.cache_misses.inc();
        m.queue_wait.record_ns(5_000);
        let s = m.snapshot(2.0);
        assert_eq!(s.queries, 2);
        assert!((s.qps - 1.0).abs() < 1e-12);
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        assert!((s.queue_wait_mean_us - 5.0).abs() < 1e-12);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries\":2"));
        assert!(json.contains("\"cache_hit_rate\":0.5000"));
        assert!(json.contains("\"rejected\":0"));
        assert!(json.contains("\"queue_high_water\":0"));
        assert!(json.contains("\"queue_wait_mean_us\":5.000"));
    }

    #[test]
    fn record_queue_samples_saturation() {
        let q: crate::BoundedQueue<u8> = crate::BoundedQueue::new(2);
        q.push(1);
        q.push(2);
        let _ = q.try_push(3); // rejected
        let m = ServerMetrics::new();
        m.record_queue(&q);
        let s = m.snapshot(1.0);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_high_water, 2);
        assert_eq!(s.rejected, 1);

        // Merging keeps the deeper high-water mark and adds rejections.
        let total = ServerMetrics::new();
        total.queue_high_water.set(5);
        total.merge_from(&m);
        assert_eq!(total.queue_high_water.get(), 5);
        assert_eq!(total.rejected.get(), 1);
    }

    #[test]
    fn registered_metrics_render_as_histograms() {
        let m = ServerMetrics::new();
        m.latency.record_ns(1_500);
        m.queue_wait.record_ns(800);
        m.cache_hits.inc();
        let reg = ah_obs::Registry::new();
        m.register_into(&reg, &[("backend", "AH")]);
        let text = reg.render();
        assert!(
            text.contains("# TYPE ah_server_query_latency_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("ah_server_query_latency_seconds_bucket{backend=\"AH\",le="),
            "{text}"
        );
        assert!(text.contains("ah_server_query_latency_seconds_count{backend=\"AH\"} 1"), "{text}");
        assert!(text.contains("ah_queue_wait_seconds_bucket{backend=\"AH\",le="), "{text}");
        assert!(text.contains("ah_server_cache_hits_total{backend=\"AH\"} 1"), "{text}");
    }
}
