//! A bounded multi-producer/multi-consumer request queue.
//!
//! Built on `std::sync::{Mutex, Condvar}` only (the workspace carries no
//! concurrency dependency; cf. the `std::thread::scope` worker pool in
//! `ah_silc`). Producers block once `capacity` items are in flight — the
//! back-pressure that makes the traffic driver *closed-loop* — and
//! consumers block while the queue is empty until it is closed.
//!
//! Consumers drain in batches ([`BoundedQueue::pop_batch`]): one lock
//! acquisition hands a worker up to `max` requests, which keeps lock
//! traffic negligible even when individual queries take only a few
//! microseconds.
//!
//! Open-loop producers — the network edge, which must *never* block its
//! event loop — use [`BoundedQueue::try_push`] instead: a full queue
//! returns the item immediately (admission control's rejection branch)
//! and is counted in [`BoundedQueue::rejected`]. The queue also tracks
//! its [`BoundedQueue::high_water`] mark so operators can see how close
//! to saturation the service ran, not just whether it tipped over.
//!
//! Every item is stamped with its enqueue `Instant`; attach a
//! histogram with [`BoundedQueue::set_wait_histogram`] and each pop
//! records the item's enqueue→dequeue wait into it — queue saturation
//! becomes a *latency distribution* (`ah_queue_wait_seconds`), not
//! just a depth gauge.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use ah_obs::Histogram;

struct State<T> {
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// Why a [`BoundedQueue::try_push`] did not enqueue; carries the item
/// back so the producer can answer the caller (e.g. with a 429).
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity — admission control should reject.
    Full(T),
    /// The queue has been closed — the service is shutting down.
    Closed(T),
}

/// Bounded MPMC FIFO channel. `T` crosses threads, hence `T: Send`.
pub struct BoundedQueue<T: Send> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled when items are added or the queue closes (wakes consumers).
    not_empty: Condvar,
    /// Signalled when items are removed (wakes blocked producers).
    not_full: Condvar,
    /// Deepest the buffer has ever been (saturation telemetry).
    high_water: AtomicUsize,
    /// Items refused by [`BoundedQueue::try_push`] on a full queue.
    rejected: AtomicU64,
    /// Enqueue→dequeue wait sink, set once via
    /// [`BoundedQueue::set_wait_histogram`].
    wait_hist: OnceLock<Arc<Histogram>>,
}

impl<T: Send> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` in-flight items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            high_water: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            wait_hist: OnceLock::new(),
        }
    }

    /// Maximum number of in-flight items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attaches the histogram that receives every item's
    /// enqueue→dequeue wait (nanoseconds). Set-once: later calls are
    /// ignored, so the queue's owner wires it up before serving starts
    /// and workers never race a swap.
    pub fn set_wait_histogram(&self, hist: Arc<Histogram>) {
        let _ = self.wait_hist.set(hist);
    }

    #[inline]
    fn note_depth(&self, depth: usize) {
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Enqueues one item, blocking while the queue is full. Returns `false`
    /// (dropping the item) if the queue has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.items.len() >= self.capacity && !st.closed {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return false;
        }
        st.items.push_back((Instant::now(), item));
        self.note_depth(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Enqueues one item *without ever blocking*: a full queue hands the
    /// item straight back as [`TryPushError::Full`] (and counts it in
    /// [`BoundedQueue::rejected`]) so the producer can answer the caller
    /// with an overload response instead of buffering unboundedly. This
    /// is the admission-control branch the network edge runs on.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(TryPushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            drop(st);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(TryPushError::Full(item));
        }
        st.items.push_back((Instant::now(), item));
        self.note_depth(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues up to `max` items into `out`, blocking while the queue is
    /// empty and open. Returns the number of items delivered; `0` means the
    /// queue is closed *and* drained — the consumer's shutdown signal.
    /// Each delivered item's enqueue→dequeue wait is recorded into the
    /// attached wait histogram, if any.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut st = self.state.lock().unwrap();
        while st.items.is_empty() && !st.closed {
            st = self.not_empty.wait(st).unwrap();
        }
        let take = st.items.len().min(max.max(1));
        let hist = self.wait_hist.get();
        let now = (hist.is_some() && take > 0).then(Instant::now);
        for (enqueued_at, item) in st.items.drain(..take) {
            if let (Some(h), Some(now)) = (hist, now) {
                h.record_ns(now.saturating_duration_since(enqueued_at).as_nanos() as u64);
            }
            out.push(item);
        }
        drop(st);
        if take > 0 {
            // Producers may be blocked on a full queue; batch removal can
            // free many slots at once.
            self.not_full.notify_all();
        }
        take
    }

    /// Closes the queue: producers fail fast, consumers drain what remains
    /// and then observe the end of the stream.
    ///
    /// This is the *graceful* half of shutdown — everything already
    /// admitted is still served. See [`BoundedQueue::abort`] for the
    /// hard stop.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Closes the queue *and discards everything still buffered*,
    /// returning the dropped items so a caller implementing a hard stop
    /// can still answer their originators (e.g. with 503s). The network
    /// edge's graceful drain never calls this — it `close()`s and
    /// serves the backlog instead; this is the escape hatch for
    /// supervisors that cannot wait. Consumers observe the end of the
    /// stream immediately; in-flight batches already popped still
    /// finish on their workers.
    pub fn abort(&self) -> Vec<T> {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        let dropped: Vec<T> = st.items.drain(..).map(|(_, item)| item).collect();
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        dropped
    }

    /// Whether the queue has been closed (by [`BoundedQueue::close`],
    /// [`BoundedQueue::abort`], or a dying consumer's panic guard).
    /// Producers can use this to distinguish an orderly shutdown they
    /// initiated from a worker crash they must react to.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Items currently buffered (diagnostics only; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the buffer is currently empty (diagnostics only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the buffer has ever been — how close the service came to
    /// saturation even if it never rejected.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Items refused by [`BoundedQueue::try_push`] because the queue was
    /// full (the operator-visible overload counter; closed-queue
    /// rejections during shutdown are not counted as overload).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            assert!(q.push(i));
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_unblocks_and_drains() {
        let q = BoundedQueue::new(4);
        q.push(1u32);
        q.close();
        assert!(!q.push(2), "push after close must fail");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(16, &mut out), 1);
        assert_eq!(q.pop_batch(16, &mut out), 0, "closed + drained");
    }

    #[test]
    fn many_producers_many_consumers_deliver_exactly_once() {
        let q = BoundedQueue::new(16);
        let produced: u64 = (0..400u64).sum();
        let consumed = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|scope| {
            let producers: Vec<_> = (0..4u64)
                .map(|p| {
                    let q = &q;
                    scope.spawn(move || {
                        for i in 0..100u64 {
                            assert!(q.push(p * 100 + i));
                        }
                    })
                })
                .collect();
            for _ in 0..3 {
                let q = &q;
                let consumed = &consumed;
                let count = &count;
                scope.spawn(move || {
                    let mut buf = Vec::new();
                    loop {
                        buf.clear();
                        if q.pop_batch(7, &mut buf) == 0 {
                            break;
                        }
                        for v in &buf {
                            consumed.fetch_add(*v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            for h in producers {
                h.join().unwrap();
            }
            q.close(); // consumers drain the remainder and exit
        });
        assert_eq!(count.load(Ordering::Relaxed), 400);
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
    }

    #[test]
    fn try_push_rejects_on_full_and_counts() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1u32).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.try_push(4), Err(TryPushError::Full(4)));
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.high_water(), 2);
        let mut out = Vec::new();
        q.pop_batch(1, &mut out);
        assert!(q.try_push(5).is_ok(), "slot freed, admission resumes");
        q.close();
        // Closed-queue refusals are shutdown, not overload.
        assert_eq!(q.try_push(6), Err(TryPushError::Closed(6)));
        assert_eq!(q.rejected(), 2);
    }

    #[test]
    fn high_water_tracks_deepest_point() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i);
        }
        let mut out = Vec::new();
        q.pop_batch(5, &mut out);
        q.push(9);
        assert_eq!(q.high_water(), 5, "draining must not lower the mark");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn abort_discards_and_returns_backlog() {
        let q = BoundedQueue::new(8);
        for i in 0..4 {
            q.push(i);
        }
        let dropped = q.abort();
        assert_eq!(dropped, vec![0, 1, 2, 3]);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(16, &mut out), 0, "consumers see immediate end");
        assert!(!q.push(9));
    }

    #[test]
    fn wait_histogram_records_every_pop() {
        let q = BoundedQueue::new(8);
        let h = Arc::new(Histogram::new());
        q.set_wait_histogram(Arc::clone(&h));
        q.push(1u32);
        q.push(2);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(8, &mut out), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(h.count(), 2, "one wait observation per popped item");
        // Both items sat in the queue for the full sleep.
        assert!(h.quantile_ns(0.0) >= 1_000_000.0, "wait {}", h.mean_ns());
        // A second attach is ignored (set-once), the original keeps
        // receiving.
        q.set_wait_histogram(Arc::new(Histogram::new()));
        q.push(3);
        q.pop_batch(1, &mut out);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn capacity_bounds_in_flight_items() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                // Blocks until the consumer below frees a slot.
                assert!(q.push(3));
                q.close();
            });
            let mut out = Vec::new();
            let mut total = 0;
            loop {
                out.clear();
                let n = q.pop_batch(1, &mut out);
                if n == 0 {
                    break;
                }
                assert!(q.len() <= 2);
                total += n;
            }
            assert_eq!(total, 3);
        });
    }
}
