//! Live weight updates: delta apply → off-path rebuild → atomic swap.
//!
//! A [`DeltaReloader`] is the driver behind `/admin/reload-delta`: it
//! owns the *graph* generation (the serving [`SnapshotServer`] owns the
//! *index* generation) and turns an `ah_graph::WeightDelta` into a
//! published index swap without ever blocking the serving path:
//!
//! 1. **Apply** — the delta is applied to the current base graph
//!    ([`ah_graph::WeightDelta::apply`] verifies the base content id, so
//!    changes cut against another generation are refused with a typed
//!    error, never served).
//! 2. **Rebuild** — a fresh `AhIndex` is built from the patched graph on
//!    the calling thread (for [`DeltaReloader::start`], a background
//!    thread), while traffic keeps flowing against the old index.
//! 3. **Publish** — [`SnapshotServer::swap_index`] swaps the index and
//!    clears the distance cache atomically; in-flight closed-loop runs
//!    finish on the old generation, open-loop sessions built over
//!    [`crate::SnapshotBackend`] pick up the new one on their next query.
//!
//! Reloads are **single-flight**: while one is rebuilding, further
//! requests fail fast with [`ReloadError::Busy`] (the edge maps it to
//! `409 Conflict`) instead of queueing rebuilds that would each clear
//! the cache. Progress and outcomes are observable through `ah_obs`:
//! swap counts, rebuild durations, the staleness window each swap
//! closed, and an in-progress flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ah_core::{AhIndex, BuildConfig};
use ah_graph::{DeltaError, Graph, WeightDelta};
use ah_obs::{Counter, Gauge, Histogram, Metric, Registry};
use ah_store::{Snapshot, SnapshotError};

use crate::snapshot::SnapshotServer;

/// Why a reload was not performed.
#[derive(Debug)]
pub enum ReloadError {
    /// Another reload is mid-rebuild; retry after it publishes.
    Busy,
    /// The delta could not be applied (wrong base generation, unknown
    /// edge, …).
    Delta(DeltaError),
    /// The delta file could not be loaded.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Busy => write!(f, "a reload is already in progress"),
            ReloadError::Delta(e) => write!(f, "delta rejected: {e}"),
            ReloadError::Snapshot(e) => write!(f, "delta load failed: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Delta(e) => Some(e),
            ReloadError::Snapshot(e) => Some(e),
            ReloadError::Busy => None,
        }
    }
}

impl From<DeltaError> for ReloadError {
    fn from(e: DeltaError) -> Self {
        ReloadError::Delta(e)
    }
}

impl From<SnapshotError> for ReloadError {
    fn from(e: SnapshotError) -> Self {
        ReloadError::Snapshot(e)
    }
}

/// What one published reload did.
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// The index generation after the swap ([`SnapshotServer::generation`]).
    pub generation: u64,
    /// Edges whose weight actually changed (no-op changes excluded).
    pub changed_edges: usize,
    /// Nodes incident to a changed edge — the invalidation set.
    pub touched_nodes: usize,
    /// Apply + rebuild + swap, in seconds: how long the service kept
    /// answering from the pre-delta weights after the delta arrived.
    pub staleness_secs: f64,
}

/// Applies weight deltas to a live [`SnapshotServer`], rebuilding the
/// index off the serving path and publishing it atomically.
pub struct DeltaReloader {
    server: Arc<SnapshotServer>,
    /// The graph generation currently *served* (updated only at publish,
    /// under this lock, so `reload` always applies against the graph
    /// that produced the serving index).
    graph: Mutex<Graph>,
    build_cfg: BuildConfig,
    busy: AtomicBool,
    background: Mutex<Option<std::thread::JoinHandle<()>>>,
    last: Mutex<Option<Result<ReloadOutcome, String>>>,
    swaps_total: Arc<Counter>,
    failures_total: Arc<Counter>,
    duration: Arc<Histogram>,
    in_progress: Arc<Gauge>,
    staleness_ns: Arc<Gauge>,
    generation: Arc<Gauge>,
}

impl DeltaReloader {
    /// Drives reloads for `server`, whose current index must have been
    /// built from `graph` with `build_cfg` — the reloader rebuilds with
    /// the same knobs so a delta-refreshed index is bit-identical to a
    /// from-scratch build on the patched graph.
    pub fn new(server: Arc<SnapshotServer>, graph: Graph, build_cfg: BuildConfig) -> Self {
        DeltaReloader {
            server,
            graph: Mutex::new(graph),
            build_cfg,
            busy: AtomicBool::new(false),
            background: Mutex::new(None),
            last: Mutex::new(None),
            swaps_total: Arc::new(Counter::new()),
            failures_total: Arc::new(Counter::new()),
            duration: Arc::new(Histogram::new()),
            in_progress: Arc::new(Gauge::new()),
            staleness_ns: Arc::new(Gauge::new()),
            generation: Arc::new(Gauge::new()),
        }
    }

    /// Registers the reload metrics into `reg` under `labels`, alongside
    /// the serving metrics the underlying server already reports.
    pub fn register_into(&self, reg: &Registry, labels: &[(&str, &str)]) {
        reg.register(
            "ah_reload_swaps_total",
            labels,
            "Index swaps published by delta reloads",
            Metric::Counter(Arc::clone(&self.swaps_total)),
        );
        reg.register(
            "ah_reload_failures_total",
            labels,
            "Delta reloads rejected or failed before publishing",
            Metric::Counter(Arc::clone(&self.failures_total)),
        );
        reg.register(
            "ah_reload_duration_seconds",
            labels,
            "Apply + rebuild + swap wall time per published reload",
            Metric::Histogram(Arc::clone(&self.duration)),
        );
        reg.register(
            "ah_reload_in_progress",
            labels,
            "1 while a delta reload is rebuilding, else 0",
            Metric::Gauge(Arc::clone(&self.in_progress)),
        );
        reg.register(
            "ah_reload_staleness_ns",
            labels,
            "Staleness window closed by the last swap (delta arrival to publish)",
            Metric::Gauge(Arc::clone(&self.staleness_ns)),
        );
        reg.register(
            "ah_index_generation",
            labels,
            "Serving index generation (swaps since startup)",
            Metric::Gauge(Arc::clone(&self.generation)),
        );
    }

    /// The server this reloader publishes into.
    pub fn server(&self) -> &Arc<SnapshotServer> {
        &self.server
    }

    /// The graph generation currently serving (a clone).
    pub fn current_graph(&self) -> Graph {
        self.graph.lock().unwrap().clone()
    }

    /// Whether a reload is currently rebuilding.
    pub fn is_busy(&self) -> bool {
        self.busy.load(Ordering::SeqCst)
    }

    /// Index swaps published by delta reloads.
    pub fn swaps(&self) -> u64 {
        self.swaps_total.get()
    }

    /// Delta reloads rejected or failed before publishing.
    pub fn failures(&self) -> u64 {
        self.failures_total.get()
    }

    /// The outcome of the most recently *finished* reload, if any
    /// (errors are flattened to their display form).
    pub fn last_outcome(&self) -> Option<Result<ReloadOutcome, String>> {
        self.last.lock().unwrap().clone()
    }

    /// Applies `delta`, rebuilds, and publishes — synchronously, on the
    /// calling thread. Single-flight: fails fast with
    /// [`ReloadError::Busy`] if another reload is mid-rebuild.
    pub fn reload(&self, delta: WeightDelta) -> Result<ReloadOutcome, ReloadError> {
        let _flight = Self::begin(self)?;
        self.run_claimed(delta)
    }

    /// [`DeltaReloader::reload`], loading the delta from the `delta`
    /// section of the snapshot file at `path`.
    pub fn reload_from_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ReloadOutcome, ReloadError> {
        let delta = Snapshot::load_delta(path)?;
        self.reload(delta)
    }

    /// Loads the delta at `path` and rebuilds on a **background
    /// thread**, returning as soon as the flight is claimed — the shape
    /// the admin endpoint needs (answer `202 Accepted`, keep serving,
    /// observe the swap through the metrics). The claim happens here,
    /// synchronously, so a second call before the first publishes gets
    /// [`ReloadError::Busy`] immediately.
    pub fn start_from_file(
        self: &Arc<Self>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), ReloadError> {
        let delta = Snapshot::load_delta(path)?;
        // Refuse a stale delta *before* claiming the flight, so the
        // caller (the admin endpoint) gets the mismatch synchronously
        // instead of a 202 whose failure only shows up in the metrics.
        // The apply inside the flight re-validates; this check can race
        // a concurrent publish but never accept a wrong delta.
        let found = self.graph.lock().unwrap().content_id();
        if delta.base_id() != found {
            self.failures_total.inc();
            return Err(ReloadError::Delta(DeltaError::BaseMismatch {
                expected: delta.base_id(),
                found,
            }));
        }
        let flight = Self::begin(Arc::clone(self))?;
        let handle = std::thread::spawn(move || {
            let outcome = flight.0.run_claimed(delta);
            *flight.0.last.lock().unwrap() = Some(outcome.map_err(|e| e.to_string()));
        });
        // Joining the *previous* flight's thread here (it has finished —
        // the claim above proves it) keeps at most one finished handle
        // around and lets `wait` observe the newest.
        let old = self.background.lock().unwrap().replace(handle);
        if let Some(old) = old {
            let _ = old.join();
        }
        Ok(())
    }

    /// Blocks until the in-flight background reload (if any) finishes,
    /// then returns its outcome.
    pub fn wait(&self) -> Option<Result<ReloadOutcome, String>> {
        let handle = self.background.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.last_outcome()
    }

    /// Claims the single flight or fails with `Busy`. The claimant may
    /// borrow the reloader (synchronous reloads) or own an `Arc` to it
    /// (background reloads, whose guard must be `'static`).
    fn begin<T: std::ops::Deref<Target = DeltaReloader>>(
        this: T,
    ) -> Result<Flight<T>, ReloadError> {
        if this
            .busy
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            this.failures_total.inc();
            return Err(ReloadError::Busy);
        }
        this.in_progress.set(1);
        Ok(Flight(this))
    }

    /// The claimed-flight body: apply, rebuild, publish.
    fn run_claimed(&self, delta: WeightDelta) -> Result<ReloadOutcome, ReloadError> {
        let t0 = Instant::now();
        let mut graph = self.graph.lock().unwrap();
        let applied = match delta.apply(&graph) {
            Ok(a) => a,
            Err(e) => {
                self.failures_total.inc();
                return Err(e.into());
            }
        };
        // The expensive part — traffic keeps draining against the old
        // index the whole time (the graph lock only excludes other
        // reloads, which Busy already does).
        let index = AhIndex::build(&applied.graph, &self.build_cfg);
        self.server.swap_index(Arc::new(index));
        let changed_edges = applied.changed_edges;
        let touched_nodes = applied.touched.len();
        *graph = applied.graph;
        drop(graph);

        let staleness = t0.elapsed();
        self.swaps_total.inc();
        self.duration.record_ns(staleness.as_nanos() as u64);
        self.staleness_ns.set(staleness.as_nanos() as u64);
        self.generation.set(self.server.generation());
        Ok(ReloadOutcome {
            generation: self.server.generation(),
            changed_edges,
            touched_nodes,
            staleness_secs: staleness.as_secs_f64(),
        })
    }
}

/// Releases the single-flight claim — also on panic, so a backend bug
/// inside a rebuild can never wedge the admin endpoint in `409`.
struct Flight<T: std::ops::Deref<Target = DeltaReloader>>(T);

impl<T: std::ops::Deref<Target = DeltaReloader>> Drop for Flight<T> {
    fn drop(&mut self) {
        self.0.in_progress.set(0);
        self.0.busy.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Request, ServerConfig};
    use ah_graph::{WeightChange, CLOSED};
    use ah_search::dijkstra_distance;

    fn setup(seed: u64) -> (Graph, Arc<SnapshotServer>, Arc<DeltaReloader>) {
        let g = ah_data::fixtures::lattice(6, 6, 10 + seed as i32);
        let cfg = BuildConfig::default();
        let idx = Arc::new(AhIndex::build(&g, &cfg));
        let server = Arc::new(SnapshotServer::new(idx, ServerConfig::with_workers(2)));
        let reloader = Arc::new(DeltaReloader::new(Arc::clone(&server), g.clone(), cfg));
        (g, server, reloader)
    }

    #[test]
    fn reload_publishes_answers_bit_equal_to_scratch_rebuild() {
        let (g, server, reloader) = setup(0);
        let delta = WeightDelta::new(
            &g,
            [
                WeightChange::new(0, 1, 99),
                WeightChange::new(7, 8, 1),
                WeightChange::close(14, 15),
            ],
        )
        .unwrap();
        let patched = delta.apply(&g).unwrap().graph;

        let out = reloader.reload(delta).unwrap();
        assert_eq!(out.generation, 1);
        assert!(out.changed_edges >= 2);
        assert!(out.touched_nodes >= 4);
        assert_eq!(server.generation(), 1);

        let reqs: Vec<Request> = (0..60)
            .map(|i| Request::distance(i, (i as u32 * 5) % 36, (i as u32 * 11 + 3) % 36))
            .collect();
        let report = server.run(&reqs);
        for (req, resp) in reqs.iter().zip(&report.responses) {
            let want = dijkstra_distance(&patched, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "req {}", req.id);
        }
    }

    #[test]
    fn sequential_reloads_chain_generations() {
        let (g, server, reloader) = setup(1);
        let d1 = WeightDelta::new(&g, [WeightChange::new(0, 1, 42)]).unwrap();
        let g1 = d1.apply(&g).unwrap().graph;
        reloader.reload(d1).unwrap();

        // The second delta must be cut against the *patched* graph.
        let d2 = WeightDelta::new(&g1, [WeightChange::new(1, 0, 7)]).unwrap();
        let g2 = d2.apply(&g1).unwrap().graph;
        let out = reloader.reload(d2).unwrap();
        assert_eq!(out.generation, 2);

        let report = server.run(&[Request::distance(0, 0, 35)]);
        assert_eq!(
            report.responses[0].distance,
            dijkstra_distance(&g2, 0, 35).map(|d| d.length)
        );
    }

    #[test]
    fn stale_delta_is_refused_and_serving_is_untouched() {
        let (g, server, reloader) = setup(2);
        let d1 = WeightDelta::new(&g, [WeightChange::new(0, 1, 42)]).unwrap();
        reloader.reload(d1.clone()).unwrap();
        // Replaying the same delta: its base is the *original* graph,
        // which is no longer serving.
        let err = reloader.reload(d1).unwrap_err();
        assert!(matches!(
            err,
            ReloadError::Delta(DeltaError::BaseMismatch { .. })
        ));
        assert_eq!(server.generation(), 1, "failed reload must not publish");
    }

    #[test]
    fn closure_makes_routes_detour() {
        let (g, server, reloader) = setup(3);
        // Close every arc out of node 0 except via node 6 (the lattice
        // neighbor below); distances from 0 must re-route or grow.
        let delta =
            WeightDelta::new(&g, [WeightChange::close(0, 1), WeightChange::close(1, 0)]).unwrap();
        let patched = delta.apply(&g).unwrap().graph;
        reloader.reload(delta).unwrap();
        let report = server.run(&[Request::distance(0, 0, 1)]);
        let want = dijkstra_distance(&patched, 0, 1).map(|d| d.length);
        assert_eq!(report.responses[0].distance, want);
        // The direct arc now costs CLOSED; the answer must be a detour
        // strictly cheaper than that.
        assert!(report.responses[0].distance.unwrap() < CLOSED as u64);
    }

    #[test]
    fn background_reload_is_single_flight() {
        let (g, _server, reloader) = setup(4);
        let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 5)]).unwrap();
        let path = std::env::temp_dir().join(format!(
            "ah_reload_bg_{}.snap",
            std::process::id()
        ));
        ah_store::Snapshot::write(
            &path,
            ah_store::SnapshotContents::new().graph(&g).delta(&delta),
        )
        .unwrap();

        reloader.start_from_file(&path).unwrap();
        // The flight was claimed before start_from_file returned; a
        // second start while it rebuilds must 409 — or, if the rebuild
        // already finished (tiny graph), succeed against... no: same
        // delta against the patched graph is a BaseMismatch. Either way
        // it must NOT publish a second generation from this delta.
        match reloader.start_from_file(&path) {
            Err(ReloadError::Busy) => {}
            Err(ReloadError::Delta(DeltaError::BaseMismatch { .. })) => {}
            other => panic!("duplicate reload accepted: {other:?}"),
        }
        let outcome = reloader.wait().expect("background flight recorded");
        let ok = outcome.expect("first reload succeeds");
        assert_eq!(ok.generation, 1);
        assert_eq!(ok.changed_edges, 1);
        assert!(reloader.last_outcome().is_some());
        assert!(!reloader.is_busy());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_flow_into_a_shared_registry() {
        let (g, _server, reloader) = setup(5);
        let reg = Registry::new();
        reloader.register_into(&reg, &[("role", "edge")]);
        let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 77)]).unwrap();
        reloader.reload(delta).unwrap();
        let text = reg.render();
        assert!(text.contains("ah_reload_swaps_total{role=\"edge\"} 1"), "{text}");
        assert!(text.contains("ah_index_generation{role=\"edge\"} 1"), "{text}");
        assert!(text.contains("ah_reload_in_progress{role=\"edge\"} 0"), "{text}");
        assert!(
            text.contains("ah_reload_duration_seconds_count{role=\"edge\"} 1"),
            "{text}"
        );
    }
}
