//! The worker pool and serving loop.
//!
//! A [`Server`] owns the shared serving state — the sharded distance cache
//! and the metrics — and runs *closed-loop* request streams against a
//! [`DistanceBackend`]: the calling thread feeds a bounded queue (blocking
//! when the pool falls behind, so the queue depth is the admission window),
//! while `workers` scoped threads drain it in batches. Each worker creates
//! one [`crate::BackendSession`] up front and reuses its heaps and stamped
//! arrays for every query it serves, exactly like the single-threaded
//! figure harnesses reuse one `AhQuery` — the index is only ever read.
//!
//! The cache and metrics persist across [`Server::run`] calls, so repeated
//! runs model a warmed-up service; [`Server::new`] starts cold.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ah_graph::NodeId;
use ah_obs::{now_ns, Registry, SloWindows, Span, Stage, TraceConfig, Tracer};
use ah_search::{PoiSet, ViaAnswer};

use crate::backend::DistanceBackend;
use crate::cache::DistanceCache;
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::queue::BoundedQueue;

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Network distance only (cacheable).
    Distance,
    /// Full shortest path (always computed; the response keeps the hop
    /// count and distance, not the node list, to stay allocation-light).
    Path,
    /// Optimal detour `s → p → t` through the best POI `p` of category
    /// `cat` (cacheable per `(s, t, cat)`; the winning POI rides in the
    /// cache entry's aux word).
    Via {
        /// POI category to detour through.
        cat: u32,
    },
    /// The `k` nearest POIs of category `cat` from the source, by
    /// network distance (never cached — the answer is a list).
    Knn {
        /// POI category to search.
        cat: u32,
        /// Result count cap.
        k: u32,
    },
    /// A batched distance table. The endpoint sets are too big for the
    /// `Copy` request word and ride in [`Job::batch`] instead; `s` and
    /// `t` are ignored.
    Matrix,
}

/// One query in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier; responses are sorted by it.
    pub id: u64,
    /// Source node.
    pub s: NodeId,
    /// Target node.
    pub t: NodeId,
    /// Distance or path.
    pub kind: QueryKind,
}

impl Request {
    /// Distance request `s → t` with identifier `id`.
    pub fn distance(id: u64, s: NodeId, t: NodeId) -> Self {
        Request {
            id,
            s,
            t,
            kind: QueryKind::Distance,
        }
    }

    /// Path request `s → t` with identifier `id`.
    pub fn path(id: u64, s: NodeId, t: NodeId) -> Self {
        Request {
            id,
            s,
            t,
            kind: QueryKind::Path,
        }
    }

    /// Via-detour request `s → best POI of cat → t`.
    pub fn via(id: u64, s: NodeId, t: NodeId, cat: u32) -> Self {
        Request {
            id,
            s,
            t,
            kind: QueryKind::Via { cat },
        }
    }

    /// k-nearest-POI request from `s` over category `cat`.
    pub fn knn(id: u64, s: NodeId, cat: u32, k: u32) -> Self {
        Request {
            id,
            s,
            t: s, // unused by knn; kept in range so generic checks pass
            kind: QueryKind::Knn { cat, k },
        }
    }

    /// Batched distance-table request; the endpoint sets travel in the
    /// enclosing [`Job::batch`].
    pub fn matrix(id: u64) -> Self {
        Request {
            id,
            s: 0,
            t: 0,
            kind: QueryKind::Matrix,
        }
    }
}

/// Endpoint sets for one [`QueryKind::Matrix`] request: the answer is
/// the full `sources × targets` table of network distances.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatrixRequest {
    /// Row endpoints (one table row per source).
    pub sources: Vec<NodeId>,
    /// Column endpoints.
    pub targets: Vec<NodeId>,
}

/// The structured payload of a scenario answer, delivered alongside the
/// fixed-size [`Response`] word (which only carries a headline
/// distance). `None` for plain distance/path requests and for via
/// requests with no reachable POI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioResult {
    /// The winning detour: POI, total length and both legs.
    Via(ViaAnswer),
    /// Nearest POIs `(poi, distance)`, ascending by `(distance, poi)`.
    Knn(Vec<(NodeId, u64)>),
    /// The distance table, row-major over the request's sources.
    Matrix(Vec<Vec<Option<u64>>>),
}

/// The answer to one [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Identifier of the request this answers.
    pub id: u64,
    /// Network distance, `None` if the target is unreachable.
    pub distance: Option<u64>,
    /// Edge count of the returned path (path requests only).
    pub hops: Option<usize>,
    /// Whether the answer came from the distance cache.
    pub cache_hit: bool,
}

/// One unit of queued work: the request, its (optional) sampled trace
/// span, and the producer's opaque routing tag.
///
/// The span rides *inside* the queue so stage stamps survive the
/// producer→worker handoff: the edge stamps [`Stage::Enqueue`] before
/// pushing, the worker stamps [`Stage::Dequeue`] after popping, and
/// the compute stages in between — one `Box` move per sampled request,
/// nothing at all for unsampled ones.
#[derive(Debug)]
pub struct Job<T> {
    /// The query to serve.
    pub req: Request,
    /// Endpoint sets for [`QueryKind::Matrix`] requests (boxed: matrix
    /// requests are rare and heavy; everything else pays one `None`).
    pub batch: Option<Box<MatrixRequest>>,
    /// Sampled trace span (`None` for the 1 − 1/N unsampled majority).
    pub span: Option<Box<Span>>,
    /// Opaque routing state returned to the producer with the
    /// response (the edge uses it to find the connection and pipeline
    /// slot the answer belongs to).
    pub tag: T,
}

/// Serving parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (`0` is clamped to 1).
    pub workers: usize,
    /// Bounded queue depth — the closed-loop admission window.
    pub queue_capacity: usize,
    /// Total distance-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Requests a worker claims per queue lock (amortizes contention).
    pub batch_size: usize,
    /// Request-tracing knobs (deterministic 1-in-N span sampling, the
    /// recent-trace ring behind `/debug/traces`, and the slow-query
    /// threshold). `sample_every: 0` disables tracing entirely.
    pub trace: TraceConfig,
    /// Per-request algorithmic cost accounting (`ah_query_*` families,
    /// span cost fields). The kernels' plain counters always run; this
    /// gates only the per-request drain into the shared atomics, so
    /// turning it off gives the "compiled in but unsampled" baseline
    /// the cost-overhead A/B measures against.
    pub cost_accounting: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
            queue_capacity: 1024,
            cache_capacity: 64 * 1024,
            batch_size: 32,
            trace: TraceConfig::default(),
            cost_accounting: true,
        }
    }
}

impl ServerConfig {
    /// Config with an explicit worker count and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig {
            workers,
            ..Default::default()
        }
    }
}

/// Outcome of one [`Server::run`] call.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// One response per request, sorted by request id.
    pub responses: Vec<Response>,
    /// Wall-clock seconds from first enqueue to last response.
    pub wall_secs: f64,
    /// Telemetry accumulated *during this run only*.
    pub snapshot: MetricsSnapshot,
}

/// A multi-threaded query server over one immutable index.
pub struct Server {
    cfg: ServerConfig,
    cache: Option<DistanceCache>,
    metrics: ServerMetrics,
    registry: Arc<Registry>,
    tracer: Arc<Tracer>,
    slo: Arc<SloWindows>,
}

impl Server {
    /// Creates a cold server (empty cache, zeroed metrics) with its own
    /// private metric registry.
    pub fn new(cfg: ServerConfig) -> Self {
        Self::with_observability(cfg, Arc::new(Registry::new()), &[])
    }

    /// Creates a cold server wired into a *shared* metric registry
    /// under the given static labels — how the edge and the sharded
    /// lanes all land in one `/metrics` document. The server's
    /// lifetime metrics and its tracer's stage histograms are
    /// registered immediately; re-registering the same name+labels
    /// replaces the series (fresh server, fresh counters).
    pub fn with_observability(
        cfg: ServerConfig,
        registry: Arc<Registry>,
        labels: &[(&str, &str)],
    ) -> Self {
        let cache = (cfg.cache_capacity > 0).then(|| DistanceCache::new(cfg.cache_capacity));
        let metrics = ServerMetrics::new();
        metrics.register_into(&registry, labels);
        let tracer = Arc::new(Tracer::new(cfg.trace.clone()));
        tracer.register_into(&registry, labels);
        Server {
            cfg,
            cache,
            metrics,
            registry,
            tracer,
            slo: Arc::new(SloWindows::new()),
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Telemetry accumulated over the server's lifetime (all runs).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// The metric registry this server reports into (shared when built
    /// via [`Server::with_observability`]).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The request tracer (sampling collector + recent-trace ring).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The rolling per-second window ring every served query feeds.
    /// The edge shares this ring so its rejections (429/503) land in
    /// the same error-rate windows the SLO policy evaluates.
    pub fn slo_windows(&self) -> &Arc<SloWindows> {
        &self.slo
    }

    /// Lifetime cache hit rate (0 when caching is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.as_ref().map_or(0.0, DistanceCache::hit_rate)
    }

    /// Drops every cached distance. Must be called whenever the backend's
    /// underlying index changes (snapshot swap, reindex): cached answers
    /// describe the *old* network, and serving them against the new one
    /// would silently return stale distances.
    pub fn reset_cache(&self) {
        if let Some(c) = &self.cache {
            c.clear();
        }
    }

    /// Serves every request in `requests` on the worker pool and returns
    /// the responses sorted by request id.
    ///
    /// Requests naming nodes outside the backend's network are answered
    /// with `distance: None` without reaching the backend. The call is
    /// synchronous: it returns once the stream is fully served. Panics in
    /// worker threads (a backend bug) propagate — a drop guard closes the
    /// queue during unwinding so neither the feeder nor the surviving
    /// workers can block on a dead peer.
    pub fn run(&self, backend: &dyn DistanceBackend, requests: &[Request]) -> RunReport {
        let workers = self.cfg.workers.max(1);
        let num_nodes = backend.num_nodes();
        // One synthetic POI set per run, shared read-only by the pool —
        // the deterministic wire contract every client can reproduce.
        let pois = PoiSet::default_for(num_nodes);
        let queue: BoundedQueue<Job<()>> = BoundedQueue::new(self.cfg.queue_capacity);
        let run_metrics = ServerMetrics::new();
        // Queue-wait latency flows into this run's own histogram (and is
        // merged into the lifetime metrics below with everything else).
        queue.set_wait_histogram(Arc::clone(&run_metrics.queue_wait));
        let results: Mutex<Vec<Response>> = Mutex::new(Vec::with_capacity(requests.len()));
        // Workers build their sessions (O(n) allocations) before this
        // barrier; the clock starts after it, so wall_secs measures
        // serving, not pool startup — otherwise higher worker counts pay
        // proportionally more untimed-work inside the timed window and
        // short runs under-report their scaling.
        let ready = std::sync::Barrier::new(workers + 1);

        let mut start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let results = &results;
                let run_metrics = &run_metrics;
                let ready = &ready;
                let cache = self.cache.as_ref();
                let tracer = self.tracer.as_ref();
                let slo = self.slo.as_ref();
                let cost_accounting = self.cfg.cost_accounting;
                let pois = &pois;
                scope.spawn(move || {
                    let _close = CloseOnDrop(queue);
                    // If make_session panics, this guard still reaches the
                    // barrier during unwinding so the feeder is not
                    // stranded waiting for a dead worker.
                    let mut at_barrier = BarrierOnUnwind {
                        barrier: ready,
                        armed: true,
                    };
                    let mut session = backend.make_session();
                    ready.wait();
                    at_barrier.armed = false;
                    let mut batch: Vec<Job<()>> = Vec::with_capacity(self.cfg.batch_size);
                    let mut local: Vec<Response> = Vec::new();
                    loop {
                        batch.clear();
                        if queue.pop_batch(self.cfg.batch_size, &mut batch) == 0 {
                            break;
                        }
                        for job in batch.drain(..) {
                            let Job {
                                req,
                                batch: endpoints,
                                mut span,
                                ..
                            } = job;
                            if let Some(s) = span.as_deref_mut() {
                                s.stamp(Stage::Dequeue);
                            }
                            // Closed-loop runs keep only the fixed-size
                            // response word; scenario payloads are for
                            // open-loop consumers (the edge).
                            let (resp, _payload) = timed_serve(
                                &req,
                                endpoints.as_deref(),
                                num_nodes,
                                pois,
                                session.as_mut(),
                                cache,
                                run_metrics,
                                slo,
                                cost_accounting,
                                span.as_deref_mut(),
                            );
                            local.push(resp);
                            // Closed-loop runs have no serialize/flush
                            // stages — finish the (honest, partial) span
                            // right after compute.
                            if let Some(s) = span {
                                tracer.finish(s, 200);
                            }
                        }
                    }
                    results.lock().unwrap().append(&mut local);
                });
            }
            ready.wait();
            start = Instant::now();
            // Closed-loop feeder: the run thread itself back-pressures on
            // the bounded queue. If every worker died, push returns false
            // (their guards closed the queue) and feeding stops.
            for req in requests {
                let mut span = self.tracer.start(trace_kind(req.kind));
                if let Some(s) = span.as_deref_mut() {
                    s.stamp(Stage::Enqueue);
                }
                if !queue.push(Job {
                    req: *req,
                    batch: None,
                    span,
                    tag: (),
                }) {
                    break;
                }
            }
            queue.close();
        });
        let wall_secs = start.elapsed().as_secs_f64();

        // How saturated did the admission window get? (Closed-loop runs
        // never reject, but the high-water mark shows how hard the
        // feeder leaned on the back-pressure.)
        run_metrics.record_queue(&queue);

        // Fold this run's telemetry into the server's lifetime metrics in
        // one step, keeping the per-query loop down to one histogram.
        self.metrics.merge_from(&run_metrics);

        let mut responses = results.into_inner().unwrap();
        responses.sort_unstable_by_key(|r| r.id);
        let snapshot = run_metrics.snapshot(wall_secs);
        RunReport {
            responses,
            wall_secs,
            snapshot,
        }
    }

    /// Open-loop worker entry: drains `queue` until it is closed *and*
    /// empty, serving each [`Job`] against `backend` through this
    /// server's cache and lifetime metrics, and handing every completed
    /// `(tag, Response, span)` to `on_done`. The tag is opaque routing
    /// state (the network edge uses it to find the connection and
    /// pipeline slot a response belongs to); the span — present for
    /// sampled requests — has its dequeue/cache/compute stages stamped
    /// here and is returned so the producer can stamp serialize/flush
    /// and finish it once the bytes hit the socket.
    ///
    /// This is the backend-session handoff an open service builds on:
    /// producers admit work with [`BoundedQueue::try_push`] (answering
    /// overload themselves when it returns `Full`), while one thread per
    /// worker runs `serve_queue`, each with its own reusable
    /// [`crate::BackendSession`]. Scenario requests (via / knn /
    /// matrix) deliver their structured answer as the third `on_done`
    /// argument; plain distance and path requests pass `None` there.
    ///
    /// **Graceful-shutdown ordering** — drain before exit, in this
    /// order, so no accepted request is ever dropped:
    ///
    /// 1. the producer stops accepting new work (edge: stops reading
    ///    sockets, closes its listener);
    /// 2. [`BoundedQueue::close`] — late producers fail fast, the
    ///    admitted backlog stays;
    /// 3. workers drain the backlog and flush their in-flight batches
    ///    (`pop_batch` keeps returning items after `close` until the
    ///    buffer is empty), delivering every completion, then return;
    /// 4. the caller flushes what `on_done` delivered and only then
    ///    closes connections.
    ///
    /// For a hard stop that discards the backlog instead, use
    /// [`BoundedQueue::abort`] — it returns the dropped items so the
    /// caller can still answer their originators (e.g. with 503s).
    /// If this worker (or the backend underneath it) panics, a drop
    /// guard closes the queue — the same invariant [`Server::run`]
    /// enforces with its own guards — so producers observe
    /// [`BoundedQueue::is_closed`] and can fail fast instead of waiting
    /// forever for completions a dead worker will never deliver.
    pub fn serve_queue<T: Send>(
        &self,
        backend: &dyn DistanceBackend,
        queue: &BoundedQueue<Job<T>>,
        mut on_done: impl FnMut(T, Response, Option<Box<ScenarioResult>>, Option<Box<Span>>),
    ) {
        struct CloseOnPanic<'a, T: Send>(&'a BoundedQueue<T>);
        impl<T: Send> Drop for CloseOnPanic<'_, T> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.close();
                }
            }
        }
        let _guard = CloseOnPanic(queue);

        let num_nodes = backend.num_nodes();
        let pois = PoiSet::default_for(num_nodes);
        let cache = self.cache.as_ref();
        let mut session = backend.make_session();
        let mut batch: Vec<Job<T>> = Vec::with_capacity(self.cfg.batch_size);
        loop {
            batch.clear();
            if queue.pop_batch(self.cfg.batch_size, &mut batch) == 0 {
                break;
            }
            for job in batch.drain(..) {
                let Job {
                    req,
                    batch: endpoints,
                    mut span,
                    tag,
                } = job;
                if let Some(s) = span.as_deref_mut() {
                    s.stamp(Stage::Dequeue);
                }
                let (resp, payload) = timed_serve(
                    &req,
                    endpoints.as_deref(),
                    num_nodes,
                    &pois,
                    session.as_mut(),
                    cache,
                    &self.metrics,
                    &self.slo,
                    self.cfg.cost_accounting,
                    span.as_deref_mut(),
                );
                on_done(tag, resp, payload, span);
            }
        }
    }
}

/// Closes the queue if the owning worker is unwinding from a panic (and
/// only then), so a dying worker can never leave the feeder blocked on a
/// full queue or its peers parked on an empty one. On a normal exit this
/// is a no-op: the feeder closes the queue after the last request.
struct CloseOnDrop<'a, T: Send>(&'a BoundedQueue<T>);

impl<T: Send> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

/// Reaches the ready barrier during a panic unwind if the worker died
/// before its normal `wait()` call (i.e. inside `make_session`), so the
/// barrier's member count still adds up and the feeder proceeds.
struct BarrierOnUnwind<'a> {
    barrier: &'a std::sync::Barrier,
    armed: bool,
}

impl Drop for BarrierOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            self.barrier.wait();
        }
    }
}

/// Trace-span kind code for a query (the tracer groups its per-stage
/// histograms and slow-query ring entries by this). Public so edges
/// admitting jobs directly into a [`BoundedQueue`] start their spans
/// with the same codes the closed-loop engine uses.
pub fn trace_kind(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Distance => 0,
        QueryKind::Path => 1,
        QueryKind::Via { .. } => 2,
        QueryKind::Knn { .. } => 3,
        QueryKind::Matrix => 4,
    }
}

/// Serves one request and records its latency, cache outcome and
/// scenario kind into `metrics`, its latency into the `slo` window
/// ring, and its drained algorithmic cost into the per-kind cost
/// counters (and the sampled span, when present) — the per-query body
/// shared by the closed-loop worker pool and the open-loop
/// [`Server::serve_queue`] drain. A sampled span gets its cache-probe
/// and compute stages stamped inside [`serve_one`].
#[allow(clippy::too_many_arguments)]
fn timed_serve(
    req: &Request,
    batch: Option<&MatrixRequest>,
    num_nodes: usize,
    pois: &PoiSet,
    session: &mut dyn crate::backend::BackendSession,
    cache: Option<&DistanceCache>,
    metrics: &ServerMetrics,
    slo: &SloWindows,
    cost_accounting: bool,
    mut span: Option<&mut Span>,
) -> (Response, Option<Box<ScenarioResult>>) {
    let t0 = Instant::now();
    let (resp, payload) = serve_one(
        req,
        batch,
        num_nodes,
        pois,
        session,
        cache,
        span.as_deref_mut(),
    );
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    metrics.latency.record_ns(elapsed_ns);
    // Served queries are successes by definition here; errors (edge
    // rejections, malformed requests) are recorded by the layer that
    // refuses them, into this same ring.
    slo.record(now_ns(), elapsed_ns, false);
    // Drain what the kernels tallied for this request, add the
    // serving-layer cache outcome, and attribute it to the request
    // kind — this is the "what did the algorithm do" ledger next to
    // the wall-clock one above.
    if cost_accounting {
        let mut cost = session.take_cost();
        if matches!(req.kind, QueryKind::Distance | QueryKind::Via { .. }) && cache.is_some() {
            cost.cache_probes += 1;
            if resp.cache_hit {
                cost.cache_hits += 1;
            }
        }
        metrics.cost.record(trace_kind(req.kind) as usize, &cost);
        if let Some(s) = span.as_deref_mut() {
            s.add_cost(&cost);
        }
    }
    // Only the kinds that probe the cache (distance, via) enter the
    // hit/miss ratio, so the snapshot agrees with the cache's own
    // counters; scenario kinds additionally tick their own counter.
    match req.kind {
        QueryKind::Distance => {
            if resp.cache_hit {
                metrics.cache_hits.inc();
            } else {
                metrics.cache_misses.inc();
            }
        }
        QueryKind::Via { .. } => {
            metrics.via_requests.inc();
            if resp.cache_hit {
                metrics.cache_hits.inc();
            } else {
                metrics.cache_misses.inc();
            }
        }
        QueryKind::Knn { .. } => metrics.knn_requests.inc(),
        QueryKind::Matrix => metrics.matrix_requests.inc(),
        QueryKind::Path => {}
    }
    (resp, payload)
}

/// Serves one request on a worker: bounds check, cache probe (distance
/// and via queries), then the backend session. Stage stamps:
/// `CacheProbe` when the probe settles (immediately for the kinds that
/// never probe) and `Compute` when the answer exists (immediately on a
/// cache hit — the ~0 ns compute interval *is* the signal the backend
/// was skipped). Scenario kinds return their structured answer as the
/// second tuple element; plain distance/path requests return `None`.
fn serve_one(
    req: &Request,
    batch: Option<&MatrixRequest>,
    num_nodes: usize,
    pois: &PoiSet,
    session: &mut dyn crate::backend::BackendSession,
    cache: Option<&DistanceCache>,
    mut span: Option<&mut Span>,
) -> (Response, Option<Box<ScenarioResult>>) {
    let stamp = |stage: Stage, span: &mut Option<&mut Span>| {
        if let Some(s) = span.as_deref_mut() {
            s.stamp(stage);
        }
    };
    let in_range = |v: NodeId| (v as usize) < num_nodes;
    let endpoints_ok = match req.kind {
        // Matrix ignores `s`/`t`; its batch ids are validated per cell.
        QueryKind::Matrix => true,
        // knn has no target; `t` mirrors `s` but is not consulted.
        QueryKind::Knn { .. } => in_range(req.s),
        _ => in_range(req.s) && in_range(req.t),
    };
    if !endpoints_ok {
        // Malformed request: answered, never forwarded to the backend
        // (whose index arrays it would overrun).
        stamp(Stage::CacheProbe, &mut span);
        stamp(Stage::Compute, &mut span);
        return (
            Response {
                id: req.id,
                distance: None,
                hops: None,
                cache_hit: false,
            },
            None,
        );
    }
    // Captured before the probe/compute: if the index is swapped (and
    // the cache cleared) while this query is in flight, the epoch check
    // in `put_at` drops the old-generation answer instead of inserting
    // it into the fresh cache.
    let epoch = cache.map(DistanceCache::epoch);
    match req.kind {
        QueryKind::Distance => {
            if let Some(c) = cache {
                let cached = c.get(req.s, req.t);
                stamp(Stage::CacheProbe, &mut span);
                if let Some(cached) = cached {
                    stamp(Stage::Compute, &mut span);
                    return (
                        Response {
                            id: req.id,
                            distance: cached,
                            hops: None,
                            cache_hit: true,
                        },
                        None,
                    );
                }
            } else {
                stamp(Stage::CacheProbe, &mut span);
            }
            let d = session.distance(req.s, req.t);
            stamp(Stage::Compute, &mut span);
            if let Some(c) = cache {
                c.put_at(req.s, req.t, d, epoch.unwrap());
            }
            (
                Response {
                    id: req.id,
                    distance: d,
                    hops: None,
                    cache_hit: false,
                },
                None,
            )
        }
        QueryKind::Path => {
            stamp(Stage::CacheProbe, &mut span);
            let p = session.path(req.s, req.t);
            stamp(Stage::Compute, &mut span);
            let (distance, hops) = match p {
                Some(p) => (Some(p.dist.length), Some(p.num_edges())),
                None => (None, None),
            };
            // Paths carry the distance too; feed the cache so later
            // distance queries for the pair hit.
            if let Some(c) = cache {
                c.put_at(req.s, req.t, distance, epoch.unwrap());
            }
            (
                Response {
                    id: req.id,
                    distance,
                    hops,
                    cache_hit: false,
                },
                None,
            )
        }
        QueryKind::Via { cat } => {
            if let Some(c) = cache {
                let cached = c.get_via(req.s, req.t, cat);
                stamp(Stage::CacheProbe, &mut span);
                if let Some(cached) = cached {
                    // The cache keeps (poi, total); the legs are
                    // reconstructed with two point queries — exact,
                    // because shortest distances are unique, and far
                    // cheaper than re-scanning the whole category.
                    let payload = cached.map(|(poi, total)| {
                        let to_poi = session.distance(req.s, poi).unwrap_or(u64::MAX);
                        let from_poi = session.distance(poi, req.t).unwrap_or(u64::MAX);
                        Box::new(ScenarioResult::Via(ViaAnswer {
                            poi,
                            total,
                            to_poi,
                            from_poi,
                        }))
                    });
                    stamp(Stage::Compute, &mut span);
                    return (
                        Response {
                            id: req.id,
                            distance: cached.map(|(_, total)| total),
                            hops: None,
                            cache_hit: true,
                        },
                        payload,
                    );
                }
            } else {
                stamp(Stage::CacheProbe, &mut span);
            }
            let answer = session.via(req.s, req.t, pois.category(cat));
            stamp(Stage::Compute, &mut span);
            if let Some(c) = cache {
                c.put_via_at(
                    req.s,
                    req.t,
                    cat,
                    answer.map(|a| (a.poi, a.total)),
                    epoch.unwrap(),
                );
            }
            (
                Response {
                    id: req.id,
                    distance: answer.map(|a| a.total),
                    hops: None,
                    cache_hit: false,
                },
                answer.map(|a| Box::new(ScenarioResult::Via(a))),
            )
        }
        QueryKind::Knn { cat, k } => {
            stamp(Stage::CacheProbe, &mut span);
            let results = session.knn(req.s, pois.category(cat), k as usize);
            stamp(Stage::Compute, &mut span);
            (
                Response {
                    id: req.id,
                    // Headline: distance to the nearest hit, if any.
                    distance: results.first().map(|&(_, d)| d),
                    hops: None,
                    cache_hit: false,
                },
                Some(Box::new(ScenarioResult::Knn(results))),
            )
        }
        QueryKind::Matrix => {
            stamp(Stage::CacheProbe, &mut span);
            let table = match batch {
                None => Vec::new(),
                Some(b) => {
                    if b.sources.iter().chain(&b.targets).all(|&v| in_range(v)) {
                        session.matrix(&b.sources, &b.targets)
                    } else {
                        // Out-of-range endpoints answer as unreachable
                        // without touching the backend: valid columns are
                        // swept, the rest scattered back as `None`.
                        let valid: Vec<NodeId> =
                            b.targets.iter().copied().filter(|&t| in_range(t)).collect();
                        b.sources
                            .iter()
                            .map(|&s| {
                                if !in_range(s) {
                                    return vec![None; b.targets.len()];
                                }
                                let row = session.one_to_many(s, &valid);
                                let mut it = row.into_iter();
                                b.targets
                                    .iter()
                                    .map(|&t| if in_range(t) { it.next().unwrap() } else { None })
                                    .collect()
                            })
                            .collect()
                    }
                }
            };
            stamp(Stage::Compute, &mut span);
            (
                Response {
                    id: req.id,
                    distance: None,
                    hops: None,
                    cache_hit: false,
                },
                Some(Box::new(ScenarioResult::Matrix(table))),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AhBackend, DijkstraBackend};
    use ah_core::{AhIndex, BuildConfig};
    use ah_search::dijkstra_distance;

    fn test_requests(n: u32, total: usize) -> Vec<Request> {
        (0..total as u64)
            .map(|id| {
                let s = (id as u32 * 7 + 3) % n;
                let t = (id as u32 * 13 + 5) % n;
                if id % 5 == 0 {
                    Request::path(id, s, t)
                } else {
                    Request::distance(id, s, t)
                }
            })
            .collect()
    }

    #[test]
    fn concurrent_responses_match_single_threaded_truth() {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let backend = AhBackend::new(&idx);
        let reqs = test_requests(g.num_nodes() as u32, 300);

        let server = Server::new(ServerConfig {
            workers: 4,
            queue_capacity: 16,
            cache_capacity: 1024,
            batch_size: 8,
            trace: TraceConfig::default(),
            ..Default::default()
        });
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&report.responses) {
            assert_eq!(resp.id, req.id, "sorted by id, one response each");
            let want = dijkstra_distance(&g, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "req {}", req.id);
            if req.kind == QueryKind::Path && want.is_some() {
                assert!(resp.hops.is_some());
            }
        }
        assert_eq!(report.snapshot.queries, reqs.len() as u64);
        assert!(report.snapshot.qps > 0.0);
    }

    #[test]
    fn cache_persists_across_runs_and_preserves_answers() {
        let g = ah_data::fixtures::lattice(6, 6, 10);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let backend = AhBackend::new(&idx);
        let reqs: Vec<Request> = (0..100u64)
            .map(|id| Request::distance(id, (id % 36) as u32, ((id * 3 + 1) % 36) as u32))
            .collect();

        let server = Server::new(ServerConfig {
            workers: 2,
            cache_capacity: 4096,
            ..Default::default()
        });
        let cold = server.run(&backend, &reqs);
        let warm = server.run(&backend, &reqs);
        assert_eq!(warm.snapshot.cache_hits, reqs.len() as u64, "fully warmed");
        for (a, b) in cold.responses.iter().zip(&warm.responses) {
            assert_eq!(a.distance, b.distance, "hit equals miss for id {}", a.id);
        }
        assert!(server.cache_hit_rate() > 0.0);
        assert_eq!(server.metrics().latency.count(), 2 * reqs.len() as u64);
    }

    #[test]
    fn cache_disabled_still_serves() {
        let g = ah_data::fixtures::ring(12);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig {
            workers: 2,
            cache_capacity: 0,
            ..Default::default()
        });
        let reqs = test_requests(12, 50);
        let report = server.run(&backend, &reqs);
        assert_eq!(report.snapshot.cache_hits, 0);
        assert_eq!(report.responses.len(), 50);
    }

    #[test]
    fn unreachable_pairs_serve_and_cache_none() {
        let mut b = ah_graph::GraphBuilder::new();
        b.add_node(ah_graph::Point::new(0, 0));
        b.add_node(ah_graph::Point::new(9, 9));
        b.add_edge(0, 1, 4); // one-way
        let g = b.build();
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig::with_workers(2));
        let reqs = vec![
            Request::distance(0, 1, 0),
            Request::distance(1, 0, 1),
            Request::distance(2, 1, 0), // may hit the negative cache entry
        ];
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses[0].distance, None);
        assert_eq!(report.responses[1].distance, Some(4));
        assert_eq!(report.responses[2].distance, None);
    }

    #[test]
    fn out_of_range_requests_answer_none_without_reaching_backend() {
        let g = ah_data::fixtures::ring(8);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig::with_workers(2));
        let reqs = vec![
            Request::distance(0, 0, 7),
            Request::distance(1, 99, 0),  // invalid source
            Request::distance(2, 0, 999), // invalid target
            Request::path(3, 8, 8),       // invalid both (== num_nodes)
        ];
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses.len(), 4);
        assert!(report.responses[0].distance.is_some());
        for resp in &report.responses[1..] {
            assert_eq!(resp.distance, None, "id {}", resp.id);
            assert_eq!(resp.hops, None);
        }
    }

    /// A backend whose sessions always panic (models an indexing bug).
    struct PanicBackend;
    struct PanicSession;

    impl crate::backend::DistanceBackend for PanicBackend {
        fn name(&self) -> &'static str {
            "Panic"
        }
        fn num_nodes(&self) -> usize {
            1 << 20
        }
        fn make_session(&self) -> Box<dyn crate::backend::BackendSession + '_> {
            Box::new(PanicSession)
        }
    }

    impl crate::backend::BackendSession for PanicSession {
        fn distance(&mut self, _s: u32, _t: u32) -> Option<u64> {
            panic!("backend bug");
        }
        fn path(&mut self, _s: u32, _t: u32) -> Option<ah_graph::Path> {
            panic!("backend bug");
        }
    }

    /// A backend that cannot even build a session.
    struct PanicOnSessionBackend;

    impl crate::backend::DistanceBackend for PanicOnSessionBackend {
        fn name(&self) -> &'static str {
            "PanicOnSession"
        }
        fn num_nodes(&self) -> usize {
            8
        }
        fn make_session(&self) -> Box<dyn crate::backend::BackendSession + '_> {
            panic!("session build bug");
        }
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn session_build_panic_releases_the_ready_barrier() {
        let server = Server::new(ServerConfig {
            workers: 2,
            queue_capacity: 2,
            cache_capacity: 0,
            batch_size: 1,
            trace: TraceConfig::default(),
            ..Default::default()
        });
        let reqs: Vec<Request> = (0..16).map(|i| Request::distance(i, 0, 1)).collect();
        let _ = server.run(&PanicOnSessionBackend, &reqs);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // More requests than the queue holds, one worker: without the
        // CloseOnDrop guard the feeder would block forever on the full
        // queue after the sole worker died.
        let server = Server::new(ServerConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 0,
            batch_size: 2,
            trace: TraceConfig::default(),
            ..Default::default()
        });
        let reqs: Vec<Request> = (0..64).map(|i| Request::distance(i, 0, 1)).collect();
        let _ = server.run(&PanicBackend, &reqs);
    }

    #[test]
    fn serve_queue_drains_backlog_after_close() {
        // The open-loop drain contract: requests admitted before close()
        // are all served and completed, even though the queue was closed
        // while they were still buffered.
        let g = ah_data::fixtures::lattice(6, 6, 10);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let backend = AhBackend::new(&idx);
        let server = Server::new(ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 256,
            batch_size: 4,
            trace: TraceConfig {
                sample_every: 1, // trace every request
                ..Default::default()
            },
            ..Default::default()
        });
        let queue: BoundedQueue<Job<u64>> = BoundedQueue::new(64);
        queue.set_wait_histogram(Arc::clone(&server.metrics().queue_wait));
        let done = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..2 {
                let queue = &queue;
                let done = &done;
                let server = &server;
                let backend = &backend;
                scope.spawn(move || {
                    server.serve_queue(backend, queue, |tag, resp, _payload, span| {
                        // The worker stamped dequeue → compute; the
                        // producer (us) owns serialize/flush.
                        let span = span.expect("sample_every=1 traces everything");
                        assert!(span.record().is_monotonic());
                        assert_ne!(span.record().stages[Stage::Compute as usize], 0);
                        server.tracer().finish(span, 200);
                        done.lock().unwrap().push((tag, resp));
                    });
                });
            }
            // Admit a backlog, then close *before* it can possibly have
            // drained; everything admitted must still complete.
            for id in 0..40u64 {
                let req = Request::distance(id, (id % 36) as u32, ((id * 7 + 3) % 36) as u32);
                let mut span = server.tracer().start(0).expect("sampled");
                span.stamp(Stage::Enqueue);
                assert!(queue.push(Job {
                    req,
                    batch: None,
                    span: Some(span),
                    tag: id ^ 0xABCD,
                }));
            }
            queue.close();
        });

        let mut done = done.into_inner().unwrap();
        assert_eq!(done.len(), 40, "every admitted request completes");
        done.sort_unstable_by_key(|(_, r)| r.id);
        for (tag, resp) in &done {
            assert_eq!(*tag, resp.id ^ 0xABCD, "tags route back unmangled");
            let want =
                dijkstra_distance(&g, (resp.id % 36) as u32, ((resp.id * 7 + 3) % 36) as u32)
                    .map(|d| d.length);
            assert_eq!(resp.distance, want, "req {}", resp.id);
        }
        assert_eq!(server.metrics().latency.count(), 40);
        assert_eq!(
            server.metrics().queue_wait.count(),
            40,
            "every popped job left a queue-wait observation"
        );
        assert_eq!(server.tracer().spans_finished(), 40);
        // try_push on the closed queue is a shutdown refusal, not overload.
        let late = Request::distance(99, 0, 1);
        assert!(matches!(
            queue.try_push(Job {
                req: late,
                batch: None,
                span: None,
                tag: 0u64,
            }),
            Err(crate::queue::TryPushError::Closed(_))
        ));
        assert_eq!(queue.rejected(), 0);
    }

    #[test]
    fn run_reports_queue_saturation() {
        let g = ah_data::fixtures::ring(16);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 0,
            batch_size: 2,
            trace: TraceConfig::default(),
            ..Default::default()
        });
        let reqs: Vec<Request> = (0..64)
            .map(|i| Request::distance(i, (i % 16) as u32, ((i * 5 + 1) % 16) as u32))
            .collect();
        let report = server.run(&backend, &reqs);
        assert!(report.snapshot.queue_high_water >= 1);
        assert!(report.snapshot.queue_high_water <= 4, "bounded by capacity");
        assert_eq!(report.snapshot.queue_depth, 0, "drained at end of run");
        assert_eq!(report.snapshot.rejected, 0, "closed-loop never rejects");
    }

    #[test]
    fn run_traces_spans_and_queue_wait_when_sampling_everything() {
        let g = ah_data::fixtures::ring(16);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig {
            workers: 2,
            trace: TraceConfig {
                sample_every: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let reqs: Vec<Request> = (0..50)
            .map(|i| Request::distance(i, (i % 16) as u32, ((i * 5 + 1) % 16) as u32))
            .collect();
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses.len(), 50);
        assert_eq!(server.tracer().spans_finished(), 50);
        assert_eq!(server.metrics().queue_wait.count(), 50);
        for r in server.tracer().recent() {
            assert!(r.is_monotonic(), "{r:?}");
            assert_ne!(r.stages[Stage::Enqueue as usize], 0);
            assert_ne!(r.stages[Stage::Dequeue as usize], 0);
            assert_ne!(r.stages[Stage::Compute as usize], 0);
            // Closed-loop runs never touch a socket: no flush stage.
            assert_eq!(r.stages[Stage::Flush as usize], 0);
        }
        // The whole pipeline lands in one registry render.
        let text = server.registry().render();
        assert!(text.contains("ah_server_query_latency_seconds_bucket"), "{text}");
        assert!(text.contains("ah_queue_wait_seconds_bucket"), "{text}");
        assert!(text.contains("ah_stage_duration_seconds_bucket"), "{text}");
        assert!(text.contains("ah_trace_spans_total 50"), "{text}");
    }

    #[test]
    fn tracing_disabled_runs_without_spans() {
        let g = ah_data::fixtures::ring(8);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig {
            workers: 1,
            trace: TraceConfig {
                sample_every: 0,
                ..Default::default()
            },
            ..Default::default()
        });
        let reqs: Vec<Request> = (0..20).map(|i| Request::distance(i, 0, 4)).collect();
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses.len(), 20);
        assert_eq!(server.tracer().spans_finished(), 0);
        assert!(server.tracer().recent().is_empty());
    }

    #[test]
    fn scenario_requests_answer_exactly_in_closed_loop() {
        let g = ah_data::fixtures::lattice(7, 7, 21);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let backend = AhBackend::new(&idx);
        let n = g.num_nodes() as u32;
        let pois = PoiSet::default_for(n as usize);
        let mut engine = ah_search::ScenarioEngine::new();

        let reqs: Vec<Request> = (0..30u64)
            .map(|i| {
                let s = (i as u32 * 11 + 2) % n;
                let t = (i as u32 * 17 + 5) % n;
                let cat = (i % 8) as u32;
                if i % 2 == 0 {
                    Request::via(i, s, t, cat)
                } else {
                    Request::knn(i, s, cat, 3)
                }
            })
            .collect();
        let server = Server::new(ServerConfig::with_workers(3));
        let report = server.run(&backend, &reqs);
        assert_eq!(report.responses.len(), reqs.len());
        for (req, resp) in reqs.iter().zip(&report.responses) {
            let want = match req.kind {
                QueryKind::Via { cat } => engine
                    .via(&g, req.s, req.t, pois.category(cat))
                    .map(|a| a.total),
                QueryKind::Knn { cat, k } => engine
                    .knn(&g, req.s, pois.category(cat), k as usize)
                    .first()
                    .map(|&(_, d)| d),
                _ => unreachable!(),
            };
            assert_eq!(resp.distance, want, "req {}", req.id);
        }
        assert_eq!(report.snapshot.scenario_via, 15);
        assert_eq!(report.snapshot.scenario_knn, 15);
        assert_eq!(report.snapshot.scenario_matrix, 0);
    }

    #[test]
    fn via_cache_hit_replays_the_full_payload() {
        let g = ah_data::fixtures::lattice(6, 6, 33);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let backend = AhBackend::new(&idx);
        let pois = PoiSet::default_for(g.num_nodes());
        let cat = (0..pois.categories())
            .find(|&c| !pois.category(c).is_empty())
            .expect("a 36-node set has POIs somewhere");
        let server = Server::new(ServerConfig::with_workers(1));
        let queue: BoundedQueue<Job<u64>> = BoundedQueue::new(8);
        let done = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let queue = &queue;
            let done = &done;
            let server = &server;
            let backend = &backend;
            scope.spawn(move || {
                server.serve_queue(backend, queue, |tag, resp, payload, _span| {
                    done.lock().unwrap().push((tag, resp, payload));
                });
            });
            for id in 0..2u64 {
                assert!(queue.push(Job {
                    req: Request::via(id, 3, 30, cat),
                    batch: None,
                    span: None,
                    tag: id,
                }));
            }
            queue.close();
        });
        let done = done.into_inner().unwrap();
        assert_eq!(done.len(), 2);
        let (_, first, first_payload) = &done[0];
        let (_, second, second_payload) = &done[1];
        assert!(!first.cache_hit && second.cache_hit);
        assert_eq!(first.distance, second.distance);
        assert!(first_payload.is_some(), "a 6x6 lattice has POIs in range");
        assert_eq!(
            first_payload, second_payload,
            "cached answers replay bit-identically, legs included"
        );
    }

    #[test]
    fn matrix_jobs_deliver_tables_and_mask_out_of_range_ids() {
        let g = ah_data::fixtures::lattice(5, 5, 9);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig::with_workers(1));
        let queue: BoundedQueue<Job<()>> = BoundedQueue::new(4);
        let done = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let queue = &queue;
            let done = &done;
            let server = &server;
            let backend = &backend;
            scope.spawn(move || {
                server.serve_queue(backend, queue, |_tag, resp, payload, _span| {
                    done.lock().unwrap().push((resp, payload));
                });
            });
            assert!(queue.push(Job {
                req: Request::matrix(0),
                batch: Some(Box::new(MatrixRequest {
                    sources: vec![0, 99, 12],
                    targets: vec![3, 24, 999],
                })),
                span: None,
                tag: (),
            }));
            queue.close();
        });
        let done = done.into_inner().unwrap();
        let Some(ScenarioResult::Matrix(table)) = done[0].1.as_deref() else {
            panic!("matrix payload expected, got {:?}", done[0].1);
        };
        assert_eq!(table.len(), 3);
        assert_eq!(table[1], vec![None, None, None], "invalid source row");
        let mut session = backend.make_session();
        for (&s, row) in [0u32, 12].iter().zip([&table[0], &table[2]]) {
            assert_eq!(row[0], session.distance(s, 3));
            assert_eq!(row[1], session.distance(s, 24));
            assert_eq!(row[2], None, "invalid target column");
        }
        assert_eq!(server.metrics().matrix_requests.get(), 1);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let g = ah_data::fixtures::ring(8);
        let backend = DijkstraBackend::new(&g);
        let server = Server::new(ServerConfig {
            workers: 0,
            ..Default::default()
        });
        let report = server.run(&backend, &[Request::distance(7, 0, 4)]);
        assert_eq!(report.responses.len(), 1);
        assert_eq!(report.responses[0].id, 7);
    }
}
