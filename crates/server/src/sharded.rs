//! Region-sharded serving: route each query to its shard's worker pool.
//!
//! Where [`crate::Server`] multiplexes one worker pool over one index,
//! a [`ShardedServer`] owns one pool *per region shard* — each with its
//! own bounded queue, sharded LRU distance cache, and metrics — and
//! routes every request to the pool of its **source node's shard** (the
//! grid-keyed region key, two integer divisions via
//! [`ah_shard::ShardMap`]). Same-shard traffic, the bulk of an
//! interactive workload over a spatially contiguous partition, is
//! served entirely from that shard's small AH index; cross-shard
//! requests compose through the boundary graph inside the same lane
//! (see [`ah_shard::ShardedQuery`]), staying exact.
//!
//! Per-shard pools are what the ROADMAP's scale-out story needs: each
//! lane's cache holds only its region's popular pairs, queue depths
//! give per-region admission control, and the per-lane
//! [`crate::MetricsSnapshot`]s show which regions are hot — all
//! stepping stones to running each shard on its own machine.

use std::sync::{Arc, RwLock};
use std::time::Instant;

use ah_graph::{Graph, NodeId, Path, WeightDelta};
use ah_obs::{Counter, Registry};
use ah_shard::{RefreshReport, ShardConfig, ShardedIndex, ShardedQuery};
use ah_store::{Snapshot, SnapshotError};

use crate::backend::{BackendSession, DistanceBackend};
use crate::metrics::MetricsSnapshot;
use crate::server::{Request, Response, Server, ServerConfig};

/// A [`DistanceBackend`] over a [`ShardedIndex`]: exact composed
/// distances, global-index paths. Usable with a plain [`Server`] too —
/// [`ShardedServer`] is the per-shard-pool layer on top.
pub struct ShardedBackend<'a> {
    idx: &'a ShardedIndex,
}

impl<'a> ShardedBackend<'a> {
    /// Serves queries from a prebuilt sharded index.
    pub fn new(idx: &'a ShardedIndex) -> Self {
        ShardedBackend { idx }
    }
}

impl DistanceBackend for ShardedBackend<'_> {
    fn name(&self) -> &'static str {
        "AH-sharded"
    }

    fn num_nodes(&self) -> usize {
        self.idx.num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(ShardedSession {
            idx: self.idx,
            q: ShardedQuery::new(),
        })
    }
}

struct ShardedSession<'a> {
    idx: &'a ShardedIndex,
    q: ShardedQuery,
}

impl BackendSession for ShardedSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        self.q.distance(self.idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<Path> {
        self.q.path(self.idx, s, t)
    }

    fn take_cost(&mut self) -> ah_obs::CostCounters {
        self.q.take_cost()
    }
}

/// Serving parameters for a [`ShardedServer`].
#[derive(Debug, Clone, Default)]
pub struct ShardedServerConfig {
    /// Configuration applied to every per-shard pool (workers per
    /// lane, queue depth, cache entries per lane, batch size).
    pub per_shard: ServerConfig,
}

impl ShardedServerConfig {
    /// `workers` worker threads in every per-shard pool, defaults
    /// elsewhere.
    pub fn with_workers_per_shard(workers: usize) -> Self {
        ShardedServerConfig {
            per_shard: ServerConfig::with_workers(workers),
        }
    }
}

/// Per-lane slice of a [`ShardedRunReport`].
#[derive(Debug, Clone)]
pub struct ShardLaneReport {
    /// The shard this lane serves.
    pub shard: usize,
    /// Requests routed to this lane (by source-node region key).
    pub requests: usize,
    /// The lane pool's telemetry for this run.
    pub snapshot: MetricsSnapshot,
}

/// Outcome of one [`ShardedServer::run`] call.
#[derive(Debug, Clone)]
pub struct ShardedRunReport {
    /// One response per request, sorted by request id — bit-equal to
    /// what the unsharded AH backend answers.
    pub responses: Vec<Response>,
    /// Wall-clock seconds from routing start to the last lane
    /// finishing.
    pub wall_secs: f64,
    /// Per-lane telemetry, one entry per shard that received traffic.
    pub lanes: Vec<ShardLaneReport>,
    /// Requests whose endpoints share a shard (served locally).
    /// `same_shard + cross_shard` can be less than the response count:
    /// requests naming out-of-range nodes have no region and are
    /// counted in neither bucket.
    pub same_shard: usize,
    /// Requests whose endpoints straddle shards (composed through the
    /// boundary graph).
    pub cross_shard: usize,
}

impl ShardedRunReport {
    /// Aggregate throughput across all lanes.
    pub fn qps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.responses.len() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Fraction of requests that crossed shards.
    pub fn cross_shard_fraction(&self) -> f64 {
        let total = self.same_shard + self.cross_shard;
        if total == 0 {
            0.0
        } else {
            self.cross_shard as f64 / total as f64
        }
    }
}

/// A query server with one worker pool per region shard.
///
/// The pools (and their caches and metrics) persist across
/// [`ShardedServer::run`] calls, modelling a warmed-up service per
/// region.
pub struct ShardedServer {
    index: RwLock<Arc<ShardedIndex>>,
    pools: Vec<Server>,
    registry: Arc<Registry>,
    /// Published index swaps (whole-generation, all lanes at once).
    swaps_total: Arc<Counter>,
    /// Per-lane index rebuilds caused by refreshes, indexed by shard.
    lane_rebuilds: Vec<Arc<Counter>>,
}

impl ShardedServer {
    /// Builds one pool per shard of `index`. Every lane reports into
    /// one shared metric [`Registry`] under its own `shard="k"` label,
    /// so a single `/metrics` render shows per-lane latency
    /// histograms, cache counters and stage durations side by side.
    pub fn new(index: Arc<ShardedIndex>, cfg: ShardedServerConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let pools = (0..index.num_shards())
            .map(|k| {
                let shard = k.to_string();
                Server::with_observability(
                    cfg.per_shard.clone(),
                    Arc::clone(&registry),
                    &[("shard", shard.as_str())],
                )
            })
            .collect();
        let swaps_total = registry.counter(
            "ah_sharded_swaps_total",
            &[],
            "Sharded index generations published by refreshes",
        );
        let lane_rebuilds = (0..index.num_shards())
            .map(|k| {
                registry.counter(
                    "ah_shard_lane_rebuilds_total",
                    &[("shard", k.to_string().as_str())],
                    "Per-lane index rebuilds caused by weight-delta refreshes",
                )
            })
            .collect();
        ShardedServer {
            index: RwLock::new(index),
            pools,
            registry,
            swaps_total,
            lane_rebuilds,
        }
    }

    /// Restarts a sharded server from the snapshot at `path` (written
    /// with [`ah_store::SnapshotContents::sharded`]): the partition,
    /// per-shard indexes and boundary matrix all load instead of
    /// rebuilding. Fails with a typed [`SnapshotError`] — never panics
    /// — on missing files, corruption, version skew or missing
    /// sections.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        cfg: ShardedServerConfig,
    ) -> Result<ShardedServer, SnapshotError> {
        let index = Snapshot::load_sharded(path)?;
        Ok(ShardedServer::new(Arc::new(index), cfg))
    }

    /// The sharded index generation currently serving.
    pub fn index(&self) -> Arc<ShardedIndex> {
        self.index.read().unwrap().clone()
    }

    /// Atomically replaces the serving sharded index and clears every
    /// lane's distance cache under the same write lock — answers
    /// computed against the old generation can never be served from a
    /// lane cache after the swap (each lane's `serve_one` stamps its
    /// cache inserts with the pre-compute epoch, so even a mid-flight
    /// old-generation worker cannot re-poison a cleared cache). Returns
    /// the previous generation.
    ///
    /// The new index must have the same shard count (weight deltas
    /// preserve topology, so the partition — and the lane layout — is
    /// stable).
    pub fn swap_index(&self, new: Arc<ShardedIndex>) -> Arc<ShardedIndex> {
        assert_eq!(
            new.num_shards(),
            self.pools.len(),
            "lane layout is fixed; the new index must keep the shard count"
        );
        let mut slot = self.index.write().unwrap();
        let old = std::mem::replace(&mut *slot, new);
        for pool in &self.pools {
            pool.reset_cache();
        }
        self.swaps_total.inc();
        old
    }

    /// Staggered zero-downtime refresh after a weight delta: applies
    /// `delta` to `base` (which must be the graph the serving index was
    /// built from), rebuilds only the invalidated shards — one at a
    /// time, off the serving path, every lane still answering from the
    /// old generation — recomputes the boundary matrix last, and
    /// publishes the whole new generation atomically via
    /// [`ShardedServer::swap_index`]. Returns the patched graph (the
    /// base for the *next* delta) and what was rebuilt.
    ///
    /// On a delta error (wrong base generation, unknown edge) nothing
    /// is rebuilt and the serving index is untouched.
    pub fn reload_delta(
        &self,
        base: &Graph,
        delta: &WeightDelta,
        cfg: &ShardConfig,
    ) -> Result<(Graph, RefreshReport), ah_graph::DeltaError> {
        let applied = delta.apply(base)?;
        let old = self.index();
        let (fresh, report) = old.refresh(&applied.graph, &applied.touched, cfg);
        for &s in &report.rebuilt_shards {
            self.lane_rebuilds[s].inc();
        }
        self.swap_index(Arc::new(fresh));
        Ok((applied.graph, report))
    }

    /// The per-shard pools (metrics, cache statistics), indexed by
    /// shard.
    pub fn pools(&self) -> &[Server] {
        &self.pools
    }

    /// The shared registry every lane reports into (series are
    /// distinguished by their `shard` label).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Serves every request, routed by source-node region key to the
    /// per-shard pools, which run concurrently (each with its own
    /// worker threads, queue and cache). Returns the merged responses
    /// sorted by request id plus per-lane and cross-shard telemetry.
    ///
    /// Requests naming an out-of-range source node cannot be routed by
    /// region and are handed to lane 0, whose bounds check answers them
    /// with `distance: None` as [`Server::run`] documents.
    pub fn run(&self, requests: &[Request]) -> ShardedRunReport {
        // One generation per run: routing and serving read the same
        // index, and a concurrent swap only affects later runs.
        let index = self.index();
        let n = index.num_nodes();
        let mut lanes: Vec<Vec<Request>> = vec![Vec::new(); self.pools.len()];
        let mut same_shard = 0usize;
        let mut cross_shard = 0usize;
        for req in requests {
            let lane = if (req.s as usize) < n {
                index.shard_of(req.s) as usize
            } else {
                0
            };
            // Requests naming out-of-range nodes have no region and are
            // counted in neither bucket, so the published cross-shard
            // fraction describes only genuinely routed traffic.
            if (req.s as usize) < n && (req.t as usize) < n {
                if index.shard_of(req.s) != index.shard_of(req.t) {
                    cross_shard += 1;
                } else {
                    same_shard += 1;
                }
            }
            lanes[lane].push(*req);
        }

        let backend = ShardedBackend::new(&index);
        let start = Instant::now();
        let reports: Vec<Option<crate::server::RunReport>> = std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .zip(&self.pools)
                .map(|(reqs, pool)| {
                    if reqs.is_empty() {
                        None
                    } else {
                        let backend = &backend;
                        Some(scope.spawn(move || pool.run(backend, reqs)))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("a lane pool panicked")))
                .collect()
        });
        let wall_secs = start.elapsed().as_secs_f64();

        let mut responses = Vec::with_capacity(requests.len());
        let mut lane_reports = Vec::new();
        for (shard, report) in reports.into_iter().enumerate() {
            if let Some(mut r) = report {
                responses.append(&mut r.responses);
                lane_reports.push(ShardLaneReport {
                    shard,
                    requests: lanes[shard].len(),
                    snapshot: r.snapshot,
                });
            }
        }
        responses.sort_unstable_by_key(|r| r.id);
        ShardedRunReport {
            responses,
            wall_secs,
            lanes: lane_reports,
            same_shard,
            cross_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AhBackend;
    use ah_core::{AhIndex, BuildConfig};
    use ah_search::dijkstra_distance;
    use ah_shard::ShardConfig;
    use ah_store::SnapshotContents;

    fn sharded_fixture() -> (ah_graph::Graph, Arc<ShardedIndex>) {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                ..Default::default()
            },
        );
        (g, Arc::new(idx))
    }

    fn mixed_requests(n: u32, total: usize) -> Vec<Request> {
        (0..total as u64)
            .map(|id| {
                let s = (id as u32 * 7 + 3) % n;
                let t = (id as u32 * 13 + 5) % n;
                if id % 7 == 0 {
                    Request::path(id, s, t)
                } else {
                    Request::distance(id, s, t)
                }
            })
            .collect()
    }

    #[test]
    fn sharded_server_matches_unsharded_bit_for_bit() {
        let (g, idx) = sharded_fixture();
        let reqs = mixed_requests(g.num_nodes() as u32, 300);

        let sharded = ShardedServer::new(
            idx.clone(),
            ShardedServerConfig::with_workers_per_shard(2),
        );
        let report = sharded.run(&reqs);
        assert_eq!(report.responses.len(), reqs.len());
        assert!(report.cross_shard > 0, "workload must straddle shards");
        assert!(report.same_shard > 0);
        assert!(!report.lanes.is_empty());
        assert_eq!(
            report.lanes.iter().map(|l| l.requests).sum::<usize>(),
            reqs.len()
        );

        let unsharded_idx = AhIndex::build(&g, &BuildConfig::default());
        let unsharded = Server::new(ServerConfig::with_workers(2));
        let want = unsharded.run(&AhBackend::new(&unsharded_idx), &reqs);
        for (a, b) in report.responses.iter().zip(&want.responses) {
            assert_eq!((a.id, a.distance), (b.id, b.distance), "req {}", a.id);
        }
        assert!(report.qps() > 0.0);
    }

    #[test]
    fn backend_works_under_a_plain_server_too() {
        let (g, idx) = sharded_fixture();
        let server = Server::new(ServerConfig::with_workers(3));
        let reqs = mixed_requests(g.num_nodes() as u32, 120);
        let report = server.run(&ShardedBackend::new(&idx), &reqs);
        for (req, resp) in reqs.iter().zip(&report.responses) {
            let want = dijkstra_distance(&g, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "req {}", req.id);
        }
    }

    #[test]
    fn out_of_range_requests_are_answered_none() {
        let (_, idx) = sharded_fixture();
        let server = ShardedServer::new(idx, ShardedServerConfig::with_workers_per_shard(1));
        let report = server.run(&[
            Request::distance(0, 0, 9),
            Request::distance(1, 9999, 0),
            Request::distance(2, 0, 9999),
        ]);
        assert_eq!(report.responses.len(), 3);
        assert!(report.responses[0].distance.is_some());
        assert_eq!(report.responses[1].distance, None);
        assert_eq!(report.responses[2].distance, None);
        // Only the routable request is counted in the traffic mix.
        assert_eq!(report.same_shard + report.cross_shard, 1);
    }

    #[test]
    fn lanes_share_one_registry_with_shard_labels() {
        let (g, idx) = sharded_fixture();
        let server = ShardedServer::new(idx, ShardedServerConfig::with_workers_per_shard(1));
        let reqs = mixed_requests(g.num_nodes() as u32, 100);
        let report = server.run(&reqs);
        assert!(report.lanes.len() >= 2);
        let text = server.registry().render();
        // Every lane that served traffic rendered its own labelled
        // histogram series out of the one shared registry…
        for lane in &report.lanes {
            let needle = format!(
                "ah_server_query_latency_seconds_count{{shard=\"{}\"}} {}",
                lane.shard, lane.snapshot.queries
            );
            assert!(text.contains(&needle), "missing {needle} in:\n{text}");
        }
        assert!(
            text.contains("ah_server_query_latency_seconds_bucket{shard=\"0\",le="),
            "{text}"
        );
        // …under a single TYPE header per family.
        assert_eq!(
            text.matches("# TYPE ah_server_query_latency_seconds histogram").count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn snapshot_roundtrip_serves_identically() {
        let (g, idx) = sharded_fixture();
        let path = std::env::temp_dir().join(format!(
            "ah_server_sharded_{}.snap",
            std::process::id()
        ));
        Snapshot::write(&path, SnapshotContents::new().graph(&g).sharded(&idx)).unwrap();

        let restored =
            ShardedServer::from_snapshot(&path, ShardedServerConfig::with_workers_per_shard(2))
                .unwrap();
        assert_eq!(restored.index().num_shards(), idx.num_shards());
        let reqs = mixed_requests(g.num_nodes() as u32, 150);
        let live = ShardedServer::new(
            idx.clone(),
            ShardedServerConfig::with_workers_per_shard(2),
        )
        .run(&reqs);
        let loaded = restored.run(&reqs);
        for (a, b) in live.responses.iter().zip(&loaded.responses) {
            assert_eq!((a.id, a.distance), (b.id, b.distance));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_snapshot_errors_are_typed() {
        assert!(matches!(
            ShardedServer::from_snapshot("/no/such/file.snap", Default::default()),
            Err(SnapshotError::Io(_))
        ));
        // A graph+AH-only snapshot has no shards section.
        let g = ah_data::fixtures::lattice(4, 4, 10);
        let ah = AhIndex::build(&g, &BuildConfig::default());
        let path = std::env::temp_dir().join(format!(
            "ah_server_sharded_missing_{}.snap",
            std::process::id()
        ));
        Snapshot::write(&path, SnapshotContents::new().graph(&g).ah(&ah)).unwrap();
        assert!(matches!(
            ShardedServer::from_snapshot(&path, Default::default()),
            Err(SnapshotError::MissingSection { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reload_delta_swaps_all_lanes_and_matches_scratch_build() {
        use ah_graph::{WeightChange, WeightDelta};
        let (g, idx) = sharded_fixture();
        let cfg = ShardConfig {
            shards: 4,
            ..Default::default()
        };
        let server = ShardedServer::new(idx, ShardedServerConfig::with_workers_per_shard(2));
        let reqs = mixed_requests(g.num_nodes() as u32, 200);
        // Warm the lane caches on the old generation so the swap has
        // something to invalidate.
        let before = server.run(&reqs);

        // Close the row-3↔row-4 cut except at column 0: every
        // top↔bottom route must now detour through the west edge, so
        // plenty of answers move (a unit lattice shrugs off single-edge
        // changes — Manhattan alternatives everywhere).
        let id = |x: u32, y: u32| y * 8 + x;
        let changes: Vec<WeightChange> = (1..8u32)
            .flat_map(|x| {
                [
                    WeightChange::close(id(x, 3), id(x, 4)),
                    WeightChange::close(id(x, 4), id(x, 3)),
                ]
            })
            .collect();
        let delta = WeightDelta::new(&g, changes).unwrap();
        let (patched, report) = server.reload_delta(&g, &delta, &cfg).unwrap();
        assert!(!report.rebuilt_shards.is_empty());
        assert!(report.reused_shards + report.rebuilt_shards.len() == 4);

        // Post-swap answers are bit-equal to a scratch sharded build on
        // the patched graph — across the same warmed pools.
        let scratch = Arc::new(ShardedIndex::build(&patched, &cfg));
        let scratch_server =
            ShardedServer::new(scratch, ShardedServerConfig::with_workers_per_shard(2));
        let after = server.run(&reqs);
        let want = scratch_server.run(&reqs);
        let mut moved = 0;
        for ((a, b), c) in after.responses.iter().zip(&want.responses).zip(&before.responses) {
            assert_eq!((a.id, a.distance), (b.id, b.distance), "req {}", a.id);
            if a.distance != c.distance {
                moved += 1;
            }
        }
        assert!(moved > 0, "the delta must actually change some answers");

        let text = server.registry().render();
        assert!(text.contains("ah_sharded_swaps_total 1"), "{text}");
        assert!(text.contains("ah_shard_lane_rebuilds_total{shard="), "{text}");
    }

    #[test]
    fn reload_delta_with_stale_base_leaves_serving_untouched() {
        use ah_graph::{WeightChange, WeightDelta};
        let (g, idx) = sharded_fixture();
        let cfg = ShardConfig {
            shards: 4,
            ..Default::default()
        };
        let server = ShardedServer::new(idx, ShardedServerConfig::with_workers_per_shard(1));
        let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 77)]).unwrap();
        let (patched, _) = server.reload_delta(&g, &delta, &cfg).unwrap();
        // Replaying against the pre-delta graph: the serving index was
        // built from `patched`, so the same delta no longer applies.
        let err = server.reload_delta(&patched, &delta, &cfg).unwrap_err();
        assert!(matches!(err, ah_graph::DeltaError::BaseMismatch { .. }));
        let text = server.registry().render();
        assert!(text.contains("ah_sharded_swaps_total 1"), "{text}");
    }

    #[test]
    fn route_telemetry_reports_composition() {
        use ah_shard::Route;
        let (_, idx) = sharded_fixture();
        let mut q = ShardedQuery::new();
        // Find a definite cross-shard pair.
        let s = 0u32;
        let t = (idx.num_nodes() - 1) as u32;
        assert_ne!(idx.shard_of(s), idx.shard_of(t));
        q.distance(&idx, s, t);
        assert_eq!(q.last_route, Route::Composed);
    }
}
