//! Restarting from and hot-swapping index snapshots.
//!
//! Two serving-lifecycle gaps close here, both backed by `ah_store`:
//!
//! * **Fast restart** — [`Server::from_snapshot`] brings a server up from
//!   a persisted [`AhIndex`] in milliseconds, skipping the multi-second
//!   build (the snapshot is written once, e.g. by
//!   `serve_throughput --save-index`).
//! * **Zero-downtime reindexing** — a [`SnapshotServer`] owns its index
//!   behind an atomically swappable handle. Road data changed? Build or
//!   load the new index *off the serving path*, then
//!   [`SnapshotServer::swap_index`]: in-flight request streams finish
//!   against the old generation (the swap waits for them to drain), then
//!   the new index is published and the distance cache cleared under the
//!   same lock — so no answer computed against the old network can ever
//!   survive the swap, not even from a worker that was mid-stream when
//!   the swap began. The old index is returned to the caller (for
//!   diffing or deferred teardown) and freed when the last `Arc` drops.
//!
//! Workers never lock per query: a run takes the generation read-lock
//! once and serves its whole stream under it. Concurrent runs share the
//! read side; only a swap takes the write side, and only for the
//! pointer exchange plus cache clear.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ah_core::{AhIndex, AhQuery};
use ah_graph::NodeId;
use ah_store::{Snapshot, SnapshotError};

use crate::backend::{AhBackend, BackendSession, DistanceBackend};
use crate::server::{Request, RunReport, Server, ServerConfig};

impl Server {
    /// Builds a swappable serving engine from the snapshot at `path`.
    ///
    /// The snapshot must contain an `ah.index` section (write one with
    /// [`ah_store::SnapshotContents::ah`]); anything else in the file is
    /// ignored. Fails with a typed [`SnapshotError`] — never panics — on
    /// missing files, corruption, version skew or a missing section.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        cfg: ServerConfig,
    ) -> Result<SnapshotServer, SnapshotError> {
        let index = Snapshot::load_ah(path)?;
        Ok(SnapshotServer::new(Arc::new(index), cfg))
    }
}

/// A [`Server`] bound to an atomically swappable AH index.
///
/// Unlike the bare engine — which borrows a backend per [`Server::run`]
/// call — this owns the index generation, so the index a request stream
/// is served against can be replaced between runs without stopping the
/// process.
pub struct SnapshotServer {
    server: Server,
    index: RwLock<Arc<AhIndex>>,
    generation: AtomicU64,
}

impl SnapshotServer {
    /// Serves from `index` with the given configuration.
    pub fn new(index: Arc<AhIndex>, cfg: ServerConfig) -> Self {
        Self::with_server(index, Server::new(cfg))
    }

    /// Serves from `index` through an already-built engine — how the
    /// edge wires a snapshot server into a shared metric registry
    /// (build the [`Server`] with [`Server::with_observability`] first).
    pub fn with_server(index: Arc<AhIndex>, server: Server) -> Self {
        SnapshotServer {
            server,
            index: RwLock::new(index),
            generation: AtomicU64::new(0),
        }
    }

    /// How many times the serving index has been swapped since startup.
    /// Generation 0 is the index the server booted with.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// The engine underneath (metrics, cache statistics, config).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The currently serving index generation.
    pub fn index(&self) -> Arc<AhIndex> {
        self.index.read().unwrap().clone()
    }

    /// Atomically replaces the serving index and clears the distance
    /// cache. Returns the previous generation.
    ///
    /// Runs hold the generation read-lock for their whole duration, so
    /// this call first waits for in-flight [`SnapshotServer::run`]s to
    /// drain (they finish against the old index), then — still holding
    /// the write lock, so no run can race the two steps — publishes the
    /// new index and clears the cache. That ordering is what makes the
    /// staleness guarantee airtight: an old-generation worker can never
    /// insert an answer after the clear, because no old-generation
    /// worker exists once the write lock is held.
    pub fn swap_index(&self, new: Arc<AhIndex>) -> Arc<AhIndex> {
        let mut slot = self.index.write().unwrap();
        let old = std::mem::replace(&mut *slot, new);
        self.server.reset_cache();
        // Bumped while the write lock is held, so the generation a
        // reader observes after taking the read lock is never behind
        // the index it got.
        self.generation.fetch_add(1, Ordering::SeqCst);
        old
    }

    /// Loads the snapshot at `path` and [`SnapshotServer::swap_index`]es
    /// to it. On any load error the serving index is left untouched — a
    /// bad snapshot can never take down a healthy server.
    pub fn swap_from_snapshot(
        &self,
        path: impl AsRef<Path>,
    ) -> Result<Arc<AhIndex>, SnapshotError> {
        let index = Snapshot::load_ah(path)?;
        Ok(self.swap_index(Arc::new(index)))
    }

    /// Serves `requests` against the current index generation (see
    /// [`Server::run`] for the execution model).
    ///
    /// Holds the generation read-lock for the duration of the run: any
    /// concurrent [`SnapshotServer::swap_index`] waits for this stream
    /// to finish, which is what keeps old-generation answers out of the
    /// post-swap cache. Concurrent `run` calls do not block each other.
    pub fn run(&self, requests: &[Request]) -> RunReport {
        let index = self.index.read().unwrap();
        let backend = AhBackend::new(&index);
        self.server.run(&backend, requests)
    }
}

/// A [`DistanceBackend`] view over a [`SnapshotServer`] that follows
/// index swaps *between queries* instead of pinning one generation.
///
/// [`AhBackend`] borrows a fixed index, so open-loop workers created
/// over it before a swap would keep serving the old generation forever.
/// A `SnapshotBackend` session instead re-reads the swappable handle on
/// every query: each answer is computed against whatever generation is
/// current when the query starts, and a long-running worker picks up a
/// published swap on its very next query — the piece that makes
/// `/admin/reload-delta` visible to workers that never restart. Each
/// query clones an `Arc` under the read lock (uncontended outside the
/// microseconds of an actual swap), so a swap never waits on an
/// open-loop worker and vice versa.
pub struct SnapshotBackend<'a> {
    server: &'a SnapshotServer,
}

impl<'a> SnapshotBackend<'a> {
    /// Serves queries against `server`'s *current* index generation.
    pub fn new(server: &'a SnapshotServer) -> Self {
        SnapshotBackend { server }
    }
}

impl DistanceBackend for SnapshotBackend<'_> {
    fn name(&self) -> &'static str {
        "AH"
    }

    fn num_nodes(&self) -> usize {
        // Weight deltas keep the topology, so the node count is stable
        // across the swaps this backend is built to follow.
        self.server.index().num_nodes()
    }

    fn make_session(&self) -> Box<dyn BackendSession + '_> {
        Box::new(SnapshotSession {
            server: self.server,
            q: AhQuery::new(),
        })
    }
}

struct SnapshotSession<'a> {
    server: &'a SnapshotServer,
    q: AhQuery,
}

impl BackendSession for SnapshotSession<'_> {
    fn distance(&mut self, s: NodeId, t: NodeId) -> Option<u64> {
        let idx = self.server.index();
        self.q.distance(&idx, s, t)
    }

    fn path(&mut self, s: NodeId, t: NodeId) -> Option<ah_graph::Path> {
        let idx = self.server.index();
        self.q.path(&idx, s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::BuildConfig;
    use ah_search::dijkstra_distance;
    use ah_store::SnapshotContents;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ah_server_{name}_{}.snap", std::process::id()))
    }

    #[test]
    fn from_snapshot_serves_identically_to_fresh_build() {
        let g = ah_data::fixtures::lattice(6, 6, 12);
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let path = tmp("restart");
        Snapshot::write(&path, SnapshotContents::new().ah(&idx)).unwrap();

        let server = Server::from_snapshot(&path, ServerConfig::with_workers(2)).unwrap();
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request::distance(i, (i as u32 * 3) % 36, (i as u32 * 7 + 1) % 36))
            .collect();
        let report = server.run(&reqs);
        for (req, resp) in reqs.iter().zip(&report.responses) {
            let want = dijkstra_distance(&g, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "req {}", req.id);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn swap_changes_answers_and_clears_cache() {
        // Two networks, same shape, different weights: the same (s, t)
        // pair answers differently across generations, so a stale cache
        // entry would be visible immediately.
        let g1 = ah_data::fixtures::lattice(5, 5, 10);
        let g2 = ah_data::fixtures::lattice(5, 5, 30);
        let idx1 = Arc::new(AhIndex::build(&g1, &BuildConfig::default()));
        let idx2 = Arc::new(AhIndex::build(&g2, &BuildConfig::default()));

        let server = SnapshotServer::new(idx1.clone(), ServerConfig::with_workers(2));
        let reqs: Vec<Request> = (0..25)
            .map(|i| Request::distance(i, i as u32 % 25, (i as u32 * 11 + 2) % 25))
            .collect();

        let before = server.run(&reqs);
        for (req, resp) in reqs.iter().zip(&before.responses) {
            let want = dijkstra_distance(&g1, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "generation 1, req {}", req.id);
        }

        let old = server.swap_index(idx2);
        assert!(Arc::ptr_eq(&old, &idx1), "swap returns the old generation");

        let after = server.run(&reqs);
        for (req, resp) in reqs.iter().zip(&after.responses) {
            let want = dijkstra_distance(&g2, req.s, req.t).map(|d| d.length);
            assert_eq!(resp.distance, want, "generation 2, req {}", req.id);
        }
    }

    #[test]
    fn swap_from_bad_snapshot_leaves_serving_intact() {
        let g = ah_data::fixtures::lattice(4, 4, 10);
        let idx = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
        let server = SnapshotServer::new(idx.clone(), ServerConfig::with_workers(1));

        // Missing file.
        assert!(server.swap_from_snapshot("/no/such/file.snap").is_err());
        // Present but not a snapshot.
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(matches!(
            server.swap_from_snapshot(&path),
            Err(SnapshotError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();

        // Still serving from the original index.
        assert!(Arc::ptr_eq(&server.index(), &idx));
        let report = server.run(&[Request::distance(0, 0, 15)]);
        assert_eq!(
            report.responses[0].distance,
            dijkstra_distance(&g, 0, 15).map(|d| d.length)
        );
    }

    #[test]
    fn generation_counts_swaps() {
        let g = ah_data::fixtures::ring(8);
        let idx = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
        let server = SnapshotServer::new(idx.clone(), ServerConfig::with_workers(1));
        assert_eq!(server.generation(), 0);
        server.swap_index(idx.clone());
        server.swap_index(idx);
        assert_eq!(server.generation(), 2);
    }

    #[test]
    fn snapshot_backend_follows_swaps_without_new_sessions() {
        let g1 = ah_data::fixtures::lattice(5, 5, 10);
        // Second generation: the same lattice with both arcs *out of*
        // node 0 re-weighted, so every route from 0 — including 0 → 24
        // — answers differently.
        let changes = [
            ah_graph::WeightChange::new(0, 1, 9),
            ah_graph::WeightChange::new(0, 5, 9),
        ];
        let g2 = ah_graph::WeightDelta::new(&g1, changes).unwrap().apply(&g1).unwrap().graph;
        let idx1 = Arc::new(AhIndex::build(&g1, &BuildConfig::default()));
        let idx2 = Arc::new(AhIndex::build(&g2, &BuildConfig::default()));
        let server = SnapshotServer::new(idx1, ServerConfig::with_workers(1));

        let backend = SnapshotBackend::new(&server);
        let mut session = backend.make_session();
        let want1 = dijkstra_distance(&g1, 0, 24).map(|d| d.length);
        assert_eq!(session.distance(0, 24), want1);

        // Swap while the session lives: the *same* session must answer
        // from the new generation on its next query.
        server.swap_index(idx2);
        let want2 = dijkstra_distance(&g2, 0, 24).map(|d| d.length);
        assert_ne!(want1, want2, "fixture weights must differ for this test");
        assert_eq!(session.distance(0, 24), want2);
        if let Some(p) = session.path(0, 24) {
            assert_eq!(p.dist.length, want2.unwrap());
            p.verify(&g2).unwrap();
        }
    }

    #[test]
    fn from_snapshot_without_ah_section_is_typed() {
        let g = ah_data::fixtures::ring(8);
        let path = tmp("graph_only");
        Snapshot::write(&path, SnapshotContents::new().graph(&g)).unwrap();
        assert!(matches!(
            Server::from_snapshot(&path, ServerConfig::default()),
            Err(SnapshotError::MissingSection { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
